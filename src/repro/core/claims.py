"""Claim and document model (paper Definitions 2.1-2.6).

A claim is a sentence plus the position of a claimed value inside it; the
value is either numeric (possibly written out, "two") or textual. Claims
live inside documents, each of which carries the relational database its
claims refer to.

This module also owns the numeric-precision semantics of Example 4.1: a
query result *matches* a claimed value when rounding the result to the
claim's displayed precision reproduces the claim exactly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.sqlengine import Database, SqlValue

#: Number words accepted in claim sentences (Example 1.1 claims "two").
_NUMBER_WORDS = {
    "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10, "eleven": 11,
    "twelve": 12, "thirteen": 13, "fourteen": 14, "fifteen": 15,
    "sixteen": 16, "seventeen": 17, "eighteen": 18, "nineteen": 19,
    "twenty": 20, "thirty": 30, "forty": 40, "fifty": 50, "sixty": 60,
    "seventy": 70, "eighty": 80, "ninety": 90, "hundred": 100,
    "thousand": 1000,
}

_NUMERIC_TOKEN = re.compile(r"^[-+]?\$?[\d,]*\.?\d+%?$")


@dataclass(frozen=True)
class Span:
    """Word-index range of the claim value within the claim sentence.

    ``start`` and ``end`` are inclusive indices into the whitespace
    tokenisation of the sentence (paper Example 2.3 uses index 1 for the
    word "two" in "The two fatal accidents …").
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end}]")


@dataclass
class Claim:
    """One verifiable claim (Definition 2.2).

    Attributes set by the verification pipeline (initially None):

    * ``query`` — the SQL text CEDAR settled on for this claim.
    * ``correct`` — the verification verdict.

    ``metadata`` carries dataset-internal bookkeeping (ground-truth query,
    difficulty features, label). Verification methods never read it; only
    the simulated-LLM world does, standing in for a real model's language
    understanding, and the experiment harness does for scoring.
    """

    sentence: str
    span: Span
    context: str
    claim_id: str = ""
    query: str | None = None
    correct: bool | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def tokens(self) -> list[str]:
        """Whitespace tokens of the claim sentence."""
        return self.sentence.split()

    @property
    def value_text(self) -> str:
        """The claim value exactly as written in the sentence."""
        tokens = self.tokens
        if self.span.end >= len(tokens):
            raise ValueError(
                f"span {self.span} out of range for sentence {self.sentence!r}"
            )
        raw = " ".join(tokens[self.span.start:self.span.end + 1])
        return raw.strip(".,;:!?()")

    @property
    def value(self) -> SqlValue:
        """The parsed claim value (number where possible, else text)."""
        return parse_claim_value(self.value_text)

    @property
    def is_numeric(self) -> bool:
        """True when the claim value is a number (Definition 2.4 dichotomy)."""
        return isinstance(self.value, (int, float))


@dataclass
class Document:
    """A text document with claims and the database they refer to
    (Definition 2.1)."""

    doc_id: str
    claims: list[Claim]
    data: Database
    domain: str = "generic"
    title: str = ""

    def __post_init__(self) -> None:
        for index, claim in enumerate(self.claims):
            if not claim.claim_id:
                claim.claim_id = f"{self.doc_id}/c{index}"


def parse_claim_value(text: str) -> SqlValue:
    """Parse the value written in a claim into a number or a string.

    Handles digits with thousands separators ("1,234"), decimals, leading
    currency/percent decoration ("$5", "12%"), and small number words
    ("two", "twenty five"). Anything else stays a string (textual claim).
    """
    stripped = text.strip().strip(".,;:!?()")
    if not stripped:
        return text
    word_value = _parse_number_words(stripped.lower())
    if word_value is not None:
        return word_value
    if _NUMERIC_TOKEN.match(stripped):
        cleaned = stripped.replace(",", "").lstrip("$+").rstrip("%")
        if cleaned.startswith("-$"):
            cleaned = "-" + cleaned[2:]
        try:
            if "." in cleaned:
                return float(cleaned)
            return int(cleaned)
        except ValueError:
            return text
    return stripped


def _parse_number_words(text: str) -> int | None:
    """Parse simple number-word phrases ("two", "twenty five", "two hundred")."""
    words = text.replace("-", " ").split()
    if not words or any(w not in _NUMBER_WORDS for w in words):
        return None
    total = 0
    current = 0
    for word in words:
        value = _NUMBER_WORDS[word]
        if value in (100, 1000):
            current = max(current, 1) * value
            total += current
            current = 0
        else:
            current += value
    return total + current


def value_precision(text: str) -> int:
    """Return the number of decimal digits displayed in a numeric claim.

    Per Example 4.1, "3.1" has precision 1, "3" precision 0, "3.14"
    precision 2. Number words have precision 0.
    """
    stripped = text.strip().strip(".,;:!?()").replace(",", "")
    stripped = stripped.lstrip("$+-").rstrip("%")
    if "." not in stripped:
        return 0
    return len(stripped.split(".", 1)[1])


def round_to_precision(value: float | int, precision: int) -> float | int:
    """Round a query result to the claim's displayed precision."""
    rounded = round(float(value), precision)
    return int(rounded) if precision == 0 else rounded


def numeric_values_match(query_result: float | int, claim_text: str) -> bool:
    """Check a numeric query result against the claim as written.

    Implements Algorithm 3's numeric branch: round the query result to the
    claim's precision and compare. Example 4.1: a result of 3.140 matches
    "3.1" and "3" but not "3.143"; 3.143 matches "3.14".
    """
    claimed = parse_claim_value(claim_text)
    if not isinstance(claimed, (int, float)):
        return False
    precision = value_precision(claim_text)
    return round_to_precision(query_result, precision) == claimed


def same_order_of_magnitude(query_result: float | int,
                            claimed: float | int) -> bool:
    """Plausibility test for numeric claims (Function CorrectQuery).

    Prior work [17] shows wrong numeric claims tend to be *close* to the
    true value, so a candidate query whose result is in the same order of
    magnitude as the claimed value is plausibly the right translation.
    Zero is special-cased: it is plausible against small magnitudes only.
    """
    query = float(query_result)
    claim = float(claimed)
    if query == 0.0 and claim == 0.0:
        return True
    if claim == 0.0:
        # A claimed zero is plausibly produced by any result that would
        # round towards it.
        return abs(query) <= 1.5
    if query == 0.0:
        # An empty aggregate (zero) against a non-zero claim is the classic
        # signature of a wrong filter constant, not of a wrong claim.
        return False
    if (query < 0) != (claim < 0):
        return False
    ratio = abs(query) / abs(claim)
    return 0.1 < ratio < 10.0
