"""CEDAR core: claims, verification methods, multi-stage pipeline,
cost-based scheduling."""

from .agent_method import AgentMethod
from .claims import (
    Claim,
    Document,
    Span,
    numeric_values_match,
    parse_claim_value,
    round_to_precision,
    same_order_of_magnitude,
    value_precision,
)
from .cost_model import (
    MethodProfile,
    PlannedSchedule,
    PlannedStage,
    describe_schedule,
    distinct_methods_used,
    expected_latency,
    schedule_accuracy,
    schedule_cost,
    schedule_failure_probability,
)
from .executor import ParallelVerifier, verify
from .masking import MASK_TOKEN, MaskedClaim, mask_claim, mask_sentence
from .methods import Sample, TranslationResult, VerificationMethod
from .oneshot import ONE_SHOT_TEMPLATE, OneShotMethod, one_shot_prompt
from .pipeline import (
    ClaimReport,
    MultiStageVerifier,
    ScheduleEntry,
    VerificationObserver,
    VerificationRun,
    VerifierConfig,
)
from .plausibility import (
    CORRECTNESS_SIMILARITY,
    PLAUSIBILITY_SIMILARITY,
    QueryAssessment,
    assess_query,
    claim_matches_result,
    validate_claim,
)
from .profiling import LABEL_KEY, profile_method, profile_methods
from .reconstruction import reconstruct
from .reports import (
    claim_record,
    claim_records,
    document_report,
    to_json,
    to_markdown,
)
from .scheduling import (
    DEFAULT_MAX_TRIES,
    ScoredSchedule,
    optimal_schedule,
    pareto_schedules,
    prune,
    select_schedule,
)

__all__ = [
    "AgentMethod",
    "CORRECTNESS_SIMILARITY",
    "Claim",
    "ClaimReport",
    "DEFAULT_MAX_TRIES",
    "Document",
    "LABEL_KEY",
    "MASK_TOKEN",
    "MaskedClaim",
    "MethodProfile",
    "MultiStageVerifier",
    "ONE_SHOT_TEMPLATE",
    "OneShotMethod",
    "PLAUSIBILITY_SIMILARITY",
    "ParallelVerifier",
    "PlannedSchedule",
    "PlannedStage",
    "QueryAssessment",
    "Sample",
    "ScheduleEntry",
    "ScoredSchedule",
    "Span",
    "TranslationResult",
    "VerificationMethod",
    "VerificationObserver",
    "VerificationRun",
    "VerifierConfig",
    "assess_query",
    "claim_matches_result",
    "describe_schedule",
    "distinct_methods_used",
    "expected_latency",
    "mask_claim",
    "mask_sentence",
    "numeric_values_match",
    "one_shot_prompt",
    "optimal_schedule",
    "pareto_schedules",
    "parse_claim_value",
    "profile_method",
    "profile_methods",
    "prune",
    "claim_record",
    "claim_records",
    "document_report",
    "reconstruct",
    "to_json",
    "to_markdown",
    "round_to_precision",
    "same_order_of_magnitude",
    "schedule_accuracy",
    "schedule_cost",
    "schedule_failure_probability",
    "select_schedule",
    "validate_claim",
    "value_precision",
    "verify",
]
