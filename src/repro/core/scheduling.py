"""Cost-based schedule optimisation (paper Section 6.4, Algorithm 10).

Dynamic programming in the style of Selinger's join-ordering algorithm,
but over *verification methods*: the state is the subset of methods a
schedule uses, the per-state value is the Pareto frontier of (cost,
accuracy) over all orderings and try counts of that subset. Theorem 6.3
(principle of optimality) justifies pruning dominated prefixes; Theorem
6.4 justifies restricting to consecutive retries of the same method.

The final choice (``SelectSchedule``) filters to schedules meeting the
accuracy constraint (or, failing that, the maximum achievable accuracy),
prefers schedules using the most distinct methods (diversity compensates
for the independence assumptions), and picks minimal cost among those.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from .cost_model import (
    MethodProfile,
    PlannedSchedule,
    PlannedStage,
    distinct_methods_used,
    schedule_accuracy,
    schedule_cost,
)

#: Default cap on retries per method (m in Algorithm 10).
DEFAULT_MAX_TRIES = 3


@dataclass(frozen=True)
class ScoredSchedule:
    """A candidate schedule with its model-estimated metrics."""

    schedule: PlannedSchedule
    cost: float
    accuracy: float

    def dominates(self, other: "ScoredSchedule") -> bool:
        """Pareto dominance over (cost ↓, accuracy ↑)."""
        at_least = self.cost <= other.cost and self.accuracy >= other.accuracy
        strictly = self.cost < other.cost or self.accuracy > other.accuracy
        return at_least and strictly


def optimal_schedule(
    profiles: dict[str, MethodProfile],
    min_accuracy: float,
    max_tries: int = DEFAULT_MAX_TRIES,
) -> PlannedSchedule:
    """Algorithm 10 + SelectSchedule: the schedule CEDAR will execute."""
    frontier = pareto_schedules(profiles, max_tries)
    return select_schedule(frontier, min_accuracy)


def pareto_schedules(
    profiles: dict[str, MethodProfile],
    max_tries: int = DEFAULT_MAX_TRIES,
) -> list[ScoredSchedule]:
    """The DP of Algorithm 10: Pareto-optimal schedules over all methods."""
    if not profiles:
        raise ValueError("no method profiles supplied")
    if max_tries < 1:
        raise ValueError("max_tries must be at least 1")
    method_names = sorted(profiles)
    table: dict[frozenset[str], list[ScoredSchedule]] = {}
    # Initialise single-method entries: every try count 0..m is
    # Pareto-optimal among schedules over one method.
    for name in method_names:
        entries = [
            _score((PlannedStage(name, tries),), profiles)
            for tries in range(max_tries + 1)
        ]
        table[frozenset((name,))] = entries
    # Grow subsets, appending each candidate last method with each try
    # count to every Pareto-optimal schedule of the remaining subset.
    for size in range(2, len(method_names) + 1):
        for subset in combinations(method_names, size):
            subset_key = frozenset(subset)
            pareto: list[ScoredSchedule] = []
            for last in subset:
                rest_key = subset_key - {last}
                for partial in table[rest_key]:
                    for tries in range(max_tries + 1):
                        candidate = _score(
                            partial.schedule + (PlannedStage(last, tries),),
                            profiles,
                        )
                        pareto = prune(pareto, candidate)
            table[subset_key] = pareto
    return table[frozenset(method_names)]


def prune(
    frontier: list[ScoredSchedule], candidate: ScoredSchedule
) -> list[ScoredSchedule]:
    """Insert a candidate into a Pareto frontier, dropping dominated entries.

    Exact (cost, accuracy) ties are broken towards the schedule using more
    distinct methods, so the diversity preference of SelectSchedule still
    has the diverse variant available.
    """
    candidate_diversity = distinct_methods_used(candidate.schedule)
    for existing in frontier:
        if existing.dominates(candidate):
            return frontier
        if (
            existing.cost == candidate.cost
            and existing.accuracy == candidate.accuracy
            and distinct_methods_used(existing.schedule)
            >= candidate_diversity
        ):
            return frontier
    kept = [
        s
        for s in frontier
        if not candidate.dominates(s)
        and not (
            s.cost == candidate.cost
            and s.accuracy == candidate.accuracy
            and distinct_methods_used(s.schedule) < candidate_diversity
        )
    ]
    kept.append(candidate)
    return kept


#: Schedules within this relative cost margin of the cheapest feasible
#: schedule are considered cost-equivalent for the diversity tie-break.
DIVERSITY_COST_MARGIN = 1.10


def select_schedule(
    frontier: list[ScoredSchedule], min_accuracy: float
) -> PlannedSchedule:
    """SelectSchedule (Section 6.4): constraint, then cost, then diversity.

    The accuracy constraint restricts the frontier (falling back to the
    maximum achievable accuracy when infeasible); the cheapest remaining
    schedule wins. Among schedules whose estimated cost is within a small
    margin of the cheapest, the one using the most *distinct* methods is
    preferred: the independence assumptions overstate the value of
    retrying one method, so diversity buys real accuracy at nominally
    equal cost (the paper's correction for Assumption 2).
    """
    if not frontier:
        raise ValueError("empty schedule frontier")
    feasible = [s for s in frontier if s.accuracy >= min_accuracy]
    if not feasible:
        best_accuracy = max(s.accuracy for s in frontier)
        feasible = [s for s in frontier if s.accuracy == best_accuracy]
    cheapest = min(s.cost for s in feasible)
    margin = cheapest * DIVERSITY_COST_MARGIN if cheapest > 0 else 0.0
    near_cheapest = [s for s in feasible if s.cost <= margin]
    chosen = max(
        near_cheapest,
        key=lambda s: (distinct_methods_used(s.schedule), -s.cost),
    )
    return _strip_zero_stages(chosen.schedule)


def _score(
    schedule: PlannedSchedule, profiles: dict[str, MethodProfile]
) -> ScoredSchedule:
    # Canonicalise before scoring: a zero-try stage contributes nothing
    # to cost or accuracy, so stripping it changes neither metric — but it
    # guarantees no schedule the DP emits (frontier or final) carries a
    # silent no-op stage. ScheduleEntry documents tries=0 as an explicit
    # skip; the planner simply never produces one.
    schedule = _strip_zero_stages(schedule)
    return ScoredSchedule(
        schedule=schedule,
        cost=schedule_cost(schedule, profiles),
        accuracy=schedule_accuracy(schedule, profiles),
    )


def _strip_zero_stages(schedule: PlannedSchedule) -> PlannedSchedule:
    return tuple(stage for stage in schedule if stage.tries > 0)
