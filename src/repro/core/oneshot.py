"""One-shot claim-to-SQL translation (paper Section 5.2, Algorithm 5).

A single LLM invocation with the Figure 3 prompt: masked claim, value
type, schema, query-format suggestions, optional few-shot sample, and the
claim's context paragraph. The SQL is extracted from the fenced block the
prompt requests.
"""

from __future__ import annotations

from repro.llm.base import extract_sql_block
from repro.obs.tracer import current_tracer
from repro.sqlengine import Database, SqlValue, analyze_sql, prompt_schema_text

from .masking import MaskedClaim
from .methods import Sample, TranslationResult, VerificationMethod, render_sample

#: The Figure 3 prompt template. Placeholders in curly braces.
ONE_SHOT_TEMPLATE = """Given the claim "{claim}" where "x" is a "{type}" value, you must think about a question that generates "x" as the answer and then generate a SQL query to answer that question. You must use the schema of the following table called "table".
{db_schema}
To query for percentages use the format "SELECT (SELECT COUNT(column_name) FROM table WHERE equality_predicates) * 100.0/ (SELECT COUNT(column_name) FROM table WHERE equality_predicates)". Other queries are of format "SELECT aggregate_function(column_name) FROM table WHERE equality_predicates". Wrap the SQL in ```sql ```.
{sample}
The following context information might help to form the SQL query.
{context}"""


def one_shot_prompt(
    masked_claim: str,
    value_type: str,
    db_schema: str,
    sample: Sample | None,
    context: str,
) -> str:
    """Instantiate the Figure 3 template for one claim."""
    return ONE_SHOT_TEMPLATE.format(
        claim=masked_claim,
        type=value_type,
        db_schema=db_schema,
        sample=render_sample(sample),
        context=context,
    )


class OneShotMethod(VerificationMethod):
    """Algorithm 5: prompt once, extract the SQL from the reply."""

    retry_temperature = 0.25

    @property
    def kind(self) -> str:
        return "one_shot"

    def translate(
        self,
        masked: MaskedClaim,
        value_type: str,
        claim_value: SqlValue,
        claim_value_text: str,
        database: Database,
        sample: Sample | None,
        temperature: float,
    ) -> TranslationResult:
        prompt = one_shot_prompt(
            masked.masked_sentence,
            value_type,
            prompt_schema_text(database),
            sample,
            masked.masked_context,
        )
        response = self.client.complete(prompt, temperature)
        query = extract_sql_block(response.text)
        # Attach the static analysis so callers (and reports) can see why
        # a candidate is about to be rejected without re-walking the AST —
        # analyses are memoized, so the verifier's own gate reuses this.
        analysis = (
            analyze_sql(query, database)
            if query and self.analyze_sql else None
        )
        # Stamp what happened onto the enclosing method span (a no-op
        # when tracing is off): did the reply contain SQL, and what did
        # the static analyzer think of it?
        tracer = current_tracer()
        if tracer.enabled:
            tracer.annotate(
                query_extracted=query is not None,
                analyzer=(
                    "skipped" if analysis is None
                    else ("error" if analysis.errors else "ok")
                ),
            )
        return TranslationResult(
            query=query,
            response_text=response.text,
            issued_queries=[query] if query else [],
            analysis=analysis,
        )
