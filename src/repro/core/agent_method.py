"""Agent-based verification (paper Section 5.3, Algorithm 6).

Builds the agent prompt, wires up the two tools (unique column values and
database querying with coarse feedback), runs the ReAct loop, and
reconstructs one complete SQL query from the agent's query trace via
Algorithm 9.
"""

from __future__ import annotations

from repro.obs.tracer import current_tracer
from repro.sqlengine import Database, SqlValue, prompt_schema_text

from .masking import MaskedClaim
from .methods import Sample, TranslationResult, VerificationMethod, render_sample
from .reconstruction import reconstruct


class AgentMethod(VerificationMethod):
    """Algorithm 6: iterative ReAct verification with post-processing."""

    retry_temperature = 0.5

    def __init__(self, client, name: str | None = None,
                 max_iterations: int = 8,
                 reconstruct_queries: bool = True) -> None:
        super().__init__(client, name)
        self.max_iterations = max_iterations
        #: When False, Algorithm 9 is skipped and the agent's *last*
        #: issued query is used verbatim (ablation A3 in DESIGN.md).
        self.reconstruct_queries = reconstruct_queries

    @property
    def kind(self) -> str:
        return "agent"

    def translate(
        self,
        masked: MaskedClaim,
        value_type: str,
        claim_value: SqlValue,
        claim_value_text: str,
        database: Database,
        sample: Sample | None,
        temperature: float,
    ) -> TranslationResult:
        # Imported lazily: repro.agents itself imports repro.core (the
        # claim-comparison helpers), so a module-level import here would
        # close an import cycle.
        from repro.agents import (
            DatabaseQueryingTool,
            ReActAgent,
            UniqueColumnValuesTool,
            agent_prompt,
        )

        querying_tool = DatabaseQueryingTool(
            database, claim_value, claim_value_text,
            analyze=self.analyze_sql,
        )
        tools = [UniqueColumnValuesTool(database), querying_tool]
        prompt = agent_prompt(
            masked.masked_sentence,
            value_type,
            prompt_schema_text(database),
            render_sample(sample),
            masked.masked_context,
            tools,
        )
        agent = ReActAgent(self.client, tools, self.max_iterations)
        outcome = agent.run(prompt, temperature)
        if not outcome.queries:
            return TranslationResult(
                query=None,
                response_text=outcome.final_answer or "",
                trace_text=outcome.trace.render(),
            )
        if self.reconstruct_queries:
            with current_tracer().span(
                "reconstruct", "reconstruction",
                queries=len(outcome.queries),
            ) as span:
                query = reconstruct(
                    list(outcome.queries), database, analyze=self.analyze_sql
                )
                span.set(reconstructed=query is not None)
        else:
            query = outcome.queries[-1]
        return TranslationResult(
            query=query,
            response_text=outcome.final_answer or "",
            issued_queries=list(outcome.queries),
            trace_text=outcome.trace.render(),
        )
