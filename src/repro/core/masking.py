"""Claim pre-processing (paper Algorithm 4, Section 5.1).

The claim value is obfuscated in both the claim sentence and the context
paragraph before any LLM sees the text. Without this, models "cheat" by
emitting queries that contain the claimed value as a constant (Figure 2),
which verifies nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from .claims import Claim

#: The mask token substituted for the claim value (Figure 3 prompts refer
#: to it as "x").
MASK_TOKEN = "x"


@dataclass(frozen=True)
class MaskedClaim:
    """Output of pre-processing: obfuscated sentence and context."""

    masked_sentence: str
    masked_context: str


def mask_claim(claim: Claim) -> MaskedClaim:
    """Pre-process a claim (Algorithm 4).

    Replaces the claim-value tokens with :data:`MASK_TOKEN` in the claim
    sentence, then substitutes the masked sentence for the original inside
    the context paragraph so the value cannot leak from surrounding text.
    """
    masked_sentence = mask_sentence(claim.sentence, claim.span.start,
                                    claim.span.end)
    if claim.sentence and claim.sentence in claim.context:
        masked_context = claim.context.replace(claim.sentence, masked_sentence)
    else:
        masked_context = claim.context
    return MaskedClaim(masked_sentence, masked_context)


def mask_sentence(sentence: str, start: int, end: int) -> str:
    """Replace tokens ``start..end`` (inclusive) of a sentence with the mask.

    Punctuation attached to the masked tokens is preserved, so "(2)" masks
    to "(x)" and "370," masks to "x," — keeping the sentence readable.
    """
    tokens = sentence.split()
    if end >= len(tokens):
        raise ValueError(
            f"span [{start}, {end}] out of range for sentence {sentence!r}"
        )
    target = tokens[start:end + 1]
    prefix = _leading_punctuation(target[0])
    suffix = _trailing_punctuation(target[-1])
    masked = prefix + MASK_TOKEN + suffix
    return " ".join(tokens[:start] + [masked] + tokens[end + 1:])


def _leading_punctuation(token: str) -> str:
    count = 0
    while count < len(token) and token[count] in "(['\"":
        count += 1
    return token[:count]


def _trailing_punctuation(token: str) -> str:
    count = len(token)
    while count > 0 and token[count - 1] in ".,;:!?)]'\"%":
        count -= 1
    return token[count:]
