"""Query plausibility and claim validation (paper Section 4).

Two functions from the paper live here:

* ``CorrectQuery`` (:func:`assess_query`) — is a candidate translation
  *plausibly* correct? Numeric: the query result falls in the same order
  of magnitude as the claimed value (wrong claims tend to be close to the
  truth [17], wrong translations tend to be far off). Textual: embedding
  cosine ≥ 0.7.
* ``CorrectClaim`` (:func:`validate_claim`, Algorithm 3) — given a
  plausible translation, is the claim itself correct? Numeric: round the
  query result to the claim's displayed precision and compare. Textual:
  embedding cosine ≥ 0.8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embeddings import text_similarity
from repro.sqlengine import Database, Engine, SqlValue, engine_for, to_text
from repro.sqlengine.analyzer import (
    analyze_sql,
    record_rejection,
    render_diagnostics,
    shape_diagnostics,
)
from repro.sqlengine.errors import EmptyResultError, SqlError
from repro.sqlengine.values import coerce_numeric

from .claims import (
    Claim,
    numeric_values_match,
    same_order_of_magnitude,
)

#: Embedding-similarity threshold for plausibility ("moderate-to-strong
#: semantic alignment between short text spans", Section 4).
PLAUSIBILITY_SIMILARITY = 0.7

#: Embedding-similarity threshold for claim correctness (Algorithm 3).
CORRECTNESS_SIMILARITY = 0.8


@dataclass(frozen=True)
class QueryAssessment:
    """Outcome of running CorrectQuery on one candidate translation."""

    executable: bool
    plausible: bool
    result: SqlValue = None
    error: str | None = None


def execute_single_cell(
    sql: str, database: Database, engine: Engine | None = None
) -> SqlValue:
    """Run a query and return its top-left cell.

    Uses the database's shared compile-and-cache engine (see
    :func:`repro.sqlengine.engine_for`) unless an explicit ``engine`` is
    supplied. Raises :class:`~repro.sqlengine.errors.SqlError` subclasses
    on parse or runtime failures, including :class:`EmptyResultError` for
    empty results — claims map to single-cell queries (Definition 2.4),
    so anything else is a failed translation.
    """
    active = engine if engine is not None else engine_for(database)
    return active.execute(sql).first_cell()


def static_rejection(
    sql: str, claim: Claim, database: Database
) -> str | None:
    """Run the static analyzer over one candidate; rendered errors or None.

    Two layers of verdicts can rule the query out before any row is
    touched: analyzer *errors* (a guaranteed runtime failure — unknown
    columns, arity mistakes, aggregate misuse), and claim-shape checks
    (:func:`~repro.sqlengine.analyzer.shape_diagnostics`: a multi-column
    result can never be the single cell of Definition 2.4, and a provably
    BOOLEAN/NULL result can never match a numeric claim). Warnings never
    reject.
    """
    analysis = analyze_sql(sql, database)
    diagnostics: tuple = analysis.errors
    if not diagnostics:
        claim_numeric = coerce_numeric(claim.value) is not None
        diagnostics = shape_diagnostics(analysis, claim_numeric=claim_numeric)
    if not diagnostics:
        return None
    record_rejection()
    return render_diagnostics(diagnostics)


def assess_query(
    sql: str | None,
    claim: Claim,
    database: Database,
    engine: Engine | None = None,
    *,
    analyze: bool = True,
) -> QueryAssessment:
    """CorrectQuery: execute a candidate query and judge its plausibility.

    With ``analyze`` on (the default), statically invalid queries are
    rejected without executing: an analyzer error means the naive engine
    was guaranteed to raise, so the assessment is the same
    ``executable=False`` the execution path would have produced, minus
    the execution. ``analyze=False`` restores the pure PR 3 behaviour
    (the determinism guard runs both ways).
    """
    if not sql:
        return QueryAssessment(False, False, error="no query produced")
    if analyze:
        rejection = static_rejection(sql, claim, database)
        if rejection is not None:
            return QueryAssessment(False, False, error=rejection)
    try:
        result = execute_single_cell(sql, database, engine)
    except EmptyResultError as error:
        # The query parsed and ran but selected nothing: executable, yet
        # there is no value to compare, hence not plausible.
        return QueryAssessment(True, False, error=str(error))
    except SqlError as error:
        return QueryAssessment(False, False, error=str(error))
    return QueryAssessment(
        True, _plausible(result, claim), result=result
    )


def _plausible(result: SqlValue, claim: Claim) -> bool:
    claimed = claim.value
    claimed_number = coerce_numeric(claimed)
    if claimed_number is not None:
        result_number = coerce_numeric(result)
        if result_number is None:
            return False
        return same_order_of_magnitude(result_number, claimed_number)
    if result is None:
        return False
    similarity = text_similarity(to_text(result), str(claimed))
    return similarity >= PLAUSIBILITY_SIMILARITY


def claim_matches_result(result: SqlValue, claim: Claim) -> bool:
    """CorrectClaim's comparison, given an already-executed query result.

    Numeric claims: round the result to the claim's displayed precision
    and compare. Textual: embedding cosine ≥ 0.8. Factored out of
    :func:`validate_claim` so the pipeline can reuse the result that
    :func:`assess_query` just produced instead of executing the SQL a
    second time.
    """
    claimed = claim.value
    if isinstance(claimed, (int, float)):
        result_number = coerce_numeric(result)
        if result_number is None:
            return False
        return numeric_values_match(result_number, claim.value_text)
    if result is None:
        return False
    similarity = text_similarity(to_text(result), str(claimed))
    return similarity >= CORRECTNESS_SIMILARITY


def validate_claim(
    sql: str, claim: Claim, database: Database, engine: Engine | None = None
) -> bool:
    """CorrectClaim (Algorithm 3): decide correctness from a trusted query.

    Raises :class:`~repro.sqlengine.errors.SqlError` if the query cannot be
    executed; callers are expected to have run :func:`assess_query` first.
    """
    return claim_matches_result(
        execute_single_cell(sql, database, engine), claim
    )
