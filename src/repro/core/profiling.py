"""Profiling verification methods on labeled data (paper Sections 3, 6).

CEDAR's scheduler needs, for every verification method, an estimate of its
per-try success probability ``A`` and expected dollar cost ``C``. Both are
measured by running the method once over a labeled sample of claims:

* a try *succeeds* when the method produces a plausible query
  (CorrectQuery passes) whose verdict agrees with the ground-truth label;
* cost and latency are read from the cost ledger, averaged per claim.

Profiling is the one place CEDAR requires labels (Section 8); Section
7.3.3 (our Figure 7 reproduction) studies how schedules built from one
domain's profile transfer to others.
"""

from __future__ import annotations

from repro.llm.ledger import CostLedger

from .claims import Claim, Document
from .cost_model import MethodProfile
from .masking import mask_claim
from .methods import VerificationMethod
from .plausibility import assess_query, validate_claim

#: Metadata key under which datasets store the ground-truth label.
LABEL_KEY = "label_correct"


def profile_method(
    method: VerificationMethod,
    documents: list[Document],
    ledger: CostLedger,
) -> MethodProfile:
    """Measure one method's accuracy and per-claim cost on labeled docs."""
    successes = 0
    total = 0
    checkpoint = ledger.checkpoint()
    for document in documents:
        for claim in document.claims:
            if LABEL_KEY not in claim.metadata:
                raise ValueError(
                    f"claim {claim.claim_id} has no ground-truth label; "
                    "profiling requires labeled data"
                )
            total += 1
            if _try_once(method, claim, document):
                successes += 1
    if total == 0:
        raise ValueError("profiling requires at least one claim")
    totals = ledger.totals_since(checkpoint)
    return MethodProfile(
        name=method.name,
        accuracy=successes / total,
        cost=totals.cost / total,
        latency_seconds=totals.latency_seconds / total,
    )


def profile_methods(
    methods: list[VerificationMethod],
    documents: list[Document],
    ledger: CostLedger,
) -> dict[str, MethodProfile]:
    """Profile several methods over the same labeled documents."""
    return {
        method.name: profile_method(method, documents, ledger)
        for method in methods
    }


def _try_once(
    method: VerificationMethod, claim: Claim, document: Document
) -> bool:
    masked = mask_claim(claim)
    value_type = "numeric" if claim.is_numeric else ""
    translation = method.translate(
        masked,
        value_type,
        claim.value,
        claim.value_text,
        document.data,
        None,
        0.0,
    )
    assessment = assess_query(translation.query, claim, document.data)
    if not assessment.plausible or translation.query is None:
        return False
    verdict = validate_claim(translation.query, claim, document.data)
    return verdict == bool(claim.metadata[LABEL_KEY])
