"""Multi-stage claim verification (paper Section 4, Algorithms 1-2).

CEDAR tries verification methods in schedule order, removing claims as
soon as a method produces a plausible translation. The first claim a
method verifies in a document is harvested as a few-shot sample for the
remaining claims (Algorithm 2's early return). Claims no method can
verify receive the paper's fallback verdict: *correct* if no method ever
produced an executable query (the claim is deemed unverifiable from the
data), *incorrect* if executable queries existed but none matched the
claimed value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.ledger import CostLedger
from repro.sqlengine import Database

from .claims import Claim, Document
from .masking import mask_claim
from .methods import Sample, VerificationMethod
from .plausibility import assess_query, validate_claim


@dataclass(frozen=True)
class ScheduleEntry:
    """One stage of a verification schedule: a method and its try budget."""

    method: VerificationMethod
    tries: int = 1

    def __post_init__(self) -> None:
        if self.tries < 0:
            raise ValueError("tries must be non-negative")


@dataclass
class ClaimReport:
    """Per-claim bookkeeping produced by the verifier."""

    claim_id: str
    verified_by: str | None = None
    attempts: int = 0
    method_attempts: dict[str, int] = field(default_factory=dict)
    plausible: bool = False
    fallback: bool = False
    saw_executable: bool = False
    last_executable_query: str | None = None


@dataclass
class VerificationRun:
    """Result of verifying a batch of documents."""

    documents: list[Document]
    reports: dict[str, ClaimReport] = field(default_factory=dict)

    def report_for(self, claim: Claim) -> ClaimReport:
        return self.reports[claim.claim_id]


class MultiStageVerifier:
    """Executes Algorithm 1 over documents with a given schedule."""

    def __init__(
        self,
        ledger: CostLedger | None = None,
        use_samples: bool = True,
    ) -> None:
        # Explicit None check: an empty ledger is falsy (it has __len__).
        self.ledger = ledger if ledger is not None else CostLedger()
        #: When False, the few-shot sample harvesting of Algorithm 1 is
        #: disabled (ablation A2 in DESIGN.md).
        self.use_samples = use_samples

    def verify_documents(
        self, documents: list[Document], schedule: list[ScheduleEntry]
    ) -> VerificationRun:
        """Verify every claim of every document (Algorithm 1)."""
        run = VerificationRun(documents)
        for document in documents:
            with self.ledger.tagged(f"doc:{document.doc_id}"):
                self._verify_document(document, schedule, run)
        return run

    def verify_document(
        self, document: Document, schedule: list[ScheduleEntry]
    ) -> VerificationRun:
        """Convenience wrapper for a single document."""
        return self.verify_documents([document], schedule)

    # -- Algorithm 1 ---------------------------------------------------------

    def _verify_document(
        self,
        document: Document,
        schedule: list[ScheduleEntry],
        run: VerificationRun,
    ) -> None:
        for claim in document.claims:
            run.reports[claim.claim_id] = ClaimReport(claim.claim_id)
        remaining = list(document.claims)
        for entry in schedule:
            if entry.tries == 0:
                continue
            sample: Sample | None = None
            for _ in range(entry.tries):
                if not remaining:
                    break
                if sample is None:
                    verified = self._verify_batch(
                        entry.method, remaining, None, document.data, run,
                        harvest_sample=self.use_samples,
                    )
                    remaining = _without(remaining, verified)
                    if verified and self.use_samples:
                        sample = _make_sample(verified[0])
                        more = self._verify_batch(
                            entry.method, remaining, sample, document.data, run
                        )
                        remaining = _without(remaining, more)
                else:
                    verified = self._verify_batch(
                        entry.method, remaining, sample, document.data, run
                    )
                    remaining = _without(remaining, verified)
            if not remaining:
                break
        for claim in remaining:
            self._apply_fallback(claim, run.reports[claim.claim_id])

    # -- Algorithm 2 ---------------------------------------------------------

    def _verify_batch(
        self,
        method: VerificationMethod,
        claims: list[Claim],
        sample: Sample | None,
        database: Database,
        run: VerificationRun,
        harvest_sample: bool = True,
    ) -> list[Claim]:
        """One Verify pass: apply one method to all remaining claims.

        Mirrors Algorithm 2, including the early return that hands the
        first verified claim back as a few-shot sample — suppressed when
        ``harvest_sample`` is False (the sample-free ablation), since the
        caller will not re-invoke with a sample and the remaining claims
        must be processed in this pass.
        """
        verified: list[Claim] = []
        for claim in claims:
            report = run.reports[claim.claim_id]
            masked = mask_claim(claim)
            value_type = "numeric" if claim.is_numeric else ""
            # Temperature 0 for the first invocation of *this* method on
            # this claim, the method's retry temperature afterwards
            # (Section 7.1: 0.25 one-shot retries, 0.5 agent retries).
            prior_tries = report.method_attempts.get(method.name, 0)
            temperature = 0.0 if prior_tries == 0 else method.retry_temperature
            with self.ledger.tagged(f"method:{method.name}"), \
                    self.ledger.tagged(f"claim:{claim.claim_id}"):
                translation = method.translate(
                    masked,
                    value_type,
                    claim.value,
                    claim.value_text,
                    database,
                    sample,
                    temperature,
                )
            report.attempts += 1
            report.method_attempts[method.name] = prior_tries + 1
            assessment = assess_query(translation.query, claim, database)
            if assessment.executable:
                report.saw_executable = True
                report.last_executable_query = translation.query
            if not assessment.plausible:
                continue
            claim.query = translation.query
            claim.correct = validate_claim(translation.query, claim, database)
            report.plausible = True
            report.verified_by = method.name
            if sample is None and harvest_sample:
                return [claim]
            verified.append(claim)
        return verified

    def _apply_fallback(self, claim: Claim, report: ClaimReport) -> None:
        """Verdict for claims no method verified (end of Section 4)."""
        report.fallback = True
        if report.saw_executable:
            claim.correct = False
            claim.query = report.last_executable_query
        else:
            claim.correct = True
            claim.query = None


def _make_sample(claim: Claim) -> Sample:
    masked = mask_claim(claim)
    assert claim.query is not None
    return Sample(masked.masked_sentence, claim.query)


def _without(claims: list[Claim], removed: list[Claim]) -> list[Claim]:
    removed_ids = {c.claim_id for c in removed}
    return [c for c in claims if c.claim_id not in removed_ids]
