"""Multi-stage claim verification (paper Section 4, Algorithms 1-2).

CEDAR tries verification methods in schedule order, removing claims as
soon as a method produces a plausible translation. The first claim a
method verifies in a document is harvested as a few-shot sample for the
remaining claims (Algorithm 2's early return). Claims no method can
verify receive the paper's fallback verdict: *correct* if no method ever
produced an executable query (the claim is deemed unverifiable from the
data), *incorrect* if executable queries existed but none matched the
claimed value.

Verifier behaviour is configured through :class:`VerifierConfig`, which
both :class:`MultiStageVerifier` (sequential) and
:class:`~repro.core.executor.ParallelVerifier` (concurrent) consume; the
old ``MultiStageVerifier(ledger=..., use_samples=...)`` signature keeps
working through a deprecation shim.
"""

from __future__ import annotations

import copy
import warnings
from dataclasses import dataclass, field, replace

import time

from repro.cache import CacheConfig, CacheStore, record_run_profiles
from repro.llm.base import LLMClient
from repro.llm.cache import CachingLLMClient, LLMCache
from repro.llm.ledger import CostLedger
from repro.llm.resilience import ResilientLLMClient, RetryPolicy
from repro.obs.tracer import NULL_TRACER, Tracer, current_tracer
from repro.sqlengine import Database, QueryResultCache, engine_for

from .claims import Claim, Document
from .masking import mask_claim
from .methods import Sample, VerificationMethod
from .plausibility import assess_query, claim_matches_result


@dataclass
class VerifierConfig:
    """Everything a verifier needs to know besides the schedule.

    One config object serves both executors: ``MultiStageVerifier``
    ignores ``workers`` (it is the ``workers=1`` special case), while
    ``ParallelVerifier`` fans documents and post-harvest claims out over
    a thread pool of that size. ``cache_size > 0`` memoises temperature-0
    completions (retries at temperature > 0 always bypass the cache —
    Assumption 1 needs them to be independent draws), and ``retry`` wraps
    every model call in transient-failure retry with backoff. A ``cache``
    *instance* wins over ``cache_size`` — the service layer passes one
    shared :class:`~repro.llm.cache.LLMCache` to every verifier it owns so
    requests warm each other's entries.
    """

    workers: int = 1
    use_samples: bool = True
    cache_size: int = 0                    # 0 disables response caching
    cache: LLMCache | None = None          # shared instance, wins over size
    retry: RetryPolicy | None = None       # None disables retry/backoff
    ledger: CostLedger | None = None       # None means a fresh ledger
    #: SQL query-result cache, mirroring the LLM cache knobs: a shared
    #: instance wins over the size; size 0 disables result caching for
    #: the verifier's databases entirely (the determinism guard runs
    #: with it both on and off).
    sql_cache_size: int = 256
    sql_cache: QueryResultCache | None = None
    #: Span-tree tracer for the run (see :mod:`repro.obs`). None keeps
    #: the ambient tracer (:func:`repro.obs.tracer.current_tracer`),
    #: which is the no-op :data:`~repro.obs.tracer.NULL_TRACER` unless a
    #: caller activated one. Tracing never changes verdicts, ledger
    #: entries, or reports — the determinism guard holds with it on.
    tracer: Tracer | None = None
    #: Static SQL analyzer gate: when True (default), statically invalid
    #: candidate queries are rejected before execution and the agent's
    #: querying tool returns rendered diagnostics instead of runtime
    #: errors. False restores execute-to-discover behaviour; the
    #: determinism guard asserts reports are byte-identical both ways
    #: when no query is rejected.
    analyze_sql: bool = True
    #: Persistent cache wiring (see :mod:`repro.cache`). With a
    #: ``CacheConfig(path=...)`` the LLM response and SQL result caches
    #: gain an L2 tier that survives restarts, and the LLM cache is
    #: enabled even when ``cache_size`` was left at 0 (a persistent tier
    #: without a cache in front of it would never be consulted).
    #: ``profiles=True`` additionally records ledger-derived per-method
    #: observations after every run, for
    #: :func:`repro.cache.warm_profiles`. None (the default) changes
    #: nothing: pure in-memory caching, byte-identical to before.
    cache_config: CacheConfig | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if self.sql_cache_size < 0:
            raise ValueError("sql_cache_size must be non-negative")

    def make_ledger(self) -> CostLedger:
        return self.ledger if self.ledger is not None else CostLedger()

    def open_cache_store(self) -> CacheStore | None:
        """The opened store behind ``cache_config`` (memoised), or None."""
        if self.cache_config is None:
            return None
        return self.cache_config.open()

    def make_cache(self) -> LLMCache | None:
        if self.cache is not None:
            return self.cache
        store = self.open_cache_store()
        if self.cache_size > 0:
            return LLMCache(self.cache_size, store=store)
        if store is not None and store.l2_for("llm") is not None:
            return LLMCache(store=store)
        return None

    def make_sql_cache(self) -> QueryResultCache | None:
        if self.sql_cache is not None:
            return self.sql_cache
        if self.sql_cache_size > 0:
            return QueryResultCache(
                self.sql_cache_size, store=self.open_cache_store(),
            )
        return None


@dataclass(frozen=True)
class ScheduleEntry:
    """One stage of a verification schedule: a method and its try budget.

    ``tries=0`` is an explicit *skip*: the stage is part of the schedule
    shape but consumes no budget and issues no calls. The DP scheduler
    never emits zero-try stages (they are stripped from every planned
    schedule); the value exists so ablations can toggle a stage off
    without renumbering the schedule. Negative budgets are rejected.
    """

    method: VerificationMethod
    tries: int = 1

    def __post_init__(self) -> None:
        if self.tries < 0:
            raise ValueError("tries must be non-negative")


@dataclass
class ClaimReport:
    """Per-claim bookkeeping produced by the verifier."""

    claim_id: str
    verified_by: str | None = None
    attempts: int = 0
    method_attempts: dict[str, int] = field(default_factory=dict)
    plausible: bool = False
    fallback: bool = False
    saw_executable: bool = False
    last_executable_query: str | None = None


@dataclass
class VerificationRun:
    """Result of verifying a batch of documents."""

    documents: list[Document]
    reports: dict[str, ClaimReport] = field(default_factory=dict)

    def report_for(self, claim: Claim) -> ClaimReport:
        return self.reports[claim.claim_id]


class VerificationObserver:
    """Streaming hooks into a verification run (every method a no-op).

    The service layer subclasses this to emit per-claim events the moment
    they land, instead of waiting for ``verify_documents`` to return.
    With a parallel executor the calls arrive from worker threads, so
    implementations must be thread-safe. Observers see state but never
    steer it — the one exception is :meth:`should_verify`, which lets a
    caller skip a document whose job was cancelled before its turn.
    Observer calls never influence verdicts, so the determinism contract
    of :mod:`repro.core.executor` is unaffected.
    """

    def should_verify(self, document: Document) -> bool:
        """Return False to skip a document (its claims stay unresolved)."""
        return True

    def document_started(self, document: Document) -> None:
        """Called once per document, before its first schedule stage."""

    def stage_started(self, document: Document, entry: ScheduleEntry) -> None:
        """Called when a schedule stage begins work on a document."""

    def claim_resolved(self, claim: Claim, report: ClaimReport) -> None:
        """Called when a claim reaches its final verdict (incl. fallback)."""


class MultiStageVerifier:
    """Executes Algorithm 1 over documents with a given schedule."""

    def __init__(
        self,
        config: VerifierConfig | CostLedger | None = None,
        use_samples: bool | None = None,
        *,
        ledger: CostLedger | None = None,
    ) -> None:
        config, legacy = _coerce_config(config, use_samples, ledger)
        if legacy:
            # stacklevel=2 points the warning at the code constructing the
            # verifier, not at this frame.
            warnings.warn(
                "MultiStageVerifier(ledger=..., use_samples=...) is "
                "deprecated; pass MultiStageVerifier(config="
                "VerifierConfig(ledger=..., use_samples=...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.config = config
        self.ledger = config.make_ledger()
        #: When False, the few-shot sample harvesting of Algorithm 1 is
        #: disabled (ablation A2 in DESIGN.md).
        self.use_samples = config.use_samples
        #: Shared across runs of this verifier so repeat verification of
        #: the same documents hits warm entries. None when disabled.
        self.cache = config.make_cache()
        #: Query-result cache bound to every database this verifier
        #: touches (via the database's shared engine). None disables SQL
        #: result caching.
        self.sql_cache = config.make_sql_cache()
        #: Streaming hooks (see :class:`VerificationObserver`). Usually
        #: passed per run via ``verify_documents(..., observer=...)``.
        self.observer: VerificationObserver | None = None
        #: Span-tree tracer for the current run; resolved per call in
        #: :meth:`verify_documents` (argument > config > ambient).
        self.tracer: Tracer = (
            config.tracer if config.tracer is not None else NULL_TRACER
        )

    def verify_documents(
        self,
        documents: list[Document],
        schedule: list[ScheduleEntry],
        observer: VerificationObserver | None = None,
        tracer: Tracer | None = None,
    ) -> VerificationRun:
        """Verify every claim of every document (Algorithm 1).

        ``observer`` receives streaming progress callbacks for the
        duration of this run (it replaces any observer set as an
        attribute, which is restored afterwards). ``tracer`` overrides
        the config's tracer for this run only; when neither is set the
        ambient :func:`~repro.obs.tracer.current_tracer` is used (the
        no-op null tracer unless a caller activated one).
        """
        run = VerificationRun(documents)
        previous = self.observer
        if observer is not None:
            self.observer = observer
        previous_tracer = self.tracer
        if tracer is not None:
            self.tracer = tracer
        elif self.config.tracer is not None:
            self.tracer = self.config.tracer
        else:
            self.tracer = current_tracer()
        # Warm-start profile store (opt-in via CacheConfig.profiles):
        # checkpoint the ledger now so only this run's spend is recorded.
        store = self.config.open_cache_store()
        profile_store = store.profile_store() if store is not None else None
        checkpoint = (
            self.ledger.checkpoint() if profile_store is not None else 0
        )
        try:
            self._execute(documents, self._instrument(schedule), run)
        finally:
            self.observer = previous
            self.tracer = previous_tracer
        if profile_store is not None:
            # Recording only *writes* observations; it never feeds back
            # into this run, so reports stay byte-identical either way.
            record_run_profiles(
                profile_store, run, self.ledger, since=checkpoint,
            )
        return run

    def verify_document(
        self, document: Document, schedule: list[ScheduleEntry]
    ) -> VerificationRun:
        """Convenience wrapper for a single document."""
        return self.verify_documents([document], schedule)

    # -- execution strategy (overridden by ParallelVerifier) ----------------

    def _execute(
        self,
        documents: list[Document],
        schedule: list[ScheduleEntry],
        run: VerificationRun,
    ) -> None:
        tracer = self.tracer
        for document in documents:
            with self.ledger.tagged(f"doc:{document.doc_id}"), \
                    tracer.activated(), \
                    tracer.span(
                        document.doc_id, "document",
                        doc_id=document.doc_id,
                        claims=len(document.claims),
                    ):
                self._verify_document(document, schedule, run)

    def _instrument(
        self, schedule: list[ScheduleEntry]
    ) -> list[ScheduleEntry]:
        """Stack the configured cache/retry wrappers onto every method.

        Methods are shallow-copied so the caller's objects keep their
        bare clients; all copies share one cache (and the verifier's
        ledger, through the wrapped clients). Disabling ``analyze_sql``
        is also applied here: the method copies carry the flag into the
        places the config cannot reach directly (the agent's querying
        tool and Algorithm 9 reconstruction).
        """
        analyzer_off = not self.config.analyze_sql
        if self.cache is None and self.config.retry is None \
                and not analyzer_off:
            return schedule
        instrumented = []
        for entry in schedule:
            client: LLMClient = entry.method.client
            if self.config.retry is not None:
                client = ResilientLLMClient(client, self.config.retry)
            if self.cache is not None:
                client = CachingLLMClient(client, self.cache)
            method = copy.copy(entry.method)
            method.client = client
            if analyzer_off:
                method.analyze_sql = False
            instrumented.append(ScheduleEntry(method, entry.tries))
        return instrumented

    # -- Algorithm 1 ---------------------------------------------------------

    def _verify_document(
        self,
        document: Document,
        schedule: list[ScheduleEntry],
        run: VerificationRun,
    ) -> None:
        for claim in document.claims:
            run.reports[claim.claim_id] = ClaimReport(claim.claim_id)
        observer = self.observer
        if observer is not None:
            if not observer.should_verify(document):
                return
            observer.document_started(document)
        remaining = list(document.claims)
        for entry in schedule:
            if entry.tries == 0:
                continue
            if observer is not None:
                observer.stage_started(document, entry)
            with self.tracer.span(
                entry.method.name, "stage",
                method=entry.method.name, tries=entry.tries,
                pending=len(remaining),
            ) as stage_span:
                sample: Sample | None = None
                for _ in range(entry.tries):
                    if not remaining:
                        break
                    if sample is None:
                        verified = self._verify_batch(
                            entry.method, remaining, None, document.data, run,
                            harvest_sample=self.use_samples,
                        )
                        remaining = _without(remaining, verified)
                        if verified and self.use_samples:
                            sample = _make_sample(verified[0])
                            more = self._verify_batch(
                                entry.method, remaining, sample,
                                document.data, run
                            )
                            remaining = _without(remaining, more)
                    else:
                        verified = self._verify_batch(
                            entry.method, remaining, sample, document.data, run
                        )
                        remaining = _without(remaining, verified)
                stage_span.set(unresolved=len(remaining))
            if not remaining:
                break
        for claim in remaining:
            self._apply_fallback(claim, run.reports[claim.claim_id])

    # -- Algorithm 2 ---------------------------------------------------------

    def _verify_batch(
        self,
        method: VerificationMethod,
        claims: list[Claim],
        sample: Sample | None,
        database: Database,
        run: VerificationRun,
        harvest_sample: bool = True,
    ) -> list[Claim]:
        """One Verify pass: apply one method to all remaining claims.

        Mirrors Algorithm 2, including the early return that hands the
        first verified claim back as a few-shot sample — suppressed when
        ``harvest_sample`` is False (the sample-free ablation), since the
        caller will not re-invoke with a sample and the remaining claims
        must be processed in this pass.
        """
        if sample is None and harvest_sample:
            # The harvest pass is inherently sequential: the scan stops at
            # the first verified claim, which becomes the sample.
            for claim in claims:
                if self._attempt_claim(
                    method, claim, None, database,
                    run.reports[claim.claim_id],
                ):
                    return [claim]
            return []
        # Past the harvest point (or with harvesting disabled) the
        # remaining claims are independent of one another — the hook the
        # parallel executor overrides to fan them out.
        return self._run_batch_independent(
            method, claims, sample, database, run
        )

    def _run_batch_independent(
        self,
        method: VerificationMethod,
        claims: list[Claim],
        sample: Sample | None,
        database: Database,
        run: VerificationRun,
    ) -> list[Claim]:
        """Apply one method to claims that share no state (sequentially)."""
        verified: list[Claim] = []
        for claim in claims:
            if self._attempt_claim(
                method, claim, sample, database, run.reports[claim.claim_id]
            ):
                verified.append(claim)
        return verified

    def _attempt_claim(
        self,
        method: VerificationMethod,
        claim: Claim,
        sample: Sample | None,
        database: Database,
        report: ClaimReport,
    ) -> bool:
        """One translation attempt for one claim; True when verified."""
        masked = mask_claim(claim)
        value_type = "numeric" if claim.is_numeric else ""
        # Temperature 0 for the first invocation of *this* method on
        # this claim, the method's retry temperature afterwards
        # (Section 7.1: 0.25 one-shot retries, 0.5 agent retries).
        prior_tries = report.method_attempts.get(method.name, 0)
        temperature = 0.0 if prior_tries == 0 else method.retry_temperature
        with self.tracer.span(
            method.name, "method",
            method=method.name, claim_id=claim.claim_id,
            attempt=prior_tries + 1, temperature=temperature,
        ) as method_span:
            with self.ledger.tagged(f"method:{method.name}"), \
                    self.ledger.tagged(f"claim:{claim.claim_id}"):
                translation = method.translate(
                    masked,
                    value_type,
                    claim.value,
                    claim.value_text,
                    database,
                    sample,
                    temperature,
                )
            report.attempts += 1
            report.method_attempts[method.name] = prior_tries + 1
            # One execution per candidate: CorrectQuery runs the SQL, and
            # CorrectClaim below reuses its result instead of re-executing.
            # The shared engine carries this verifier's result cache, so
            # repeated candidates across retries/stages are cache hits.
            engine = engine_for(database, self.sql_cache)
            sql_started = time.perf_counter()
            with self.tracer.span(
                "plausibility", "plausibility", claim_id=claim.claim_id,
            ) as check_span:
                assessment = assess_query(
                    translation.query, claim, database, engine,
                    analyze=self.config.analyze_sql,
                )
                check_span.set(
                    executable=assessment.executable,
                    plausible=assessment.plausible,
                )
            self.ledger.record_sql(time.perf_counter() - sql_started)
            if assessment.executable:
                report.saw_executable = True
                report.last_executable_query = translation.query
            if not assessment.plausible:
                method_span.set(verified=False)
                return False
            claim.query = translation.query
            claim.correct = claim_matches_result(assessment.result, claim)
            report.plausible = True
            report.verified_by = method.name
            method_span.set(verified=True, claim_correct=claim.correct)
        if self.observer is not None:
            self.observer.claim_resolved(claim, report)
        return True

    def _apply_fallback(self, claim: Claim, report: ClaimReport) -> None:
        """Verdict for claims no method verified (end of Section 4)."""
        report.fallback = True
        tracer = self.tracer
        if tracer.enabled:
            now = tracer.clock()
            tracer.record(
                f"fallback:{claim.claim_id}", "claim", now, now,
                claim_id=claim.claim_id,
                saw_executable=report.saw_executable,
                verdict="incorrect" if report.saw_executable else "correct",
            )
        if report.saw_executable:
            claim.correct = False
            claim.query = report.last_executable_query
        else:
            claim.correct = True
            claim.query = None
        if self.observer is not None:
            self.observer.claim_resolved(claim, report)


def _coerce_config(
    config: VerifierConfig | CostLedger | None,
    use_samples: bool | None,
    ledger: CostLedger | None,
) -> tuple[VerifierConfig, bool]:
    """Map the legacy ``(ledger, use_samples)`` signature onto a config.

    Passing a :class:`CostLedger` positionally, or the ``ledger=`` /
    ``use_samples=`` keywords, is deprecated in favour of
    ``MultiStageVerifier(config=VerifierConfig(...))``. Returns the
    coerced config plus a flag telling the caller to emit the
    :class:`DeprecationWarning` (from ``__init__``, so ``stacklevel=2``
    lands on the caller's code).
    """
    if isinstance(config, CostLedger):
        if ledger is not None:
            raise TypeError("pass the ledger positionally or by keyword, "
                            "not both")
        ledger = config
        config = None
    if ledger is not None or use_samples is not None:
        base = config if config is not None else VerifierConfig()
        overrides: dict = {}
        if ledger is not None:
            overrides["ledger"] = ledger
        if use_samples is not None:
            overrides["use_samples"] = use_samples
        return replace(base, **overrides), True
    return (config if config is not None else VerifierConfig()), False


def _make_sample(claim: Claim) -> Sample:
    masked = mask_claim(claim)
    assert claim.query is not None
    return Sample(masked.masked_sentence, claim.query)


def _without(claims: list[Claim], removed: list[Claim]) -> list[Claim]:
    removed_ids = {c.claim_id for c in removed}
    return [c for c in claims if c.claim_id not in removed_ids]
