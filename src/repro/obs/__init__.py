"""Unified observability layer: tracing, logging, metrics, telemetry.

This package is the one place the rest of the stack reports *where time
and money went*. It deliberately sits below every other ``repro``
package — nothing here imports pipeline, service, or engine code — so
any layer (LLM client, SQL engine, HTTP front end) can attach spans or
publish metrics without import cycles.

Five modules:

* :mod:`repro.obs.tracer` — deterministic span trees. Span ids are
  parent-scoped sequence numbers (``1``, ``1.2``, ``1.2.3`` …), never
  derived from wall clocks or randomness, so two runs that do the same
  work produce the *same tree* — the integration suite diffs parallel
  vs sequential runs on exactly this property. Wall times come only
  from the tracer's injected clock (enforced by cedarlint CDL015).
* :mod:`repro.obs.logging` — correlated structured logging: ndjson
  :class:`~repro.obs.logging.LogRecord` lines with a stable field
  order, trace/span/job correlation ids pulled from the ambient
  tracer, and pluggable sinks (ring buffer for ``/v1/debug/logs``,
  file for ``--log-file``).
* :mod:`repro.obs.telemetry` — a rolling-window aggregator over the
  stack's cumulative counters (queue depth, retries, cache hit rates,
  per-method spend) serving ``GET /v1/telemetry`` and the
  ``cedar_telemetry_*`` gauges.
* :mod:`repro.obs.metrics` — a process-level registry of named
  counters/gauges/histograms plus *collectors* that absorb the stats
  already kept elsewhere (cost ledger, LLM/SQL caches, engine strategy
  counters, analyzer counters) behind one ``snapshot()``.
* :mod:`repro.obs.export` — renderers: Chrome trace-event JSON (loads
  in Perfetto / ``chrome://tracing``), Prometheus text exposition for
  ``GET /metrics``, and ndjson span records.
"""

from .export import (
    to_chrome_trace,
    to_ndjson,
    to_prometheus,
    write_chrome_trace,
)
from .logging import (
    FileSink,
    LogRecord,
    Logger,
    RingBufferSink,
    add_sink,
    configure_logging,
    get_logger,
    remove_sink,
    reset_logging,
)
from .metrics import (
    Metric,
    MetricsRegistry,
    cache_metrics,
    engine_metrics,
    ledger_metrics,
)
from .telemetry import TelemetryWindow, hit_rate
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanDelta,
    Tracer,
    annotate_critical_path,
    critical_path,
    current_tracer,
    self_time_table,
    set_default_tracer,
    shift_times,
    span_from_dict,
    spans_from_dicts,
    strip_times,
)

__all__ = [
    "FileSink",
    "LogRecord",
    "Logger",
    "Metric",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RingBufferSink",
    "Span",
    "SpanDelta",
    "TelemetryWindow",
    "Tracer",
    "add_sink",
    "annotate_critical_path",
    "cache_metrics",
    "configure_logging",
    "critical_path",
    "current_tracer",
    "engine_metrics",
    "get_logger",
    "hit_rate",
    "ledger_metrics",
    "remove_sink",
    "reset_logging",
    "self_time_table",
    "set_default_tracer",
    "shift_times",
    "span_from_dict",
    "spans_from_dicts",
    "strip_times",
    "to_chrome_trace",
    "to_ndjson",
    "to_prometheus",
    "write_chrome_trace",
]
