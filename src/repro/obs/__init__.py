"""Unified observability layer: tracing, metrics, exports.

This package is the one place the rest of the stack reports *where time
and money went*. It deliberately sits below every other ``repro``
package — nothing here imports pipeline, service, or engine code — so
any layer (LLM client, SQL engine, HTTP front end) can attach spans or
publish metrics without import cycles.

Three modules:

* :mod:`repro.obs.tracer` — deterministic span trees. Span ids are
  parent-scoped sequence numbers (``1``, ``1.2``, ``1.2.3`` …), never
  derived from wall clocks or randomness, so two runs that do the same
  work produce the *same tree* — the integration suite diffs parallel
  vs sequential runs on exactly this property. Wall times come only
  from the tracer's injected clock (enforced by an AST lint in
  ``tools/check_invariants.py``).
* :mod:`repro.obs.metrics` — a process-level registry of named
  counters/gauges/histograms plus *collectors* that absorb the stats
  already kept elsewhere (cost ledger, LLM/SQL caches, engine strategy
  counters, analyzer counters) behind one ``snapshot()``.
* :mod:`repro.obs.export` — renderers: Chrome trace-event JSON (loads
  in Perfetto / ``chrome://tracing``), Prometheus text exposition for
  ``GET /metrics``, and ndjson structured logs with trace/span
  correlation ids.
"""

from .export import (
    to_chrome_trace,
    to_ndjson,
    to_prometheus,
    write_chrome_trace,
)
from .metrics import (
    Metric,
    MetricsRegistry,
    cache_metrics,
    engine_metrics,
    ledger_metrics,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanDelta,
    Tracer,
    current_tracer,
    set_default_tracer,
)

__all__ = [
    "Metric",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanDelta",
    "Tracer",
    "cache_metrics",
    "current_tracer",
    "engine_metrics",
    "ledger_metrics",
    "set_default_tracer",
    "to_chrome_trace",
    "to_ndjson",
    "to_prometheus",
    "write_chrome_trace",
]
