"""Rolling-window telemetry: the adaptive scheduler's input surface.

The stack already keeps cumulative counters everywhere — the ledger
counts retries and spend, the caches count hits, the service counts
jobs — but a scheduler reacting to *load* needs recent rates, not
lifetime totals. :class:`TelemetryWindow` closes that gap without
touching any hot path: providers (plain callables returning the
counters that already exist) are sampled into a bounded ring of
timestamped snapshots, and a ``snapshot()`` reports, for every counter,
the delta and per-second rate across the retained window alongside live
gauge values and derived ratios (cache hit rates).

Sampling happens opportunistically — after each dispatched batch and on
every read — so there is no background thread and an idle process pays
nothing. The window is exposed two ways:

* ``GET /v1/telemetry`` — the JSON :meth:`TelemetryWindow.snapshot`;
* ``cedar_telemetry_*`` gauges in ``GET /metrics``
  (:meth:`TelemetryWindow.metrics`), one ``_per_second`` gauge per
  counter plus the raw gauges and derived ratios.

Counter groups registered with ``keyed_by`` fan one provider out into
labelled samples — ``register_counters("method_cost_usd", fn,
keyed_by="method")`` turns the ledger's per-method ``method:`` tag
totals into ``cedar_telemetry_method_cost_usd_per_second{method=...}``.

Like every ``repro/obs`` module, no clock is read directly: wall times
come only from the injected ``clock`` callable (CDL015).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping

from .metrics import Metric

#: Default window width and sample-ring bound.
DEFAULT_WINDOW_SECONDS = 60.0
DEFAULT_MAX_SAMPLES = 120


class _Sample:
    """One timestamped snapshot of every cumulative counter."""

    __slots__ = ("ts", "flat", "keyed")

    def __init__(self, ts: float, flat: dict, keyed: dict) -> None:
        self.ts = ts
        self.flat = flat          # {"group_name": value}
        self.keyed = keyed        # {group: {key: value}}


class TelemetryWindow:
    """Windowed deltas over cumulative counters plus live gauges."""

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        self.window_seconds = window_seconds
        self.max_samples = max_samples
        self.clock = clock
        self._gauges: list[Callable[[], Mapping]] = []
        #: (group, provider, keyed_by): flat groups render their keys as
        #: ``{group}_{key}`` names; keyed groups render the group as the
        #: family and each key as a ``keyed_by`` label value.
        self._counters: list[tuple[str, Callable[[], Mapping],
                                   str | None]] = []
        self._derived: list[tuple[str, Callable[[Mapping], float]]] = []
        self._samples: list[_Sample] = []
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------

    def register_gauges(self, provider: Callable[[], Mapping]) -> None:
        """Add a live-value provider: ``() -> {name: value}``."""
        self._gauges.append(provider)

    def register_counters(
        self,
        group: str,
        provider: Callable[[], Mapping],
        keyed_by: str | None = None,
    ) -> None:
        """Add a cumulative-counter provider: ``() -> {name: total}``.

        Values must be monotonically non-decreasing totals; the window
        differences them. With ``keyed_by``, the provider's keys become
        label values of one metric family named after the group.
        """
        self._counters.append((group, provider, keyed_by))

    def register_derived(
        self, name: str, fn: Callable[[Mapping], float]
    ) -> None:
        """Add a ratio computed from the windowed *deltas* — e.g. a hit
        rate from hit/miss deltas: ``fn({"llm_cache_hits": 3.0, ...})``.
        """
        self._derived.append((name, fn))

    # -- sampling ------------------------------------------------------------

    def _collect(self) -> tuple[dict, dict]:
        flat: dict = {}
        keyed: dict = {}
        for group, provider, keyed_by in self._counters:
            try:
                values = provider()
            except Exception:
                continue  # a broken provider must not break the scrape
            if keyed_by is None:
                for key in sorted(values):
                    flat[f"{group}_{key}"] = float(values[key])
            else:
                bucket = keyed.setdefault(group, {})
                for key in sorted(values):
                    bucket[str(key)] = float(values[key])
        return flat, keyed

    def sample(self) -> None:
        """Push one snapshot into the ring and evict what fell out of
        the window (always keeping at least two samples, so a sparse
        scrape cadence still yields a usable delta)."""
        flat, keyed = self._collect()
        with self._lock:
            now = self.clock()
            self._samples.append(_Sample(now, flat, keyed))
            horizon = now - self.window_seconds
            while (len(self._samples) > 2
                   and self._samples[1].ts >= horizon):
                self._samples.pop(0)
            while len(self._samples) > self.max_samples:
                self._samples.pop(0)

    # -- reads ---------------------------------------------------------------

    @staticmethod
    def _stat(newest: float, oldest: float, span: float) -> dict:
        delta = newest - oldest
        return {
            "total": round(newest, 9),
            "delta": round(delta, 9),
            "per_second": round(delta / span, 9) if span > 0 else 0.0,
        }

    def snapshot(self) -> dict:
        """Sample, then report windowed counter rates, live gauges, and
        derived ratios (the ``GET /v1/telemetry`` body)."""
        self.sample()
        with self._lock:
            oldest, newest = self._samples[0], self._samples[-1]
            span = newest.ts - oldest.ts
            samples = len(self._samples)
        counters = {
            name: self._stat(newest.flat[name],
                             oldest.flat.get(name, 0.0), span)
            for name in sorted(newest.flat)
        }
        keyed = {}
        for group in sorted(newest.keyed):
            old_group = oldest.keyed.get(group, {})
            keyed[group] = {
                key: self._stat(newest.keyed[group][key],
                                old_group.get(key, 0.0), span)
                for key in sorted(newest.keyed[group])
            }
        deltas = {name: stat["delta"] for name, stat in counters.items()}
        derived = {}
        for name, fn in self._derived:
            try:
                derived[name] = round(float(fn(deltas)), 9)
            except Exception:
                continue
        gauges: dict = {}
        for provider in self._gauges:
            try:
                values = provider()
            except Exception:
                continue
            for key in sorted(values):
                gauges[key] = float(values[key])
        return {
            "window_seconds": round(span, 6),
            "samples": samples,
            "gauges": gauges,
            "counters": counters,
            "keyed": keyed,
            "derived": derived,
        }

    def metrics(self) -> list[Metric]:
        """The snapshot as ``cedar_telemetry_*`` gauge families."""
        snapshot = self.snapshot()
        metrics = [Metric.gauge(
            "cedar_telemetry_window_seconds", snapshot["window_seconds"],
            "Width of the telemetry window actually covered",
        )]
        for name, value in snapshot["gauges"].items():
            metrics.append(Metric.gauge(
                f"cedar_telemetry_{name}", value,
                "Live value sampled at scrape time",
            ))
        for name, stat in snapshot["counters"].items():
            metrics.append(Metric.gauge(
                f"cedar_telemetry_{name}_per_second", stat["per_second"],
                "Windowed rate over the telemetry window",
            ))
        for group, stats in snapshot["keyed"].items():
            keyed_by = next(
                (k for g, _p, k in self._counters if g == group and k),
                "key",
            )
            for key, stat in stats.items():
                metrics.append(Metric.gauge(
                    f"cedar_telemetry_{group}_per_second",
                    stat["per_second"],
                    "Windowed rate over the telemetry window",
                    {keyed_by: key},
                ))
        for name, value in snapshot["derived"].items():
            metrics.append(Metric.gauge(
                f"cedar_telemetry_{name}", value,
                "Ratio derived from windowed counter deltas",
            ))
        return metrics


def hit_rate(hits_key: str, misses_key: str) -> Callable[[Mapping], float]:
    """A derived-ratio helper: hit-rate over the window's deltas.

    Returns 0.0 for an idle window (no traffic) rather than dividing
    by zero.
    """

    def compute(deltas: Mapping) -> float:
        hits = float(deltas.get(hits_key, 0.0))
        misses = float(deltas.get(misses_key, 0.0))
        total = hits + misses
        return hits / total if total > 0 else 0.0

    return compute
