"""Process-level metrics registry with pluggable collectors.

The repo already keeps careful stats — :class:`~repro.llm.ledger.
CostLedger` totals, :class:`~repro.llm.cache.CacheStats`, the SQL
engine's plan/result-cache and strategy counters, analyzer counters,
the service's queue/batch/latency numbers — but each has its own shape
and its own accessor. This module gives them one meeting point:

* a :class:`MetricsRegistry` holds *owned* counters/gauges/histograms
  (for code that wants to publish a number directly), plus
  *collectors*: callables run at snapshot time that translate an
  existing subsystem's stats into :class:`Metric` samples. Collection
  is pull-based on purpose — the hot paths keep their existing cheap
  counters and pay nothing extra per event.
* :meth:`MetricsRegistry.snapshot` returns every metric as plain data;
  :func:`repro.obs.export.to_prometheus` renders the same snapshot as
  Prometheus text exposition for ``GET /metrics``.

Metric names follow Prometheus conventions: ``cedar_`` prefix,
``_total`` suffix on counters, base units in the name
(``_seconds``, ``_usd``). Labels distinguish instances of the same
kind of thing (``cedar_cache_hits_total{cache="llm"}`` vs
``{cache="sql_result"}``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

LabelSet = tuple[tuple[str, str], ...]


def _labels(labels: dict[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Metric:
    """One metric family: a name, a type, and its labelled samples.

    ``samples`` maps a label set to a value. For histograms the value is
    a dict ``{"bounds": [...], "counts": [...], "sum": s, "count": n}``
    where ``counts`` has one entry per bound plus the overflow bucket.
    """

    name: str
    type: str                      # "counter" | "gauge" | "histogram"
    help: str = ""
    samples: tuple[tuple[LabelSet, object], ...] = ()

    @staticmethod
    def counter(name: str, value: float, help: str = "",
                labels: dict[str, str] | None = None) -> "Metric":
        return Metric(name, "counter", help, ((_labels(labels), value),))

    @staticmethod
    def gauge(name: str, value: float, help: str = "",
              labels: dict[str, str] | None = None) -> "Metric":
        return Metric(name, "gauge", help, ((_labels(labels), value),))

    @staticmethod
    def histogram(name: str, bounds: Sequence[float],
                  counts: Sequence[int], total: float, count: int,
                  help: str = "",
                  labels: dict[str, str] | None = None) -> "Metric":
        value = {"bounds": list(bounds), "counts": list(counts),
                 "sum": total, "count": count}
        return Metric(name, "histogram", help, ((_labels(labels), value),))


def merge_metrics(metrics: Iterable[Metric]) -> list[Metric]:
    """Fold same-named metric families together, preserving first-seen
    order (so ``cedar_cache_hits_total`` from three collectors renders
    as one family with three labelled samples)."""
    merged: dict[str, Metric] = {}
    order: list[str] = []
    for metric in metrics:
        existing = merged.get(metric.name)
        if existing is None:
            merged[metric.name] = metric
            order.append(metric.name)
        else:
            merged[metric.name] = Metric(
                existing.name, existing.type,
                existing.help or metric.help,
                existing.samples + metric.samples,
            )
    return [merged[name] for name in order]


class Counter:
    """A monotonically increasing value owned by the registry."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def collect(self) -> Metric:
        return Metric.counter(self.name, self.value, self.help)


class Gauge:
    """A value that can go both ways."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def collect(self) -> Metric:
        return Metric.gauge(self.name, self.value, self.help)


class Histogram:
    """Fixed-bound histogram with an overflow bucket (Prometheus shape)."""

    __slots__ = ("name", "help", "bounds", "_lock", "_counts", "_sum",
                 "_count")

    def __init__(self, name: str, bounds: Sequence[float],
                 help: str = "") -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.help = help
        self.bounds = list(bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def collect(self) -> Metric:
        with self._lock:
            return Metric.histogram(
                self.name, self.bounds, list(self._counts),
                self._sum, self._count, self.help,
            )


class MetricsRegistry:
    """Named metrics plus collectors, snapshotted atomically enough.

    ``counter()``/``gauge()``/``histogram()`` get-or-create owned
    instruments; ``register_collector`` adds a zero-argument callable
    returning :class:`Metric` objects built from some other subsystem's
    live stats. ``snapshot()`` runs everything and merges same-named
    families.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}
        self._collectors: list[Callable[[], Iterable[Metric]]] = []

    def _instrument(self, name: str, factory: Callable[[], object],
                    expected: type):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, expected):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._instrument(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._instrument(name, lambda: Gauge(name, help), Gauge)

    def histogram(self, name: str, bounds: Sequence[float],
                  help: str = "") -> Histogram:
        return self._instrument(
            name, lambda: Histogram(name, bounds, help), Histogram
        )

    def register_collector(
        self, collector: Callable[[], Iterable[Metric]]
    ) -> None:
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> list[Metric]:
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        metrics = [instrument.collect() for instrument in instruments]
        for collector in collectors:
            metrics.extend(collector())
        return merge_metrics(metrics)

    def snapshot(self) -> dict:
        """Every metric as plain JSON-ready data, keyed by name.

        Unlabelled single-sample families collapse to their value;
        labelled families map rendered label strings to values.
        """
        result: dict = {}
        for metric in self.collect():
            if len(metric.samples) == 1 and not metric.samples[0][0]:
                result[metric.name] = metric.samples[0][1]
            else:
                result[metric.name] = {
                    ",".join(f"{k}={v}" for k, v in labels) or "": value
                    for labels, value in metric.samples
                }
        return result


# -- collectors for the stats the repo already keeps -------------------------


def ledger_metrics(ledger) -> list[Metric]:
    """Translate :class:`~repro.llm.ledger.CostLedger` totals.

    Includes the cumulative retry/backoff seconds aggregated from
    :class:`~repro.llm.ledger.RetryEvent` delays — previously recorded
    but never summed anywhere.
    """
    totals = ledger.totals()
    return [
        Metric.counter("cedar_llm_calls_total", totals.calls,
                       "LLM calls recorded in the cost ledger"),
        Metric.counter("cedar_llm_tokens_total", totals.prompt_tokens,
                       "Tokens by direction", {"direction": "prompt"}),
        Metric.counter("cedar_llm_tokens_total", totals.completion_tokens,
                       "Tokens by direction", {"direction": "completion"}),
        Metric.counter("cedar_llm_cost_usd_total", totals.cost,
                       "Cumulative LLM spend in USD"),
        Metric.counter("cedar_llm_latency_seconds_total",
                       totals.latency_seconds,
                       "Cumulative model-call latency"),
        Metric.counter("cedar_llm_retries_total", ledger.retry_count,
                       "Retry decisions taken by the resilience layer"),
        Metric.counter("cedar_llm_retry_backoff_seconds_total",
                       ledger.retry_backoff_seconds,
                       "Cumulative backoff sleep requested by retries"),
        Metric.counter("cedar_sql_executions_total", ledger.sql_executions,
                       "SQL executions timed by the verifier"),
        Metric.counter("cedar_sql_seconds_total", ledger.sql_seconds,
                       "Wall-clock spent executing SQL in the verifier"),
    ]


def _stats_getter(stats):
    if isinstance(stats, dict):
        return stats.get
    return lambda key, default=0: getattr(stats, key, default)


def _cache_samples(labels: dict[str, str], get) -> list[Metric]:
    return [
        Metric.counter("cedar_cache_hits_total", get("hits", 0),
                       "Cache hits by cache", labels),
        Metric.counter("cedar_cache_misses_total", get("misses", 0),
                       "Cache misses by cache", labels),
        Metric.counter("cedar_cache_bypasses_total", get("bypasses", 0),
                       "Lookups that skipped the cache", labels),
        Metric.counter("cedar_cache_evictions_total", get("evictions", 0),
                       "LRU evictions by cache", labels),
        Metric.counter("cedar_cache_expirations_total",
                       get("expirations", 0),
                       "TTL expirations by cache", labels),
        Metric.gauge("cedar_cache_entries", get("size", 0),
                     "Current entries by cache", labels),
    ]


def cache_metrics(cache_name: str, stats, tiers: dict | None = None)\
        -> list[Metric]:
    """Translate one :class:`~repro.cache.CacheStats`-shaped object —
    every cache (LLM, SQL result, plan, analyzer memo) shares the
    counter names now, distinguished by the ``cache`` label.

    ``tiers`` (or a ``"tiers"`` key inside a dict-shaped ``stats``, as
    the tiered ``QueryResultCache.stats()`` emits) adds per-tier samples
    labelled ``{cache=..., tier=l1|l2}`` on the same families.
    """
    get = _stats_getter(stats)
    metrics = _cache_samples({"cache": cache_name}, get)
    if tiers is None and isinstance(stats, dict):
        tiers = stats.get("tiers")
    if tiers:
        for tier_name, tier_stats in sorted(tiers.items()):
            metrics.extend(_cache_samples(
                {"cache": cache_name, "tier": tier_name},
                _stats_getter(tier_stats),
            ))
    return metrics


def engine_metrics(stats: dict | None = None) -> list[Metric]:
    """Translate ``repro.sqlengine.engine_stats()`` output: plan cache,
    strategy counters, and analyzer counters."""
    if stats is None:
        # Imported lazily so obs never depends on sqlengine at import
        # time (obs sits below every other package).
        from repro.sqlengine import engine_stats

        stats = engine_stats()
    metrics = cache_metrics("sql_plan", stats.get("plan_cache", {}))
    for strategy, count in sorted(stats.get("strategies", {}).items()):
        metrics.append(Metric.counter(
            "cedar_sql_strategy_total", count,
            "Engine execution-strategy firings", {"strategy": strategy},
        ))
    for counter, count in sorted(stats.get("analyzer", {}).items()):
        metrics.append(Metric.counter(
            "cedar_sql_analyzer_total", count,
            "Static analyzer activity", {"counter": counter},
        ))
    for decision, count in sorted(stats.get("optimizer", {}).items()):
        metrics.append(Metric.counter(
            "cedar_sql_optimizer_total", count,
            "Cost-based optimizer decisions", {"decision": decision},
        ))
    table_stats = stats.get("stats", {})
    if table_stats:
        metrics.append(Metric.counter(
            "cedar_sql_stats_tables_profiled_total",
            table_stats.get("tables_profiled", 0),
            "Tables profiled by the statistics layer",
        ))
        metrics.append(Metric.counter(
            "cedar_sql_stats_columns_profiled_total",
            table_stats.get("columns_profiled", 0),
            "Columns profiled by the statistics layer",
        ))
        metrics.append(Metric.counter(
            "cedar_sql_stats_build_seconds_total",
            table_stats.get("build_seconds", 0.0),
            "Wall-clock spent building column statistics",
        ))
    analyzer_memo = stats.get("analyzer_memo")
    if analyzer_memo:
        metrics.extend(cache_metrics("sql_analysis", analyzer_memo))
    result_cache = stats.get("result_cache")
    if result_cache:
        metrics.extend(cache_metrics("sql_result", result_cache))
    return metrics
