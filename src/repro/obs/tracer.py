"""Deterministic span trees for the verification stack.

A :class:`Tracer` records a forest of :class:`Span` objects describing
one run: documents at the roots, then stages, claim attempts, and the
leaf work items (LLM calls, SQL executions, agent steps, tool calls,
plausibility checks, reconstruction, retry backoff). Spans carry wall
times, a status, and typed attributes — but their *identity* is purely
structural: a span's id is its 1-based position under its parent,
joined with dots (``"2.1.3"`` = third child of the first child of the
second root). No clock or RNG ever feeds an id, which is what makes the
house invariant testable: a parallel run and a sequential run of the
same work produce byte-identical trees once wall times are stripped.

Concurrency follows the cost ledger's capture/absorb contract
(:mod:`repro.llm.ledger`): a worker thread records into a private
:class:`SpanDelta` (:meth:`Tracer.capture`), and the coordinating
thread grafts the delta's spans into the tree in submission order
(:meth:`Tracer.absorb`). Span order therefore reflects the *logical*
order of work, not scheduling luck.

Wall times come exclusively from the tracer's injected ``clock``
(default :func:`time.perf_counter`, passed by reference and never
called at import time). ``tools/check_invariants.py`` enforces that no
code in this package calls ``time.*`` or ``random`` directly.

The hot-path API is deliberately tiny:

* ``with tracer.span(name, kind, attr=...):`` — nested span.
* ``tracer.record(name, kind, start, end, ...)`` — pre-timed leaf span
  (used by the SQL engine, which already times itself).
* ``tracer.annotate(...)`` / ``tracer.annotate_latest(...)`` — attach
  attributes to the open span / the span that just finished.

Layers that may run without any tracing consult
:func:`current_tracer`, which returns the thread's active tracer, the
process default, or the shared :data:`NULL_TRACER` whose every method
is a no-op.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator, Mapping

#: Span kinds used across the stack (free-form strings are allowed; these
#: are the taxonomy the reports and tests key on).
KINDS = (
    "document",
    "claim",
    "stage",
    "method",
    "llm_call",
    "sql_execute",
    "agent_step",
    "tool_call",
    "plausibility",
    "reconstruction",
    "retry",
    "queue_wait",
    # Cluster-router spans (docs/observability.md "Distributed tracing").
    "job",
    "admission",
    "route",
    "rpc",
)

#: Attributes whose *values* are derived from wall times (the critical-
#: path annotation). They are stripped alongside ``start``/``end`` by
#: ``include_times=False`` renderings and :func:`strip_times`, so the
#: timeless tree stays byte-identical across runs.
WALL_TIME_ATTRIBUTES = ("critical_path_seconds", "critical_path")

#: Attribute values longer than this are truncated on insert, so a span
#: tree never retains unbounded prompt/SQL text.
MAX_ATTRIBUTE_LENGTH = 200


def _clip(value):
    if isinstance(value, str) and len(value) > MAX_ATTRIBUTE_LENGTH:
        return value[: MAX_ATTRIBUTE_LENGTH - 1] + "…"
    return value


class Span:
    """One timed unit of work. Mutable while open, settled once closed."""

    __slots__ = ("name", "kind", "start", "end", "status", "attributes",
                 "children")

    def __init__(
        self,
        name: str,
        kind: str,
        start: float,
        attributes: dict | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.start = start
        self.end = start
        self.status = "ok"
        self.attributes = attributes if attributes is not None else {}
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set(self, **attributes) -> "Span":
        for key, value in attributes.items():
            self.attributes[key] = _clip(value)
        return self

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, span_id: str = "1", include_times: bool = True) -> dict:
        """Plain-dict rendering with structural ids assigned on the way.

        ``include_times=False`` drops the wall-time fields — the shape
        the determinism tests compare, and the shape documented as "the
        span tree minus wall times".
        """
        attributes = dict(self.attributes)
        if not include_times:
            for key in WALL_TIME_ATTRIBUTES:
                attributes.pop(key, None)
        record: dict = {
            "span_id": span_id,
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "attributes": attributes,
            "children": [
                child.to_dict(f"{span_id}.{index}", include_times)
                for index, child in enumerate(self.children, start=1)
            ],
        }
        if include_times:
            record["start"] = self.start
            record["end"] = self.end
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"children={len(self.children)})")


class SpanDelta:
    """A worker thread's private slice of the tree (see ``capture``)."""

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: list[Span] = []


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span` (hand-rolled for
    speed: the generator-based ``contextmanager`` costs ~2x as much)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.status = "error"
            self.span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.span)


class Tracer:
    """Builds one deterministic span forest; safe to share across threads.

    Every thread keeps its own open-span stack, so spans started on a
    worker nest under that worker's spans only. Cross-thread structure
    is stitched with :meth:`capture`/:meth:`absorb` — never by wall
    clock — which keeps the forest identical between parallel and
    sequential executions of the same work.
    """

    #: Cheap flag the hot paths branch on; the null tracer overrides it.
    enabled = True

    def __init__(
        self,
        trace_id: str = "trace",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.trace_id = trace_id
        self.clock = clock
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- thread-local state --------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _sink(self) -> SpanDelta | None:
        return getattr(self._local, "sink", None)

    def _attach_root(self, span: Span) -> None:
        sink = self._sink()
        if sink is not None:
            sink.spans.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- span construction ---------------------------------------------------

    def span(self, name: str, kind: str, **attributes) -> _SpanHandle:
        """Open a nested span; closes (and attaches) on block exit."""
        span = Span(name, kind, self.clock(),
                    {k: _clip(v) for k, v in attributes.items()})
        self._stack().append(span)
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self.clock()
        stack = self._stack()
        # Balanced by construction (span() pushes, handle __exit__ pops),
        # but tolerate a foreign pop so a bug degrades to a flat tree
        # rather than an exception inside a finally block.
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self._attach_root(span)
        self._local.latest = span

    def record(
        self,
        name: str,
        kind: str,
        start: float,
        end: float,
        status: str = "ok",
        **attributes,
    ) -> Span:
        """Attach one already-timed leaf span (convenience kwargs form)."""
        for key, value in attributes.items():
            if isinstance(value, str) and len(value) > MAX_ATTRIBUTE_LENGTH:
                attributes[key] = value[: MAX_ATTRIBUTE_LENGTH - 1] + "…"
        span = self.leaf(name, kind, start, end, attributes, status)
        # ``leaf`` skips the bookkeeping for :meth:`annotate_latest`;
        # the cache layer reaches back to spans recorded through here.
        self._local.latest = span
        return span

    def leaf(
        self,
        name: str,
        kind: str,
        start: float,
        end: float,
        attributes: dict,
        status: str = "ok",
    ) -> Span:
        """Lowest-overhead :meth:`record`: no stack ops, no kwargs packing.

        The caller hands over ownership of ``attributes`` and is
        responsible for clipping any value that may exceed
        :data:`MAX_ATTRIBUTE_LENGTH` (``record`` clips for you; this
        path trusts the caller). Unlike ``record`` it also does not
        update the :meth:`annotate_latest` target. Deliberately flat —
        no helper calls, ``Span`` built without re-entering ``__init__``
        — because the SQL engine invokes this once per execution and
        its cost is exactly the traced-vs-untraced gap BENCH_obs.json
        budgets.
        """
        span = Span.__new__(Span)
        span.name = name
        span.kind = kind
        span.start = start
        span.end = end
        span.status = status
        span.attributes = attributes
        span.children = []
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].children.append(span)
        else:
            sink = getattr(self._local, "sink", None)
            if sink is not None:
                sink.spans.append(span)
            else:
                with self._lock:
                    self.roots.append(span)
        return span

    def annotate(self, **attributes) -> None:
        """Set attributes on the innermost open span (no-op at top level)."""
        stack = self._stack()
        if stack:
            stack[-1].set(**attributes)

    def annotate_latest(self, **attributes) -> None:
        """Set attributes on this thread's most recently finished span.

        The cache layer uses this to stamp ``cache="miss"`` onto the
        ``llm_call`` span the inner client just closed.
        """
        latest = getattr(self._local, "latest", None)
        if latest is not None:
            latest.set(**attributes)

    # -- capture / absorb (the merge-on-join protocol) -----------------------

    def capture(self) -> "_CaptureHandle":
        """Buffer this thread's spans into a private :class:`SpanDelta`.

        Entering also *activates* this tracer on the worker thread, so
        instrumented lower layers (engine, LLM clients) see it through
        :func:`current_tracer` without any global state.
        """
        return _CaptureHandle(self)

    def absorb(self, delta: SpanDelta) -> None:
        """Graft a captured delta under the current span (or the roots).

        Call in submission order — that is what makes the tree order
        logical rather than temporal.
        """
        stack = self._stack()
        if stack:
            stack[-1].children.extend(delta.spans)
        else:
            sink = self._sink()
            if sink is not None:
                sink.spans.extend(delta.spans)
            else:
                with self._lock:
                    self.roots.extend(delta.spans)

    def activated(self) -> "_ActivationHandle":
        """Make this tracer the thread's :func:`current_tracer`."""
        return _ActivationHandle(self)

    # -- introspection -------------------------------------------------------

    def current_span_name(self) -> str | None:
        """The innermost *open* span's name on this thread, or None.

        Structural span ids do not exist until render time, so the name
        is the stable handle available while work runs — the structured
        logger stamps it onto records as the ``span`` correlation id.
        """
        stack = self._stack()
        return stack[-1].name if stack else None

    def tree(self, include_times: bool = True) -> list[dict]:
        """The finished forest as plain dicts with structural span ids."""
        with self._lock:
            roots = list(self.roots)
        return [
            root.to_dict(str(index), include_times)
            for index, root in enumerate(roots, start=1)
        ]

    def drain_roots(
        self, predicate: Callable[[Span], bool] | None = None
    ) -> list[Span]:
        """Remove and return finished root spans (all, or those matching).

        The service uses this to peel each batch's document spans off a
        shared tracer and file them under the owning job.
        """
        with self._lock:
            if predicate is None:
                drained, self.roots = self.roots, []
            else:
                drained = [s for s in self.roots if predicate(s)]
                self.roots = [s for s in self.roots if not predicate(s)]
        return drained

    def span_count(self) -> int:
        with self._lock:
            return sum(1 for root in self.roots for _ in root.walk())

    def __len__(self) -> int:
        with self._lock:
            return len(self.roots)


class _CaptureHandle:
    __slots__ = ("_tracer", "_delta", "_previous_sink", "_previous_active")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._delta = SpanDelta()

    def __enter__(self) -> SpanDelta:
        tracer = self._tracer
        self._previous_sink = tracer._sink()
        tracer._local.sink = self._delta
        self._previous_active = getattr(_ACTIVE, "tracer", None)
        _ACTIVE.tracer = tracer
        return self._delta

    def __exit__(self, *exc_info) -> None:
        self._tracer._local.sink = self._previous_sink
        _ACTIVE.tracer = self._previous_active


class _ActivationHandle:
    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def __enter__(self) -> Tracer:
        self._previous = getattr(_ACTIVE, "tracer", None)
        _ACTIVE.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        _ACTIVE.tracer = self._previous


class NullTracer(Tracer):
    """A tracer that records nothing; every call is a near-free no-op.

    Instrumented code can call ``tracer.span(...)`` unconditionally —
    when tracing is off it gets this singleton and pays one branch.
    """

    enabled = False

    _NULL_HANDLE: "_NullHandle"

    def __init__(self) -> None:
        super().__init__(trace_id="null")

    def span(self, name: str, kind: str, **attributes) -> "_NullHandle":
        return self._NULL_HANDLE

    def record(self, name, kind, start, end, status="ok", **attributes):
        return _NULL_SPAN

    def leaf(self, name, kind, start, end, attributes, status="ok"):
        return _NULL_SPAN

    def annotate(self, **attributes) -> None:
        pass

    def annotate_latest(self, **attributes) -> None:
        pass

    def capture(self):
        return _NULL_CAPTURE

    def absorb(self, delta) -> None:
        pass


class _NullHandle:
    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        pass


class _NullCapture:
    __slots__ = ()

    def __enter__(self) -> SpanDelta:
        return _NULL_DELTA

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = Span("null", "null", 0.0)
_NULL_DELTA = SpanDelta()
_NULL_CAPTURE = _NullCapture()
NullTracer._NULL_HANDLE = _NullHandle()

#: The shared do-nothing tracer.
NULL_TRACER = NullTracer()

# -- ambient tracer ----------------------------------------------------------

_ACTIVE = threading.local()
_DEFAULT: Tracer | None = None


def current_tracer() -> Tracer:
    """The thread's active tracer, else the process default, else null.

    Never returns None: callers branch on ``tracer.enabled`` (a plain
    class attribute — one dict lookup) when they want to skip attribute
    construction entirely.
    """
    tracer = getattr(_ACTIVE, "tracer", None)
    if tracer is not None:
        return tracer
    return _DEFAULT if _DEFAULT is not None else NULL_TRACER


def set_default_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear, with None) the process-wide fallback tracer.

    Used by CLI front ends (``repro.demo --trace``, the experiment
    runner) that want one trace for everything a process does. Returns
    the previous default so callers can restore it.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = tracer
    return previous


def strip_times(tree: list[dict] | Mapping) -> list[dict] | dict:
    """Recursively drop wall-time fields from a :meth:`Tracer.tree` dump.

    Equivalent to ``tree(include_times=False)`` but usable on an
    already-rendered dump (e.g. one loaded back from JSON). Also drops
    the wall-time-derived attributes (:data:`WALL_TIME_ATTRIBUTES`).
    """
    if isinstance(tree, list):
        return [strip_times(node) for node in tree]
    stripped = {}
    for key, value in tree.items():
        if key in ("start", "end"):
            continue
        if key == "children":
            stripped[key] = strip_times(value)
        elif key == "attributes":
            stripped[key] = {k: v for k, v in value.items()
                             if k not in WALL_TIME_ATTRIBUTES}
        else:
            stripped[key] = value
    return stripped


# -- serialization and analysis helpers --------------------------------------


def span_from_dict(payload: Mapping) -> Span:
    """Rebuild a :class:`Span` tree from :meth:`Span.to_dict` output.

    The cluster router uses this to reconstruct a worker's span tree
    from the wire so it can graft the subtree under its own job root.
    Structural ids are discarded — they are reassigned at render time.
    """
    span = Span(
        str(payload.get("name", "")),
        str(payload.get("kind", "")),
        float(payload.get("start", 0.0)),
        dict(payload.get("attributes") or {}),
    )
    span.end = float(payload.get("end", span.start))
    span.status = str(payload.get("status", "ok"))
    span.children = [span_from_dict(child)
                     for child in payload.get("children", [])]
    return span


def spans_from_dicts(payloads) -> list[Span]:
    return [span_from_dict(payload) for payload in payloads]


def shift_times(span: Span, delta: float) -> Span:
    """Shift a span tree's wall times by ``delta`` seconds, in place.

    Stitching rebases worker-process clocks onto the router's timeline:
    the two monotonic clocks share no epoch, so the router aligns the
    worker's earliest span with the moment its RPC was sent.
    """
    for node in span.walk():
        node.start += delta
        node.end += delta
    return span


def self_time(span: Span) -> float:
    """A span's duration minus its children's (never negative)."""
    child_total = sum(child.duration for child in span.children)
    return max(0.0, span.duration - child_total)


def critical_path(span: Span) -> tuple[float, list[str]]:
    """The heaviest root-to-leaf chain through ``span``.

    Weight is *self time* summed along the chain, so a parent that
    merely wraps its children contributes nothing and the path descends
    to where time was actually spent. Ties break on the first child —
    child order is logical submission order, so the tie-break is
    deterministic.
    """
    own = self_time(span)
    if not span.children:
        return own, [span.name]
    best_seconds, best_chain = -1.0, []
    for child in span.children:
        seconds, chain = critical_path(child)
        if seconds > best_seconds:
            best_seconds, best_chain = seconds, chain
    return own + best_seconds, [span.name] + best_chain


def annotate_critical_path(root: Span) -> Span:
    """Stamp ``critical_path_seconds`` + the chain onto a root span.

    Both values derive from wall times, so they live in
    :data:`WALL_TIME_ATTRIBUTES` and vanish from timeless renderings.
    """
    seconds, chain = critical_path(root)
    root.set(
        critical_path_seconds=round(seconds, 6),
        critical_path=" > ".join(chain),
    )
    return root


def self_time_table(roots) -> list[dict]:
    """Aggregate self time per span name across a forest.

    Rows sort by self time (descending) then name; ``repro.demo
    --trace-summary`` renders this as the per-span cost table.
    """
    totals: dict[str, dict] = {}
    for root in roots:
        for span in root.walk():
            row = totals.setdefault(
                span.name,
                {"name": span.name, "kind": span.kind, "count": 0,
                 "self_seconds": 0.0, "total_seconds": 0.0},
            )
            row["count"] += 1
            row["self_seconds"] += self_time(span)
            row["total_seconds"] += span.duration
    rows = sorted(totals.values(),
                  key=lambda row: (-row["self_seconds"], row["name"]))
    for row in rows:
        row["self_seconds"] = round(row["self_seconds"], 6)
        row["total_seconds"] = round(row["total_seconds"], 6)
    return rows
