"""Correlated structured logging: ndjson records with stable field order.

Every log line is one JSON object — a :class:`LogRecord` — whose keys
appear in a *fixed, documented order* (``ts``, ``level``, ``component``,
``event``, then the correlation ids, then sorted extra fields), so logs
diff cleanly and downstream parsers never depend on dict luck. Records
carry three correlation ids:

* ``trace_id`` — the ambient tracer's id (:func:`~repro.obs.tracer.
  current_tracer`), so a log line written inside a traced batch names
  the trace it belongs to;
* ``span`` — the innermost *open* span's name on the logging thread
  (structural span ids are assigned at render time, after the tree is
  final, so the name is the stable handle available while work runs);
* ``job_id`` — bound explicitly by the service layers that know it
  (``logger.bind(job_id=...)`` or a ``job_id=`` field).

Sinks are process-global and deliberately dumb: a bounded
:class:`RingBufferSink` backs ``GET /v1/debug/logs`` on the service and
the cluster router, and an optional :class:`FileSink` (``--log-file``)
appends ndjson for shippers. With no sinks installed, logging costs one
attribute read per call.

Like the tracer, this module never reads a clock directly: timestamps
flow through an injected ``clock`` callable (default :func:`time.time`,
passed by reference — enforced by cedarlint CDL015 for everything under
``repro/obs/``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import IO, Callable, Mapping

from .tracer import current_tracer

#: Severity levels, least to most severe.
LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {level: rank for rank, level in enumerate(LEVELS)}

#: The canonical leading keys of every rendered record, in order. Extra
#: fields follow, sorted by name. This ordering is part of the log
#: schema (see docs/observability.md) — tests assert on it.
FIELD_ORDER = ("ts", "level", "component", "event",
               "trace_id", "span", "job_id")

#: Default ring-buffer capacity for the debug-log endpoints.
DEFAULT_BUFFER_CAPACITY = 1024


class LogRecord:
    """One structured log line; immutable once constructed."""

    __slots__ = ("ts", "level", "component", "event",
                 "trace_id", "span", "job_id", "fields")

    def __init__(
        self,
        ts: float,
        level: str,
        component: str,
        event: str,
        trace_id: str | None = None,
        span: str | None = None,
        job_id: str | None = None,
        fields: Mapping | None = None,
    ) -> None:
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown log level {level!r}; one of {LEVELS}")
        self.ts = ts
        self.level = level
        self.component = component
        self.event = event
        self.trace_id = trace_id
        self.span = span
        self.job_id = job_id
        self.fields = dict(fields) if fields else {}

    def to_dict(self) -> dict:
        """Plain-dict rendering with the canonical key order.

        The dict is built in :data:`FIELD_ORDER` (None correlation ids
        are omitted) followed by the extra fields sorted by name —
        ``json.dumps`` preserves insertion order, so :meth:`to_json`
        inherits the stable ordering for free.
        """
        record: dict = {
            "ts": round(self.ts, 6),
            "level": self.level,
            "component": self.component,
            "event": self.event,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.span is not None:
            record["span"] = self.span
        if self.job_id is not None:
            record["job_id"] = self.job_id
        for key in sorted(self.fields):
            record[key] = self.fields[key]
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping) -> "LogRecord":
        """Rebuild a record from :meth:`to_dict` output (round-trips)."""
        known = {key: payload.get(key) for key in FIELD_ORDER}
        fields = {key: value for key, value in payload.items()
                  if key not in FIELD_ORDER}
        return cls(
            ts=float(known["ts"] or 0.0),
            level=str(known["level"] or "info"),
            component=str(known["component"] or ""),
            event=str(known["event"] or ""),
            trace_id=known["trace_id"],
            span=known["span"],
            job_id=known["job_id"],
            fields=fields,
        )

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        return cls.from_dict(json.loads(line))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LogRecord({self.level} {self.component}.{self.event} "
                f"job={self.job_id})")


# -- sinks -------------------------------------------------------------------


class RingBufferSink:
    """The last N records, in arrival order — the ``/v1/debug/logs``
    backing store. Thread-safe; old records fall off the front."""

    def __init__(self, capacity: int = DEFAULT_BUFFER_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._records: deque[LogRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, record: LogRecord) -> None:
        with self._lock:
            self._records.append(record)

    def tail(self, n: int | None = None) -> list[LogRecord]:
        """The most recent ``n`` records (all, when ``n`` is None)."""
        with self._lock:
            records = list(self._records)
        if n is not None and n >= 0:
            records = records[len(records) - min(n, len(records)):]
        return records

    def to_ndjson(self, n: int | None = None) -> str:
        lines = [record.to_json() for record in self.tail(n)]
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class FileSink:
    """Append ndjson lines to a file (the ``--log-file`` flag).

    Opens lazily in append mode and flushes per record — the volume
    here is operator events, not per-claim chatter, so durability wins
    over batching.
    """

    def __init__(self, path_or_file: str | IO[str]) -> None:
        self._lock = threading.Lock()
        if hasattr(path_or_file, "write"):
            self._handle: IO[str] | None = path_or_file  # type: ignore
            self._path = None
        else:
            self._handle = None
            self._path = str(path_or_file)

    def emit(self, record: LogRecord) -> None:
        with self._lock:
            if self._handle is None:
                assert self._path is not None
                self._handle = open(self._path, "a", encoding="utf-8")
            self._handle.write(record.to_json() + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self._path is not None:
                self._handle.close()
                self._handle = None


# -- the process-wide sink registry ------------------------------------------


class _LoggingState:
    """Module-level sink list, level threshold, and injected clock."""

    __slots__ = ("sinks", "level_rank", "clock", "lock")

    def __init__(self) -> None:
        self.sinks: list = []
        self.level_rank = _LEVEL_RANK["debug"]
        self.clock: Callable[[], float] = time.time
        self.lock = threading.Lock()


_STATE = _LoggingState()


def add_sink(sink) -> None:
    """Install a sink (anything with ``emit(record)``)."""
    with _STATE.lock:
        if sink not in _STATE.sinks:
            _STATE.sinks.append(sink)


def remove_sink(sink) -> None:
    with _STATE.lock:
        if sink in _STATE.sinks:
            _STATE.sinks.remove(sink)


def configure_logging(
    level: str | None = None,
    clock: Callable[[], float] | None = None,
) -> None:
    """Set the process-wide level threshold and/or timestamp clock."""
    if level is not None:
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown log level {level!r}; one of {LEVELS}")
        _STATE.level_rank = _LEVEL_RANK[level]
    if clock is not None:
        _STATE.clock = clock


def reset_logging() -> None:
    """Drop every sink and restore defaults (test isolation hook)."""
    with _STATE.lock:
        _STATE.sinks = []
    _STATE.level_rank = _LEVEL_RANK["debug"]
    _STATE.clock = time.time


# -- loggers -----------------------------------------------------------------


class Logger:
    """A component-named handle onto the process sink set.

    ``bind(**fields)`` derives a child logger whose records always carry
    those fields — the idiom for attaching a ``job_id`` once instead of
    threading it through every call site.
    """

    __slots__ = ("component", "_bound")

    def __init__(self, component: str,
                 bound: Mapping | None = None) -> None:
        self.component = component
        self._bound = dict(bound) if bound else {}

    def bind(self, **fields) -> "Logger":
        merged = dict(self._bound)
        merged.update(fields)
        return Logger(self.component, merged)

    def log(self, level: str, event: str, **fields) -> None:
        sinks = _STATE.sinks
        if not sinks or _LEVEL_RANK.get(level, 0) < _STATE.level_rank:
            return
        merged = dict(self._bound)
        merged.update(fields)
        job_id = merged.pop("job_id", None)
        explicit_trace = merged.pop("trace_id", None)
        tracer = current_tracer()
        # An explicit ``trace_id=`` kwarg wins over the ambient tracer —
        # the cluster router correlates by minted trace id without ever
        # activating a tracer on its event loop.
        trace_id = (explicit_trace if explicit_trace is not None
                    else tracer.trace_id if tracer.enabled else None)
        span = tracer.current_span_name() if tracer.enabled else None
        record = LogRecord(
            ts=_STATE.clock(),
            level=level,
            component=self.component,
            event=event,
            trace_id=trace_id,
            span=span,
            job_id=str(job_id) if job_id is not None else None,
            fields=merged,
        )
        for sink in list(sinks):
            try:
                sink.emit(record)
            except Exception:
                # A broken sink must never take down the code that logs.
                continue

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


def get_logger(component: str) -> Logger:
    """A logger for ``component`` (cheap; loggers hold no sink state)."""
    return Logger(component)
