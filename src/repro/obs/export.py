"""Trace and metrics exporters.

Three output formats, all derived from the in-memory structures and
never feeding back into them:

* :func:`to_chrome_trace` — the Chrome trace-event JSON format (an
  object with a ``traceEvents`` array of complete ``"ph": "X"`` events,
  timestamps in microseconds). Loads directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``; each root span
  gets its own track so concurrent documents render side by side.
* :func:`to_prometheus` — the Prometheus text exposition format
  (version 0.0.4) for a :class:`~repro.obs.metrics.MetricsRegistry`;
  this is the body of the service's ``GET /metrics``.
* :func:`to_ndjson` — one structured-log JSON object per span with
  trace/span/parent correlation ids, for grep-able post-mortems and
  log shippers.

Determinism note: exporters assign span ids structurally (the same
parent-scoped sequence numbers as :meth:`Tracer.tree`), so everything
except the wall-time fields is reproducible run over run.
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterable, Iterator

from .metrics import Metric, MetricsRegistry
from .tracer import Span, Tracer


# -- Chrome trace events -----------------------------------------------------


def to_chrome_trace(
    source: Tracer | list[Span], process_name: str = "cedar"
) -> dict:
    """Render a tracer (or a list of root spans) as trace-event JSON."""
    roots = source.roots if isinstance(source, Tracer) else list(source)
    events: list[dict] = [{
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": process_name},
    }]
    epoch = min((span.start for root in roots for span in root.walk()),
                default=0.0)
    for lane, root in enumerate(roots, start=1):
        events.append({
            "ph": "M", "pid": 1, "tid": lane, "name": "thread_name",
            "args": {"name": f"{root.kind}:{root.name}"},
        })
        for span in root.walk():
            events.append({
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": round((span.start - epoch) * 1e6, 3),
                "dur": round(max(0.0, span.end - span.start) * 1e6, 3),
                "pid": 1,
                "tid": lane,
                "args": {**span.attributes, "status": span.status},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    source: Tracer | list[Span], path_or_file: str | IO[str],
    process_name: str = "cedar",
) -> None:
    """Serialise :func:`to_chrome_trace` output to a path or open file."""
    payload = to_chrome_trace(source, process_name)
    if hasattr(path_or_file, "write"):
        json.dump(payload, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)


# -- ndjson structured logs --------------------------------------------------


def iter_span_records(
    source: Tracer | list[Span], trace_id: str | None = None
) -> Iterator[dict]:
    """Depth-first span records with structural correlation ids."""
    if isinstance(source, Tracer):
        roots = source.roots
        trace_id = trace_id if trace_id is not None else source.trace_id
    else:
        roots = list(source)
        trace_id = trace_id if trace_id is not None else "trace"

    def emit(span: Span, span_id: str, parent_id: str | None):
        yield {
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": span.name,
            "kind": span.kind,
            "status": span.status,
            "start": span.start,
            "end": span.end,
            "duration_seconds": round(span.end - span.start, 9),
            "attributes": dict(span.attributes),
        }
        for index, child in enumerate(span.children, start=1):
            yield from emit(child, f"{span_id}.{index}", span_id)

    for index, root in enumerate(roots, start=1):
        yield from emit(root, str(index), None)


def to_ndjson(source: Tracer | list[Span],
              trace_id: str | None = None) -> str:
    """One JSON object per span, newline-delimited, depth-first."""
    return "\n".join(
        json.dumps(record, sort_keys=True)
        for record in iter_span_records(source, trace_id)
    )


# -- Prometheus text exposition ----------------------------------------------


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _render_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label(value)}"' for key, value in pairs)
    return "{" + body + "}"


def _render_metric(metric: Metric) -> Iterator[str]:
    if metric.help:
        yield f"# HELP {metric.name} {metric.help}"
    yield f"# TYPE {metric.name} {metric.type}"
    for labels, value in metric.samples:
        if metric.type == "histogram":
            cumulative = 0
            bounds = list(value["bounds"]) + [math.inf]
            for bound, count in zip(bounds, value["counts"]):
                cumulative += count
                le = "+Inf" if math.isinf(bound) else _format_value(bound)
                yield (f"{metric.name}_bucket"
                       f"{_render_labels(labels, (('le', le),))} "
                       f"{cumulative}")
            yield (f"{metric.name}_sum{_render_labels(labels)} "
                   f"{_format_value(value['sum'])}")
            yield (f"{metric.name}_count{_render_labels(labels)} "
                   f"{value['count']}")
        else:
            yield (f"{metric.name}{_render_labels(labels)} "
                   f"{_format_value(value)}")


def to_prometheus(
    source: MetricsRegistry | Iterable[Metric],
) -> str:
    """Render a registry (or metric list) as text exposition format.

    The output ends with a newline, as the format requires.
    """
    metrics = (source.collect() if isinstance(source, MetricsRegistry)
               else list(source))
    lines: list[str] = []
    for metric in metrics:
        lines.extend(_render_metric(metric))
    return "\n".join(lines) + "\n"
