"""AggChecker-style baseline (Jo et al., SIGMOD 2019 [14]).

A reimplementation of the published design at the level the comparison
needs: no LLM — claims are matched to queries from a bounded search space
by keyword similarity, and the claimed value is used as a probabilistic
signal to pick among candidates (AggChecker's core idea, which the paper
credits as the origin of CEDAR's plausibility test).

Search space (as in the original): a single aggregate (or plain lookup) on
one column, with at most one equality predicate whose constant appears in
the claim sentence. Percentage queries, sub-queries, and joins are outside
the space, which is what bounds the system's recall. Textual claims are
unsupported (the paper reports '-' for AggChecker on WikiText).
"""

from __future__ import annotations

from repro.core.claims import Claim, Document, same_order_of_magnitude
from repro.core.plausibility import validate_claim
from repro.sqlengine import Database, engine_for
from repro.sqlengine.ast_nodes import quote_identifier, quote_string
from repro.sqlengine.errors import SqlError
from repro.sqlengine.values import coerce_numeric

from .base import Baseline

#: Aggregates the original system searches over.
_AGGREGATES = ("", "COUNT", "SUM", "AVG", "MAX", "MIN")

#: Cap on candidate queries enumerated per claim (the original system
#: bounds its search with probabilistic pruning).
_MAX_CANDIDATES = 160

#: How many top-ranked candidates are actually executed per claim.
TOP_K_CANDIDATES = 3

#: Amplitude of the deterministic ranking noise modelling the imperfect
#: learned keyword prior of the published system, by whether the sentence
#: contains an aggregation cue word. The prior was trained on data-summary
#: phrasing ("average", "total", "percent"); raw value lookups — the bulk
#: of TabFact — give it nothing to anchor on, which is why the published
#: system collapses there (Table 2: 34.6% recall).
RANKING_NOISE_CUED = 0.6
RANKING_NOISE_UNCUED = 1.6

#: Minimum raw prior score the best candidate must reach before the
#: system commits to a verdict; below it the claim passes unverified.
CONFIDENCE_GATE = 0.85

#: Aggregation cue words the learned prior keys on.
_AGG_CUES = ("average", "total", "combined", "highest", "lowest", "percent",
             "sum", "count", "most", "fewest", "number of", "of the")


class AggCheckerSystem(Baseline):
    """Keyword-matching claim-to-query search with value-based ranking."""

    name = "aggchecker"
    supports_textual = False

    def verify_documents(self, documents: list[Document]) -> None:
        for document in documents:
            for claim in document.claims:
                claim.correct = self._verify_claim(claim, document.data)

    def _verify_claim(self, claim: Claim, database: Database) -> bool:
        if not claim.is_numeric:
            # Textual claims are outside the system's model; pass through.
            return True
        claimed = coerce_numeric(claim.value)
        engine = engine_for(database)
        # Rank candidates by the learned keyword prior FIRST, then evaluate
        # only the top few — the published system cannot afford to execute
        # its whole search space, and its prior is imperfect (modelled as
        # deterministic ranking noise), which bounds recall.
        sentence_lower = claim.sentence.lower()
        cued = any(cue in sentence_lower for cue in _AGG_CUES)
        amplitude = RANKING_NOISE_CUED if cued else RANKING_NOISE_UNCUED
        candidates = list(self._candidates(claim, database))
        if not candidates or max(s for _, s in candidates) < CONFIDENCE_GATE:
            # No candidate carries enough posterior mass: the probabilistic
            # model abstains and the claim passes as correct — the
            # published system's behaviour on phrasing its keyword priors
            # cannot anchor (most of TabFact).
            return True
        ranked = sorted(
            (
                (score + _ranking_noise(claim.claim_id, sql, amplitude), sql)
                for sql, score in candidates
            ),
            key=lambda pair: -pair[0],
        )[:TOP_K_CANDIDATES]
        best: tuple[float, str] | None = None
        for prior_score, sql in ranked:
            try:
                result = engine.execute(sql).first_cell()
            except SqlError:
                continue
            result_number = coerce_numeric(result)
            if result_number is None:
                continue
            if not same_order_of_magnitude(result_number, claimed):
                continue
            # Among evaluated candidates, plausibility plus the prior pick
            # the winner, with a tie-break towards results closest to the
            # claimed value (AggChecker's probabilistic evidence merge).
            closeness = 1.0 / (1.0 + abs(result_number - float(claimed)))
            score = prior_score + 0.25 * closeness
            if best is None or score > best[0]:
                best = (score, sql)
        if best is None:
            # No plausible query among the top candidates: claim deemed
            # unverifiable, default to correct (CEDAR's convention too).
            return True
        claim.query = best[1]
        return validate_claim(best[1], claim, database)

    def _candidates(self, claim: Claim, database: Database):
        """Enumerate (sql, keyword_score) candidates for one claim."""
        sentence = claim.sentence.lower()
        count = 0
        for table in database.tables():
            table_ref = quote_identifier(table.name)
            predicates = self._matched_predicates(sentence, table)
            numeric_columns = [
                column.name
                for column in table.columns()
                if column.type_name in ("INTEGER", "REAL")
            ]
            for column in numeric_columns:
                keyword = _keyword_overlap(column, sentence)
                column_ref = quote_identifier(column)
                for aggregate in _AGGREGATES:
                    expression = (
                        f"{aggregate}({column_ref})" if aggregate
                        else column_ref
                    )
                    agg_bonus = 0.1 if aggregate in ("", "COUNT") else 0.0
                    for where, predicate_score in predicates:
                        if not aggregate and not where:
                            continue  # bare column scan is not single-cell
                        sql = f"SELECT {expression} FROM {table_ref}{where}"
                        yield sql, keyword + predicate_score + agg_bonus
                        count += 1
                        if count >= _MAX_CANDIDATES:
                            return

    def _matched_predicates(self, sentence: str, table):
        """Equality predicates whose constants occur in the sentence."""
        options: list[tuple[str, float]] = [("", 0.0)]
        for column in table.columns():
            if column.type_name != "TEXT":
                continue
            for value in table.unique_column_values(column.name):
                text = str(value)
                if len(text) >= 3 and text.lower() in sentence:
                    where = (
                        f" WHERE {quote_identifier(column.name)} = "
                        f"{quote_string(text)}"
                    )
                    options.append((where, 0.5 + 0.01 * len(text)))
        options.sort(key=lambda pair: -pair[1])
        return options[:8]


def _ranking_noise(claim_id: str, sql: str, amplitude: float) -> float:
    """Deterministic per-candidate prior noise in [-amplitude, +amplitude]."""
    import hashlib

    digest = hashlib.blake2s(
        f"aggc|{claim_id}|{sql}".encode("utf-8"), digest_size=8
    ).digest()
    fraction = int.from_bytes(digest, "big") / 2**64
    return (2.0 * fraction - 1.0) * amplitude


def _keyword_overlap(column_name: str, sentence: str) -> float:
    """Share of a column name's word parts that occur in the sentence."""
    parts = [p for p in column_name.lower().replace("-", "_").split("_") if p]
    words = [p for p in parts if not p.isdigit() and len(p) > 2]
    if not words:
        return 0.0
    hits = sum(1 for word in words if word in sentence)
    return hits / len(words)
