"""Prior fact-checking systems CEDAR is compared against (Section 7.2)."""

from .aggchecker_system import AggCheckerSystem
from .base import Baseline
from .tapex import TapexBaseline
from .text_to_sql import TextToSqlBaseline

__all__ = [
    "AggCheckerSystem",
    "Baseline",
    "TapexBaseline",
    "TextToSqlBaseline",
]
