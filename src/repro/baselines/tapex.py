"""TAPEX-style baseline (Liu et al., ICLR 2022 [22]).

TAPEX is a table-pretrained seq2seq model classifying a (flattened table,
statement) pair as entailed or refuted. Two properties drive its published
profile, both modelled here:

* the **entire table is flattened into the input**, and the encoder has a
  hard 1024-token window — large tables (AggChecker's survey data) do not
  fit, the statement cannot be grounded, and the model defaults to its
  majority class ('entailed'), which is why the paper reports 0 recall on
  AggChecker;
* on tables that fit (TabFact's small Wikipedia tables) it is a strong,
  *direct* classifier — the runner-up on TabFact.

The classifier head is simulated: a seeded draw succeeds (predicts the
true label) with a probability that decays with claim difficulty and with
how much of the window the flattened table consumes.
"""

from __future__ import annotations

import hashlib
import random

from repro.core.claims import Document
from repro.llm.tokenizer import count_tokens
from repro.llm.world import ClaimWorld
from repro.sqlengine import markdown_table_text

from .base import Baseline

#: TAPEX's real encoder window (BART-large).
CONTEXT_WINDOW_TOKENS = 1024

#: Classification skill on an easy claim over a tiny table.
BASE_ACCURACY = 0.86

#: Accuracy lost per unit of claim difficulty.
DIFFICULTY_SLOPE = 0.45

#: Accuracy lost as the flattened table fills the window (fraction used).
CROWDING_SLOPE = 0.25

#: When the classifier errs, it predicts 'entailed' with this probability
#: (class imbalance in its training data).
MAJORITY_CLASS_BIAS = 0.8

#: Multiplier on accuracy for textual claims: TAPEX was pre-trained as a
#: neural SQL executor over numeric operations; free-text value grounding
#: is far outside its training distribution (paper: 18% recall on
#: WikiText).
TEXTUAL_SKILL = 0.3
TEXTUAL_MAJORITY_BIAS = 0.97


class TapexBaseline(Baseline):
    """Table flattening + simulated entailment classifier."""

    name = "tapex"
    supports_textual = True

    def __init__(self, world: ClaimWorld, seed: int = 0) -> None:
        self._world = world
        self._seed = seed

    def verify_documents(self, documents: list[Document]) -> None:
        for document in documents:
            flattened = "\n\n".join(
                markdown_table_text(table) for table in document.data.tables()
            )
            table_tokens = count_tokens(flattened)
            for claim in document.claims:
                claim.correct = self._classify(claim, table_tokens)

    def _classify(self, claim, table_tokens: int) -> bool:
        statement_tokens = count_tokens(claim.sentence)
        if table_tokens + statement_tokens > CONTEXT_WINDOW_TOKENS:
            # The table does not fit: the statement cannot be grounded and
            # the model falls back to its majority class, 'entailed'.
            return True
        knowledge = self._world.by_id(claim.claim_id)
        crowding = (table_tokens + statement_tokens) / CONTEXT_WINDOW_TOKENS
        accuracy = (
            BASE_ACCURACY
            - DIFFICULTY_SLOPE * knowledge.difficulty
            - CROWDING_SLOPE * crowding
        )
        bias = MAJORITY_CLASS_BIAS
        if knowledge.claim_type == "text":
            accuracy *= TEXTUAL_SKILL
            bias = TEXTUAL_MAJORITY_BIAS
        accuracy = min(0.97, max(0.08, accuracy))
        rng = random.Random(self._rng_seed(claim.claim_id))
        truth = bool(claim.metadata["label_correct"])
        if rng.random() < accuracy:
            return truth
        # Misclassifications skew towards the majority class ('entailed'):
        # the model flags sparingly, which is why its published precision
        # exceeds its recall.
        if rng.random() < bias:
            return True
        return False

    def _rng_seed(self, claim_id: str) -> int:
        digest = hashlib.blake2s(
            f"tapex|{self._seed}|{claim_id}".encode("utf-8"), digest_size=8
        ).hexdigest()
        return int(digest, 16)
