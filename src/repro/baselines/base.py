"""Common interface for the prior systems CEDAR is compared against."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.claims import Document


class Baseline(ABC):
    """One prior fact-checking system.

    A baseline consumes documents and writes its verdict into each claim's
    ``correct`` attribute, exactly as CEDAR's pipeline does, so the same
    scoring code applies to every system.
    """

    name: str
    supports_textual: bool = True

    @abstractmethod
    def verify_documents(self, documents: list[Document]) -> None:
        """Set ``claim.correct`` on every claim of every document."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
