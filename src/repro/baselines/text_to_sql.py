"""Text-to-SQL baselines P1 and P2 (paper Section 7.1).

Both baselines follow the paper's protocol: the claim is first rephrased
as a question, then GPT-3.5 translates the question to SQL using a generic
text-to-SQL prompt —

* **P1**: the "Create Table + Select 3" template of Rajkumar et al. [26]
  (schema as CREATE TABLE statements plus the first three rows of every
  table);
* **P2**: OpenAI's text-to-SQL template [4] (schema as a terse comment
  block).

The translated query is judged with the same CorrectQuery/CorrectClaim
machinery as CEDAR. What these baselines *lack* is everything CEDAR adds:
no claim-value plausibility loop (the first executable query decides), no
few-shot samples, no retries, no agents — which is why their precision
collapses in Table 2 despite decent recall.
"""

from __future__ import annotations

from repro.core.claims import Document
from repro.core.masking import mask_claim
from repro.core.plausibility import assess_query, validate_claim
from repro.llm.base import LLMClient, extract_sql_block
from repro.llm.simulated import QUESTION_MARKER, TEXT2SQL_MARKER
from repro.sqlengine import (
    Database,
    create_table_select_3_text,
    schema_text,
)
from repro.sqlengine.errors import SqlError

from .base import Baseline

_QUESTION_TEMPLATE = """{marker}: given the claim "{claim}" where "x" stands for the claimed value, produce the natural-language question whose answer is "x"."""

_P1_TEMPLATE = """{schema_block}

{marker}.
Question: {question}
Answer with the SQL only, wrapped in ```sql ```."""

_P2_TEMPLATE = """### SQLite tables, with their properties:
#
{schema_comment}
#
{marker}.
### A query to answer: {question}
Wrap the SQL in ```sql ```."""


class TextToSqlBaseline(Baseline):
    """Claim -> question -> SQL with a generic text-to-SQL template."""

    supports_textual = True

    def __init__(self, client: LLMClient, template: str = "P1") -> None:
        if template not in ("P1", "P2"):
            raise ValueError("template must be 'P1' or 'P2'")
        self._client = client
        self.template = template
        self.name = template.lower()

    def verify_documents(self, documents: list[Document]) -> None:
        for document in documents:
            for claim in document.claims:
                claim.correct = self._verify_claim(claim, document.data)

    def _verify_claim(self, claim, database: Database) -> bool:
        masked = mask_claim(claim)
        question_prompt = _QUESTION_TEMPLATE.format(
            marker=QUESTION_MARKER, claim=masked.masked_sentence
        )
        question = self._client.complete(question_prompt, 0.0).text.strip()
        sql_prompt = self._sql_prompt(question, database)
        response = self._client.complete(sql_prompt, 0.0)
        sql = extract_sql_block(response.text)
        assessment = assess_query(sql, claim, database)
        if not assessment.executable or sql is None:
            # No executable query: nothing refutes the claim.
            return True
        claim.query = sql
        # No plausibility loop: the first executable query decides. An
        # executable query with an empty result matches nothing, so the
        # claim is flagged (same convention as CEDAR's fallback).
        try:
            return validate_claim(sql, claim, database)
        except SqlError:
            return False

    def _sql_prompt(self, question: str, database: Database) -> str:
        if self.template == "P1":
            return _P1_TEMPLATE.format(
                schema_block=create_table_select_3_text(database),
                marker=TEXT2SQL_MARKER,
                question=question,
            )
        schema_comment = "\n".join(
            f"# {table.name}({', '.join(table.column_names)})"
            for table in database.tables()
        )
        return _P2_TEMPLATE.format(
            schema_comment=schema_comment,
            marker=TEXT2SQL_MARKER,
            question=question,
        )
