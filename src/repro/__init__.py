"""CEDAR reproduction: cost-efficient data-driven claim verification.

The package mirrors the paper's architecture (see README.md):

* :mod:`repro.core` — CEDAR itself: the claim model, masking,
  verification methods, the multi-stage pipeline, and the cost-based
  scheduler;
* :mod:`repro.sqlengine` — the relational engine claims are verified
  against;
* :mod:`repro.llm` — the LLM client layer (pricing, cost ledger, offline
  simulation, OpenAI adapter);
* :mod:`repro.agents` — the ReAct agent framework and its tools;
* :mod:`repro.embeddings` — short-string embeddings for textual claims;
* :mod:`repro.datasets` — generators for the paper's benchmarks;
* :mod:`repro.baselines` — the prior systems of Table 2;
* :mod:`repro.metrics` — detection quality, economics, query complexity;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure.

The most common entry points are re-exported here::

    from repro import Claim, Document, Database, Table, MultiStageVerifier
"""

from repro.core import (
    AgentMethod,
    Claim,
    Document,
    MultiStageVerifier,
    OneShotMethod,
    ScheduleEntry,
    Span,
    optimal_schedule,
    profile_methods,
)
from repro.llm import CostLedger, LLMClient, OpenAIChatClient, SimulatedLLM
from repro.sqlengine import Database, Engine, Table, load_csv

__version__ = "1.0.0"

__all__ = [
    "AgentMethod",
    "Claim",
    "CostLedger",
    "Database",
    "Document",
    "Engine",
    "LLMClient",
    "MultiStageVerifier",
    "OneShotMethod",
    "OpenAIChatClient",
    "ScheduleEntry",
    "SimulatedLLM",
    "Span",
    "Table",
    "__version__",
    "load_csv",
    "optimal_schedule",
    "profile_methods",
]
