"""CEDAR reproduction: cost-efficient data-driven claim verification.

The package mirrors the paper's architecture (see README.md):

* :mod:`repro.core` — CEDAR itself: the claim model, masking,
  verification methods, the multi-stage pipeline, and the cost-based
  scheduler;
* :mod:`repro.sqlengine` — the relational engine claims are verified
  against;
* :mod:`repro.cache` — the tiered cache substrate (in-memory L1,
  persistent sqlite L2, warm-start method-profile store);
* :mod:`repro.llm` — the LLM client layer (pricing, cost ledger, offline
  simulation, OpenAI adapter);
* :mod:`repro.agents` — the ReAct agent framework and its tools;
* :mod:`repro.embeddings` — short-string embeddings for textual claims;
* :mod:`repro.datasets` — generators for the paper's benchmarks;
* :mod:`repro.baselines` — the prior systems of Table 2;
* :mod:`repro.metrics` — detection quality, economics, query complexity;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure.

The most common entry points are re-exported here::

    from repro import Claim, Document, Database, Table, verify, VerifierConfig

and one call verifies a batch of documents::

    run = repro.verify(documents, schedule=schedule,
                       config=repro.VerifierConfig(workers=4))
"""

from repro.cache import CacheConfig, CacheStats, open_cache
from repro.core import (
    AgentMethod,
    Claim,
    ClaimReport,
    Document,
    MultiStageVerifier,
    OneShotMethod,
    ParallelVerifier,
    ScheduleEntry,
    Span,
    VerificationRun,
    VerifierConfig,
    optimal_schedule,
    profile_methods,
    verify,
)
from repro.llm import (
    CostLedger,
    LLMCache,
    LLMClient,
    OpenAIChatClient,
    RetryPolicy,
    SimulatedLLM,
)
from repro.sqlengine import Database, Engine, Table, load_csv

__version__ = "1.2.0"

__all__ = [
    "AgentMethod",
    "CacheConfig",
    "CacheStats",
    "Claim",
    "ClaimReport",
    "CostLedger",
    "Database",
    "Document",
    "Engine",
    "LLMCache",
    "LLMClient",
    "MultiStageVerifier",
    "OneShotMethod",
    "OpenAIChatClient",
    "ParallelVerifier",
    "RetryPolicy",
    "ScheduleEntry",
    "SimulatedLLM",
    "Span",
    "Table",
    "VerificationRun",
    "VerifierConfig",
    "__version__",
    "load_csv",
    "open_cache",
    "optimal_schedule",
    "profile_methods",
    "verify",
]
