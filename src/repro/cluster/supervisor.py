"""Worker lifecycle: health-checked spawn, crash detection, respawn.

The supervisor owns the worker *processes*; the router owns the *jobs*.
Each worker slot (shard index 0..N-1) cycles through incarnations:

    spawn -> connect+hello (health-checked, bounded) -> serving
          -> [connection drops] -> lost -> respawn (next incarnation)

A lost connection is the crash signal: the worker holds its end open
for its whole life, so EOF or a reset means the process died (or was
killed). The supervisor fails every pending request, tells the router
(which turns the shard's open jobs into structured ``worker_lost``
terminal events), and — unless the cluster is stopping — spawns a
fresh process into the same slot. Slots re-enter the consistent-hash
ring under their old identity, so a respawn restores the exact
pre-crash routing.

Graceful drain sends the protocol's ``drain`` op (the worker flushes
every accepted job before replying) followed by ``exit``; only a worker
that ignores both gets SIGTERM and, eventually, SIGKILL.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import os
import subprocess
import sys
import time
from typing import Awaitable, Callable

from repro.obs.logging import get_logger

from .protocol import ProtocolError, encode_frame, read_frame_async

_log = get_logger("cluster.supervisor")

#: How long a single request waits for its response frame. Generous:
#: under full CPU load a worker's handler threads contend with its
#: verifier threads for the GIL.
REQUEST_TIMEOUT = 120.0


class WorkerGone(ConnectionError):
    """The worker's connection dropped before (or while) replying."""


class WorkerLink:
    """One worker incarnation's multiplexed protocol connection."""

    def __init__(self, worker_id: int, generation: int,
                 socket_path: str) -> None:
        self.worker_id = worker_id
        self.generation = generation
        self.socket_path = socket_path
        self.alive = False
        self.ready = False               # last health probe's verdict
        self.queue_depth = 0             # last health probe's backlog
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._seq = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._streams: dict[int, Callable[[dict], None]] = {}
        self._send_lock = asyncio.Lock()
        self.on_lost: Callable[[WorkerLink, str], None] | None = None

    async def connect(self) -> dict:
        """Open the connection, start the reader, and shake hands."""
        reader, writer = await asyncio.open_unix_connection(self.socket_path)
        self._writer = writer
        self.alive = True
        self._reader_task = asyncio.ensure_future(self._read_loop(reader))
        hello = await self.request("hello")
        self.ready = True
        return hello

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        error = "connection closed"
        try:
            while True:
                frame = await read_frame_async(reader)
                if frame is None:
                    break
                self._dispatch(frame)
        except (ProtocolError, ConnectionError, OSError) as exc:
            error = f"{type(exc).__name__}: {exc}"
        finally:
            self._close(error)

    def _dispatch(self, frame: dict) -> None:
        frame_id = frame.get("id")
        future = self._pending.get(frame_id)
        stream = self._streams.get(frame_id)
        if stream is not None:
            if frame.get("end") or "error" in frame:
                self._streams.pop(frame_id, None)
            stream(frame)
        elif future is not None:
            self._pending.pop(frame_id, None)
            if not future.done():
                future.set_result(frame)
        # Frames for forgotten ids (a timed-out request's late reply)
        # are dropped on purpose.

    def _close(self, error: str) -> None:
        was_alive = self.alive
        self.alive = False
        self.ready = False
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()
        for future in self._pending.values():
            if not future.done():
                future.set_exception(WorkerGone(error))
        self._pending.clear()
        streams, self._streams = dict(self._streams), {}
        for frame_id, callback in streams.items():
            callback({"id": frame_id, "end": True, "lost": error})
        if was_alive and self.on_lost is not None:
            self.on_lost(self, error)

    async def _send(self, message: dict) -> None:
        if not self.alive or self._writer is None:
            raise WorkerGone("worker connection is down")
        async with self._send_lock:
            self._writer.write(encode_frame(message))
            await self._writer.drain()

    async def request(self, op: str,
                      timeout: float = REQUEST_TIMEOUT, **params) -> dict:
        """Send one op and await its (single) response frame."""
        frame_id = next(self._seq)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[frame_id] = future
        try:
            await self._send({"id": frame_id, "op": op, **params})
            return await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(frame_id, None)

    async def subscribe(self, job_id: str,
                        callback: Callable[[dict], None]) -> None:
        """Stream a job's events to ``callback`` (one frame per event,
        then an ``end`` frame — synthesised locally if the worker dies).
        """
        frame_id = next(self._seq)
        self._streams[frame_id] = callback
        try:
            await self._send({"id": frame_id, "op": "subscribe",
                              "job_id": job_id})
        except WorkerGone:
            self._streams.pop(frame_id, None)
            raise

    def disconnect(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
        self._close("disconnected by supervisor")


class WorkerProcess:
    """One shard slot: the subprocess plus its protocol link."""

    def __init__(self, worker_id: int, socket_path: str,
                 argv: list[str]) -> None:
        self.worker_id = worker_id
        self.socket_path = socket_path
        self.argv = argv
        self.generation = 0
        self.restarts = 0
        self.process: subprocess.Popen | None = None
        self.link: WorkerLink | None = None

    @property
    def alive(self) -> bool:
        return self.link is not None and self.link.alive

    @property
    def ready(self) -> bool:
        return self.link is not None and self.link.ready

    async def spawn(self, spawn_timeout: float,
                    env: dict[str, str]) -> WorkerLink:
        """Start the process and wait until it answers ``hello``."""
        self.generation += 1
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.socket_path)
        self.process = subprocess.Popen(self.argv, env=env)
        link = WorkerLink(self.worker_id, self.generation, self.socket_path)
        deadline = time.monotonic() + spawn_timeout
        delay = 0.05
        while True:
            try:
                await link.connect()
                break
            except (ConnectionError, FileNotFoundError, OSError,
                    asyncio.TimeoutError):
                if self.process.poll() is not None:
                    raise RuntimeError(
                        f"worker {self.worker_id} exited with "
                        f"{self.process.returncode} during startup"
                    ) from None
                if time.monotonic() > deadline:
                    self.process.kill()
                    raise TimeoutError(
                        f"worker {self.worker_id} gave no handshake "
                        f"within {spawn_timeout}s"
                    ) from None
                await asyncio.sleep(delay)
                delay = min(0.4, delay * 2)
        self.link = link
        return link

    def kill(self) -> None:
        if self.link is not None:
            self.link.disconnect()
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=5.0)


class WorkerSupervisor:
    """Spawns, watches, respawns, and drains the worker fleet."""

    def __init__(
        self,
        worker_argv: Callable[[int, str], list[str]],
        socket_path: Callable[[int], str],
        count: int,
        spawn_timeout: float = 30.0,
        respawn: bool = True,
        on_worker_lost: Callable[[int, str], None] | None = None,
        on_worker_up: Callable[[int], None] | None = None,
    ) -> None:
        if count < 1:
            raise ValueError("a cluster needs at least one worker")
        self.spawn_timeout = spawn_timeout
        self.respawn = respawn
        self.on_worker_lost = on_worker_lost
        self.on_worker_up = on_worker_up
        self.stopping = False
        self.slots: dict[int, WorkerProcess] = {}
        for worker_id in range(count):
            path = socket_path(worker_id)
            self.slots[worker_id] = WorkerProcess(
                worker_id, path, worker_argv(worker_id, path)
            )
        self._env = dict(os.environ)
        # Workers must import the same repro tree the router runs,
        # regardless of how the router itself was launched.
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
        existing = self._env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            self._env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn every slot concurrently; raise if any fails its
        startup health check (and tear the rest down)."""
        try:
            await asyncio.gather(*(
                self._spawn_slot(slot) for slot in self.slots.values()
            ))
        except BaseException:
            self.kill_all()
            raise

    async def _spawn_slot(self, slot: WorkerProcess) -> None:
        link = await slot.spawn(self.spawn_timeout, self._env)
        link.on_lost = lambda _link, error: self._lost(slot, error)
        _log.info("worker_spawned", worker=slot.worker_id,
                  generation=slot.generation,
                  pid=slot.process.pid if slot.process else None)
        if self.on_worker_up is not None:
            self.on_worker_up(slot.worker_id)

    def _lost(self, slot: WorkerProcess, error: str) -> None:
        _log.warning("worker_lost", worker=slot.worker_id,
                     generation=slot.generation, error=error,
                     will_respawn=not self.stopping and self.respawn)
        if self.on_worker_lost is not None:
            self.on_worker_lost(slot.worker_id, error)
        if not self.stopping and self.respawn:
            slot.restarts += 1
            asyncio.ensure_future(self._respawn(slot))

    async def _respawn(self, slot: WorkerProcess) -> None:
        # Reap the corpse first so the slot never hosts two processes.
        if slot.process is not None and slot.process.poll() is None:
            slot.process.terminate()
            with contextlib.suppress(subprocess.TimeoutExpired):
                await asyncio.get_running_loop().run_in_executor(
                    None, lambda: slot.process.wait(timeout=5.0)
                )
        try:
            await self._spawn_slot(slot)
        except (RuntimeError, TimeoutError) as error:
            _log.error("worker_respawn_failed", worker=slot.worker_id,
                       error=str(error), retrying=not self.stopping)
            if not self.stopping and self.respawn:
                await asyncio.sleep(0.5)
                asyncio.ensure_future(self._respawn(slot))

    # -- fleet-wide ops ------------------------------------------------------

    def live_workers(self) -> list[int]:
        return [w for w, slot in self.slots.items() if slot.alive]

    def link(self, worker_id: int) -> WorkerLink | None:
        slot = self.slots.get(worker_id)
        if slot is None or slot.link is None or not slot.link.alive:
            return None
        return slot.link

    async def broadcast(self, op: str,
                        timeout: float = REQUEST_TIMEOUT,
                        **params) -> dict[int, dict | None]:
        """Send ``op`` to every live worker; None marks a failed one."""

        async def _one(worker_id: int,
                       link: WorkerLink) -> tuple[int, dict | None]:
            try:
                return worker_id, await link.request(op, timeout, **params)
            except (WorkerGone, asyncio.TimeoutError):
                return worker_id, None

        pairs: list[Awaitable] = [
            _one(worker_id, slot.link)
            for worker_id, slot in self.slots.items()
            if slot.link is not None and slot.link.alive
        ]
        return dict(await asyncio.gather(*pairs))

    async def drain_all(self, timeout: float = 300.0) -> dict[int, bool]:
        """Graceful drain: every live worker flushes and confirms."""
        self.stopping = True
        _log.info("drain_started", workers=len(self.live_workers()))
        replies = await self.broadcast("drain", timeout=timeout)
        results = {worker_id: bool(reply and reply.get("drained"))
                   for worker_id, reply in replies.items()}
        _log.info("drain_finished",
                  drained=sum(1 for ok in results.values() if ok),
                  workers=len(results))
        return results

    async def stop(self) -> None:
        """Exit every worker (politely, then forcefully)."""
        self.stopping = True
        with contextlib.suppress(Exception):
            await self.broadcast("exit", timeout=5.0)
        self.kill_all()

    def kill_all(self) -> None:
        self.stopping = True
        for slot in self.slots.values():
            slot.kill()

    @property
    def total_restarts(self) -> int:
        return sum(slot.restarts for slot in self.slots.values())
