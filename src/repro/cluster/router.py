"""The cluster front end: consistent-hash routing on one event loop.

``ClusterRouter`` is the piece clients talk to. It is a single asyncio
event loop doing four jobs:

* **Routing** — every submission's database content fingerprint is
  hashed onto the :class:`~repro.cluster.ring.HashRing`, so all traffic
  against the same data lands on the same shard and reuses its warm
  caches. The router computes fingerprints from its own copy of the
  dataset builders — the same builders the workers verify against.
* **Admission** — rejections happen *here*, before any bytes cross a
  process boundary: ``draining`` once a drain began, ``client_limit``
  against per-client in-flight counts aggregated across all shards, and
  ``queue_full`` against the target shard's open-job count. Every
  retryable rejection answers 429/503 with a queue-depth-derived
  ``Retry-After``, exactly like the single-process front end.
* **Event fan-out** — the router subscribes *once* per job to its
  worker and buffers the events; any number of HTTP clients can replay
  or follow the stream (``?wait=1``) as ndjson without touching the
  worker again. Thousands of idle streams are just thousands of
  awaiting coroutines.
* **Failure conversion** — when a worker connection drops, every open
  job on that shard immediately gets a structured ``worker_lost``
  terminal event (streams end cleanly, ids are released) while the
  supervisor respawns the slot; the ring maps the dead shard's keys to
  the next live shard in the interim and snaps back on respawn.

The HTTP layer underneath is a hand-rolled asyncio HTTP/1.1 server —
the same framework-free stance as the stdlib single-process front end,
minus the thread-per-connection cost that motivated this subsystem.

Observability (docs/observability.md): every accepted job gets a router
root span (admission → routing decision → worker RPC) whose trace
context rides the submit frame; ``GET /v1/jobs/<id>/trace`` stitches
the worker's span tree back under that root into one Chrome trace.
``GET /v1/telemetry`` serves the router's rolling telemetry window plus
every shard's, and ``GET /v1/debug/logs?n=`` tails the structured-log
ring buffer. Router spans are built by hand from recorded timestamps —
never through a shared ``Tracer``, whose thread-local span stack would
cross-contaminate between interleaved coroutines on the one event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import math
import os
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import AsyncIterator, Callable

from repro.obs.export import to_chrome_trace, to_prometheus
from repro.obs.logging import (
    FileSink,
    RingBufferSink,
    add_sink,
    get_logger,
    remove_sink,
)
from repro.obs.metrics import Metric, merge_metrics
from repro.obs.telemetry import TelemetryWindow
from repro.obs.tracer import (
    Span,
    annotate_critical_path,
    shift_times,
    span_from_dict,
    spans_from_dicts,
)
from repro.service import WorkerLost, retry_after_seconds
from repro.service.queue import (
    REASON_CLIENT_LIMIT,
    REASON_DRAINING,
    REASON_QUEUE_FULL,
)

from .protocol import make_trace_context
from .ring import DEFAULT_REPLICAS, HashRing
from .supervisor import WorkerGone, WorkerSupervisor
from .worker import dataset_builders

#: Event kinds that end a job's stream.
TERMINAL_KINDS = frozenset(
    {"job_done", "job_failed", "job_cancelled", "worker_lost"}
)

#: Rejection code for a shard that died between admission and ack.
REASON_WORKER_LOST = "worker_lost"

_REJECTION_STATUS = {
    REASON_QUEUE_FULL: 429,
    REASON_CLIENT_LIMIT: 429,
    REASON_DRAINING: 503,
    REASON_WORKER_LOST: 503,
}


@dataclass
class ClusterConfig:
    """Knobs for the router and the worker fleet it spawns."""

    workers: int = 2                 # shard count
    seed: int = 0
    profile: str = "default"         # dataset profile (see worker.py)
    per_client_limit: int = 8        # open jobs per client, cluster-wide
    max_shard_inflight: int = 64     # open jobs per shard (router-side)
    replicas: int = DEFAULT_REPLICAS
    shard_threads: int = 4           # verifier threads inside each worker
    shard_queue_depth: int = 64
    shard_max_batch: int = 8
    shard_batch_window: float = 0.02
    shard_cache_size: int = 1024
    cache_db: str | None = None      # shared persistent L2 (optional)
    latency_scale: float = 0.0       # simulated model latency (bench)
    socket_dir: str | None = None    # default: a fresh temp dir
    spawn_timeout: float = 60.0
    health_interval: float = 1.0
    respawn: bool = True
    #: Distributed tracing: router job roots + trace contexts on the
    #: wire + worker span trees. Off turns both the router spans *and*
    #: the workers' service tracing off (the bench's untraced arm).
    tracing: bool = True
    #: Structured ndjson log file for the router; each worker appends
    #: to ``{log_file}.w{id}`` so processes never interleave lines.
    log_file: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.per_client_limit < 1:
            raise ValueError("per_client_limit must be at least 1")
        if self.max_shard_inflight < 1:
            raise ValueError("max_shard_inflight must be at least 1")


@dataclass
class JobRecord:
    """The router's view of one accepted job and its buffered events."""

    job_id: str                      # router-scoped id clients see
    worker_id: int
    worker_job_id: str               # the shard's local id
    client_id: str
    fingerprint: str
    events: list[dict] = field(default_factory=list)
    terminal: bool = False
    subscribers: set[asyncio.Queue] = field(default_factory=set)
    submitted_at: float = field(default_factory=time.monotonic)
    #: Distributed-trace state (None with tracing off): the router's
    #: job root span — admission/route/rpc children — kept open until
    #: the terminal event, and the trace id the worker was handed.
    root: Span | None = None
    trace_id: str | None = None


class RoutingTable:
    """Dataset-document routing keys (database content fingerprints)."""

    def __init__(self, profile: str) -> None:
        self._builders = dataset_builders(profile)
        self._fingerprints: dict[str, list[str]] = {}
        self._lock = asyncio.Lock()

    @property
    def datasets(self) -> list[str]:
        return sorted(self._builders)

    def knows(self, dataset: str) -> bool:
        return dataset in self._builders

    async def fingerprints(self, dataset: str) -> list[str]:
        """Per-document routing keys, built once per dataset off-loop."""
        cached = self._fingerprints.get(dataset)
        if cached is not None:
            return cached
        async with self._lock:
            cached = self._fingerprints.get(dataset)
            if cached is not None:
                return cached
            builder = self._builders[dataset]

            def _build() -> list[str]:
                bundle = builder()
                return [document.data.content_fingerprint()
                        for document in bundle.documents]

            keys = await asyncio.get_running_loop().run_in_executor(
                None, _build
            )
            self._fingerprints[dataset] = keys
            return keys


class ClusterRouter:
    """Admission, routing, event fan-out, and aggregation for N shards."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.routing = RoutingTable(self.config.profile)
        self.ring = HashRing(range(self.config.workers),
                             self.config.replicas)
        self._own_socket_dir = self.config.socket_dir is None
        self.socket_dir = (
            self.config.socket_dir
            if self.config.socket_dir is not None
            else tempfile.mkdtemp(prefix="cedar-cluster-")
        )
        self.supervisor = WorkerSupervisor(
            worker_argv=self._worker_argv,
            socket_path=lambda worker_id: os.path.join(
                self.socket_dir, f"worker-{worker_id}.sock"
            ),
            count=self.config.workers,
            spawn_timeout=self.config.spawn_timeout,
            respawn=self.config.respawn,
            on_worker_lost=self._worker_lost,
        )
        self.records: dict[str, JobRecord] = {}
        self.draining = False
        self._client_open: dict[str, int] = {}
        self._worker_open: dict[int, set[str]] = {
            worker_id: set() for worker_id in range(self.config.workers)
        }
        self._routed: dict[int, int] = dict.fromkeys(
            range(self.config.workers), 0
        )
        self._shed: dict[str, int] = {}
        self._jobs_lost = 0
        self._jobs_lost_by_worker: dict[int, int] = dict.fromkeys(
            range(self.config.workers), 0
        )
        self._events_delivered = 0
        self._open_streams = 0
        self._trace_seq = itertools.count(1)
        self._health_task: asyncio.Task | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._log = get_logger("cluster.router")
        #: The last 512 structured log records (router process only —
        #: each worker serves its own ring), behind /v1/debug/logs.
        self.log_buffer = RingBufferSink(512)
        add_sink(self.log_buffer)
        self._file_sink: FileSink | None = None
        if self.config.log_file:
            self._file_sink = FileSink(self.config.log_file)
            add_sink(self._file_sink)
        #: Router-side rolling telemetry window; /v1/telemetry merges
        #: this with every shard's own window.
        self.telemetry = TelemetryWindow()
        self._wire_telemetry()

    def _wire_telemetry(self) -> None:
        window = self.telemetry
        window.register_gauges(lambda: {
            "open_jobs": self._total_open(),
            "open_event_streams": self._open_streams,
            "live_workers": len(self.supervisor.live_workers()),
            "queue_depth": sum(
                slot.link.queue_depth
                for slot in self.supervisor.slots.values()
                if slot.link is not None and slot.link.alive
            ),
        })
        window.register_counters("cluster", lambda: {
            "jobs_routed": sum(self._routed.values()),
            "jobs_lost": self._jobs_lost,
            "events_delivered": self._events_delivered,
            "worker_restarts": self.supervisor.total_restarts,
        })
        window.register_counters(
            "shed", lambda: dict(self._shed), keyed_by="reason",
        )

    # -- worker process plumbing --------------------------------------------

    def _worker_argv(self, worker_id: int, socket_path: str) -> list[str]:
        config = self.config
        argv = [
            sys.executable, "-m", "repro.cluster.worker",
            "--socket", socket_path,
            "--worker-id", str(worker_id),
            "--seed", str(config.seed),
            "--profile", config.profile,
            "--workers", str(config.shard_threads),
            "--queue-depth", str(config.shard_queue_depth),
            "--max-batch", str(config.shard_max_batch),
            "--batch-window", str(config.shard_batch_window),
            "--cache-size", str(config.shard_cache_size),
        ]
        if config.cache_db:
            argv += ["--cache-db", config.cache_db]
        if config.latency_scale > 0:
            argv += ["--latency-scale", str(config.latency_scale)]
        if not config.tracing:
            argv += ["--no-tracing"]
        if config.log_file:
            argv += ["--log-file", f"{config.log_file}.w{worker_id}"]
        return argv

    async def start(self) -> "ClusterRouter":
        await self.supervisor.start()
        self._health_task = asyncio.ensure_future(self._health_loop())
        return self

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval)
            with contextlib.suppress(Exception):
                replies = await self.supervisor.broadcast(
                    "health", timeout=10.0,
                )
                for worker_id, reply in replies.items():
                    link = self.supervisor.link(worker_id)
                    if link is None or reply is None:
                        continue
                    link.ready = bool(reply.get("ready"))
                    link.queue_depth = int(reply.get("queue_depth", 0))

    # -- failure conversion --------------------------------------------------

    def _worker_lost(self, worker_id: int, error: str) -> None:
        """Turn the dead shard's open jobs into worker_lost terminals."""
        lost_here = 0
        for job_id in list(self._worker_open.get(worker_id, ())):
            record = self.records.get(job_id)
            if record is None or record.terminal:
                continue
            self._count_lost(worker_id)
            lost_here += 1
            self._append_event(record, WorkerLost(
                job_id=record.job_id, worker=worker_id, error=error,
            ).to_dict())
        if lost_here:
            self._log.warning("jobs_lost", worker=worker_id,
                              jobs=lost_here, error=error)

    def _count_lost(self, worker_id: int) -> None:
        self._jobs_lost += 1
        self._jobs_lost_by_worker[worker_id] = (
            self._jobs_lost_by_worker.get(worker_id, 0) + 1
        )

    def _append_event(self, record: JobRecord, event: dict) -> None:
        event = dict(event)
        event["job_id"] = record.job_id
        record.events.append(event)
        if event.get("event") in TERMINAL_KINDS and not record.terminal:
            record.terminal = True
            if record.root is not None:
                record.root.end = time.monotonic()
                if event["event"] in ("job_failed", "worker_lost"):
                    record.root.status = "error"
                record.root.set(outcome=event["event"])
            self._release(record)
        for queue in list(record.subscribers):
            queue.put_nowait(event)

    def _release(self, record: JobRecord) -> None:
        self._worker_open.get(record.worker_id, set()).discard(
            record.job_id
        )
        remaining = self._client_open.get(record.client_id, 1) - 1
        if remaining > 0:
            self._client_open[record.client_id] = remaining
        else:
            self._client_open.pop(record.client_id, None)

    def _on_stream_frame(self, record: JobRecord, frame: dict) -> None:
        if "event" in frame:
            self._append_event(record, frame["event"])
        elif frame.get("lost") and not record.terminal:
            # The link died and this subscription's synthetic end frame
            # arrived before (or without) the slot-level callback.
            self._count_lost(record.worker_id)
            self._append_event(record, WorkerLost(
                job_id=record.job_id, worker=record.worker_id,
                error=str(frame.get("lost")),
            ).to_dict())

    # -- admission and routing ----------------------------------------------

    def _shed_response(self, code: str, message: str,
                       queue_depth: int) -> tuple[int, dict]:
        self._shed[code] = self._shed.get(code, 0) + 1
        self._log.warning("submission_shed", reason=code,
                          queue_depth=queue_depth)
        body: dict = {"rejected": {"code": code, "message": message}}
        body["retry_after_seconds"] = retry_after_seconds(queue_depth)
        return _REJECTION_STATUS.get(code, 429), body

    def _total_open(self) -> int:
        return sum(len(open_) for open_ in self._worker_open.values())

    async def submit(self, payload: dict) -> tuple[int, dict]:
        """Route one submission; mirrors ``ServiceApp.submit``'s API."""
        t_start = time.monotonic()
        dataset = payload.get("dataset", "aggchecker")
        if not self.routing.knows(dataset):
            return 400, {"error": f"unknown dataset {dataset!r}",
                         "datasets": self.routing.datasets}
        index = payload.get("document", 0)
        if not isinstance(index, int):
            return 400, {"error": "document must be an integer index"}
        if self.draining:
            return self._shed_response(
                REASON_DRAINING,
                "cluster is draining and not accepting new jobs",
                self._total_open(),
            )
        client_id = str(payload.get("client_id", "default"))
        open_jobs = self._client_open.get(client_id, 0)
        if open_jobs >= self.config.per_client_limit:
            return self._shed_response(
                REASON_CLIENT_LIMIT,
                f"client {client_id!r} already has {open_jobs} jobs in "
                f"flight across the cluster "
                f"(limit {self.config.per_client_limit})",
                self._total_open(),
            )
        t_admitted = time.monotonic()
        fingerprints = await self.routing.fingerprints(dataset)
        if not 0 <= index < len(fingerprints):
            return 400, {
                "error": f"document index out of range "
                         f"(0..{len(fingerprints) - 1})",
            }
        fingerprint = fingerprints[index]
        worker_id = self.ring.route(
            fingerprint, self.supervisor.live_workers()
        )
        t_routed = time.monotonic()
        if worker_id is None:
            return self._shed_response(
                REASON_WORKER_LOST,
                "no live worker to route to (respawn in progress)",
                self._total_open(),
            )
        shard_open = len(self._worker_open[worker_id])
        if shard_open >= self.config.max_shard_inflight:
            return self._shed_response(
                REASON_QUEUE_FULL,
                f"shard {worker_id} is at its in-flight limit "
                f"({self.config.max_shard_inflight}); retry with backoff",
                shard_open,
            )
        link = self.supervisor.link(worker_id)
        if link is None:
            return self._shed_response(
                REASON_WORKER_LOST,
                f"worker {worker_id} went away before the job was sent",
                self._total_open(),
            )
        # The trace id is minted before the RPC so the context can ride
        # the submit frame; it is a sequence number, never clock-derived.
        trace_id = (f"trace-{next(self._trace_seq):06d}"
                    if self.config.tracing else None)
        submit_payload = {
            "dataset": dataset,
            "document": index,
            "client_id": client_id,
            "priority": payload.get("priority", 0),
        }
        if trace_id is not None:
            submit_payload["trace"] = make_trace_context(trace_id)
        t_rpc_start = time.monotonic()
        try:
            reply = await link.request("submit", payload=submit_payload)
        except (WorkerGone, asyncio.TimeoutError):
            return self._shed_response(
                REASON_WORKER_LOST,
                f"worker {worker_id} died while accepting the job; "
                "it is being respawned",
                self._total_open(),
            )
        t_rpc_end = time.monotonic()
        status = int(reply.get("status", 500))
        body = dict(reply.get("body") or {})
        if status != 202:
            # Worker-side rejection (it keeps its own bounded queue as
            # a second line of defence); count it as shed traffic too.
            code = (body.get("rejected") or {}).get("code")
            if code:
                self._shed[code] = self._shed.get(code, 0) + 1
            return status, body
        worker_job_id = str(body["job_id"])
        job_id = f"w{worker_id}g{link.generation}-{worker_job_id}"
        record = JobRecord(
            job_id=job_id,
            worker_id=worker_id,
            worker_job_id=worker_job_id,
            client_id=client_id,
            fingerprint=fingerprint,
        )
        if trace_id is not None:
            record.trace_id = trace_id
            record.root = self._build_job_root(
                record, trace_id, dataset, index, link.generation,
                t_start, t_admitted, t_routed, t_rpc_start, t_rpc_end,
            )
        self.records[job_id] = record
        self._worker_open[worker_id].add(job_id)
        self._client_open[client_id] = (
            self._client_open.get(client_id, 0) + 1
        )
        self._routed[worker_id] = self._routed.get(worker_id, 0) + 1
        self._log.info(
            "job_routed", job_id=job_id, worker=worker_id,
            client_id=client_id, dataset=dataset, document=index,
            **({"trace_id": trace_id} if trace_id is not None else {}),
        )
        try:
            await link.subscribe(
                worker_job_id,
                lambda frame: self._on_stream_frame(record, frame),
            )
        except WorkerGone:
            if not record.terminal:
                self._count_lost(worker_id)
                self._append_event(record, WorkerLost(
                    job_id=job_id, worker=worker_id,
                    error="worker died right after accepting the job",
                ).to_dict())
        body["job_id"] = job_id
        body["worker"] = worker_id
        body["events_url"] = f"/v1/jobs/{job_id}/events"
        return 202, body

    def _build_job_root(
        self,
        record: JobRecord,
        trace_id: str,
        dataset: str,
        index: int,
        ring_generation: int,
        t_start: float,
        t_admitted: float,
        t_routed: float,
        t_rpc_start: float,
        t_rpc_end: float,
    ) -> Span:
        """The router's per-job root span, built from recorded stamps.

        Spans are constructed by hand (not via a Tracer) because many
        submit coroutines interleave on this one thread — a shared
        span *stack* would nest their spans into each other. The root
        stays open until the job's terminal event closes it.
        """
        root = Span(f"job:{record.job_id}", "job", t_start, {
            "job_id": record.job_id,
            "trace_id": trace_id,
            "client_id": record.client_id,
            "dataset": dataset,
            "document": index,
            "worker": record.worker_id,
        })
        admission = Span("admission", "admission", t_start, {
            "client_id": record.client_id,
            "client_open": self._client_open.get(record.client_id, 0),
            "cluster_open": self._total_open(),
        })
        admission.end = t_admitted
        route = Span("route", "route", t_admitted, {
            "worker": record.worker_id,
            "ring_generation": ring_generation,
            "fingerprint": record.fingerprint,
            "live_workers": len(self.supervisor.live_workers()),
        })
        route.end = t_routed
        rpc = Span("rpc:submit", "rpc", t_rpc_start, {
            "op": "submit",
            "worker": record.worker_id,
            "worker_job_id": record.worker_job_id,
        })
        rpc.end = t_rpc_end
        root.children.extend([admission, route, rpc])
        root.end = t_rpc_end
        return root

    async def job_trace(self, job_id: str,
                        fmt: str = "") -> tuple[int, dict]:
        """One stitched trace: router spans with the worker tree grafted.

        The worker's span forest (queue wait + per-document waterfall)
        is fetched over the ``trace`` op, its wall times rebased onto
        the router's clock (the two monotonic clocks share no epoch:
        the worker's earliest span is aligned with the submit RPC), and
        its roots grafted under the router's job root after the
        admission/route/rpc children. Structural span ids are assigned
        at render time, so the stitched tree is byte-identical across
        reruns once wall times are stripped. ``fmt="tree"`` returns the
        raw span tree; the default is Chrome trace-event JSON.
        """
        record = self.records.get(job_id)
        if record is None:
            return 404, {"error": f"no job {job_id!r}"}
        if record.root is None:
            return 404, {"error": f"no trace for job {job_id!r} "
                                  "(tracing is disabled)"}
        # Render from a deep copy: repeated GETs must not accumulate
        # grafted subtrees (or stale annotations) on the live record.
        root = span_from_dict(record.root.to_dict(include_times=True))
        rpc = root.children[-1]
        link = self.supervisor.link(record.worker_id)
        reply = None
        if link is not None:
            with contextlib.suppress(WorkerGone, asyncio.TimeoutError):
                reply = await link.request(
                    "trace", job_id=record.worker_job_id,
                )
        if reply and reply.get("ok") and reply.get("spans"):
            worker_roots = spans_from_dicts(reply["spans"])
            delta = rpc.start - min(span.start for span in worker_roots)
            for span in worker_roots:
                shift_times(span, delta)
                span.set(worker=record.worker_id)
            root.children.extend(worker_roots)
            root.end = max(root.end,
                           max(span.end for span in worker_roots))
        else:
            # Respawned shard (the job died with its process), tracing
            # off worker-side, or the worker is mid-crash right now.
            root.set(worker_trace="unavailable")
        annotate_critical_path(root)
        if fmt == "tree":
            return 200, {
                "job_id": job_id,
                "trace_id": record.trace_id,
                "spans": [root.to_dict("1", include_times=True)],
            }
        return 200, to_chrome_trace([root], process_name=job_id)

    # -- job introspection ---------------------------------------------------

    def job_summary(self, job_id: str) -> tuple[int, dict]:
        record = self.records.get(job_id)
        if record is None:
            return 404, {"error": f"no job {job_id!r}"}
        state = "open"
        if record.terminal and record.events:
            state = record.events[-1].get("event", "open")
        return 200, {
            "job_id": job_id,
            "worker": record.worker_id,
            "terminal": record.terminal,
            "state": state,
            "events": len(record.events),
        }

    async def job_events(
        self, job_id: str, wait: bool, timeout: float,
    ) -> AsyncIterator[dict] | None:
        record = self.records.get(job_id)
        if record is None:
            return None

        async def _stream() -> AsyncIterator[dict]:
            queue: asyncio.Queue = asyncio.Queue()
            for event in record.events:
                queue.put_nowait(event)
            following = wait and not record.terminal
            if following:
                record.subscribers.add(queue)
            self._open_streams += 1
            deadline = time.monotonic() + timeout
            try:
                while True:
                    if queue.empty() and not following:
                        return
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return  # ?wait deadline: end where it stands
                    try:
                        event = await asyncio.wait_for(
                            queue.get(), remaining,
                        )
                    except asyncio.TimeoutError:
                        return
                    self._events_delivered += 1
                    yield event
                    if event.get("event") in TERMINAL_KINDS:
                        return
            finally:
                self._open_streams -= 1
                record.subscribers.discard(queue)

        return _stream()

    # -- probes and aggregation ----------------------------------------------

    def health(self) -> tuple[int, dict]:
        """Liveness: the router process itself is up."""
        return 200, {
            "status": "ok",
            "draining": self.draining,
            "workers": self.config.workers,
            "live_workers": len(self.supervisor.live_workers()),
        }

    def ready(self) -> tuple[int, dict]:
        """Readiness: accepting jobs and at least one shard is ready."""
        shards = {
            str(worker_id): {
                "live": slot.alive,
                "ready": slot.ready,
            }
            for worker_id, slot in self.supervisor.slots.items()
        }
        ready_count = sum(1 for s in shards.values()
                          if s["live"] and s["ready"])
        is_ready = not self.draining and ready_count >= 1
        body = {
            "ready": is_ready,
            "draining": self.draining,
            "degraded": ready_count < self.config.workers,
            "workers": shards,
        }
        if not is_ready:
            body["retry_after_seconds"] = retry_after_seconds(
                self._total_open()
            )
            return 503, body
        return 200, body

    def _cluster_stats(self) -> dict:
        shards = {}
        for worker_id, slot in self.supervisor.slots.items():
            link = slot.link
            shards[str(worker_id)] = {
                "live": slot.alive,
                "ready": slot.ready,
                "generation": slot.generation,
                "restarts": slot.restarts,
                "queue_depth": link.queue_depth if link else 0,
                "open_jobs": len(self._worker_open.get(worker_id, ())),
                "routed_total": self._routed.get(worker_id, 0),
                "jobs_lost": self._jobs_lost_by_worker.get(worker_id, 0),
            }
        return {
            "workers": self.config.workers,
            "live_workers": len(self.supervisor.live_workers()),
            "draining": self.draining,
            "restarts": self.supervisor.total_restarts,
            "jobs": {
                "routed": sum(self._routed.values()),
                "open": self._total_open(),
                "lost": self._jobs_lost,
                "shed": dict(sorted(self._shed.items())),
            },
            "events": {
                "open_streams": self._open_streams,
                "delivered": self._events_delivered,
            },
            "shards": shards,
        }

    async def stats(self) -> tuple[int, dict]:
        """Cluster-level counters plus every shard's own stats dict."""
        replies = await self.supervisor.broadcast("stats", timeout=30.0)
        workers = {
            str(worker_id): (reply or {}).get("stats")
            for worker_id, reply in replies.items()
        }
        totals = {"submitted": 0, "completed": 0, "failed": 0,
                  "cancelled": 0, "rejected": 0}
        queue_depth = 0
        for stats in workers.values():
            if not stats:
                continue
            for key in totals:
                totals[key] += stats.get("jobs", {}).get(key, 0)
            queue_depth += stats.get("queue_depth", 0)
        return 200, {
            "cluster": self._cluster_stats(),
            "jobs": totals,
            "queue_depth": queue_depth,
            "workers": workers,
        }

    def _own_metrics(self) -> list[Metric]:
        metrics = [
            Metric.gauge("cedar_cluster_workers", self.config.workers,
                         "Configured worker slots"),
            Metric.gauge("cedar_cluster_live_workers",
                         len(self.supervisor.live_workers()),
                         "Worker slots with a live connection"),
            Metric.gauge("cedar_cluster_open_event_streams",
                         self._open_streams,
                         "Client event streams currently open"),
            Metric.counter("cedar_cluster_events_delivered_total",
                           self._events_delivered,
                           "Events fanned out to client streams"),
        ]
        for worker_id in range(self.config.workers):
            labels = {"worker": str(worker_id)}
            link = self.supervisor.link(worker_id)
            slot = self.supervisor.slots[worker_id]
            metrics.append(Metric.counter(
                "cedar_cluster_jobs_routed_total",
                self._routed.get(worker_id, 0),
                "Jobs routed to each shard", labels,
            ))
            # Restarts and losses stay per-worker only (no unlabelled
            # aggregate sample — Prometheus would double-count the sum).
            metrics.append(Metric.counter(
                "cedar_cluster_worker_restarts_total",
                slot.restarts,
                "Workers respawned after a crash", labels,
            ))
            metrics.append(Metric.counter(
                "cedar_cluster_jobs_lost_total",
                self._jobs_lost_by_worker.get(worker_id, 0),
                "Jobs ended by a worker_lost event", labels,
            ))
            metrics.append(Metric.gauge(
                "cedar_cluster_queue_depth",
                link.queue_depth if link is not None else 0,
                "Last-probed queue depth per shard", labels,
            ))
            metrics.append(Metric.gauge(
                "cedar_cluster_open_jobs",
                len(self._worker_open.get(worker_id, ())),
                "Router-tracked open jobs per shard", labels,
            ))
        for code, count in sorted(self._shed.items()):
            metrics.append(Metric.counter(
                "cedar_cluster_jobs_shed_total", count,
                "Submissions shed at admission", {"reason": code},
            ))
        return metrics

    async def metrics_text(self) -> str:
        """Aggregated Prometheus text: router families plus every
        shard's registry relabelled with ``worker=<id>`` and the slot's
        ``generation``, so a scrape after a crash-respawn never merges
        the dead process's counters with its replacement's."""
        from .protocol import metrics_from_wire

        replies = await self.supervisor.broadcast("metrics", timeout=30.0)
        merged: list[Metric] = list(self._own_metrics())
        for worker_id, reply in sorted(replies.items()):
            if not reply or "metrics" not in reply:
                continue
            generation = self.supervisor.slots[worker_id].generation
            merged.extend(metrics_from_wire(
                reply["metrics"],
                {"worker": str(worker_id),
                 "generation": str(generation)},
            ))
        return to_prometheus(merge_metrics(merged))

    async def telemetry_snapshot(self) -> tuple[int, dict]:
        """The router's telemetry window plus every live shard's own."""
        replies = await self.supervisor.broadcast("telemetry",
                                                  timeout=30.0)
        workers = {
            str(worker_id): (reply or {}).get("telemetry")
            for worker_id, reply in sorted(replies.items())
        }
        return 200, {
            "cluster": self.telemetry.snapshot(),
            "workers": workers,
        }

    # -- drain and shutdown --------------------------------------------------

    async def drain(self, timeout: float = 300.0) -> None:
        """Stop admitting, flush every accepted job, settle all streams."""
        self.draining = True
        await self.supervisor.drain_all(timeout=timeout)
        deadline = time.monotonic() + timeout
        while self._total_open() and time.monotonic() < deadline:
            await asyncio.sleep(0.02)

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
        await self.supervisor.stop()
        if self._http_server is not None:
            self._http_server.close()
            with contextlib.suppress(Exception):
                await self._http_server.wait_closed()
        if self._own_socket_dir:
            shutil.rmtree(self.socket_dir, ignore_errors=True)
        # Detach this router's sinks from the process-global logging
        # state so a later router in the same process starts clean.
        remove_sink(self.log_buffer)
        if self._file_sink is not None:
            remove_sink(self._file_sink)
            self._file_sink.close()

    # -- the asyncio HTTP front end ------------------------------------------

    async def serve_http(self, host: str = "127.0.0.1",
                         port: int = 8100) -> tuple[str, int]:
        """Start the HTTP server; returns the bound (host, port)."""
        self._http_server = await asyncio.start_server(
            self._serve_client, host, port,
        )
        bound = self._http_server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await _read_http_request(reader)
                if request is None:
                    return
                method, path, query, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._route(method, path, query, body, writer)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away mid-request/stream
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _route(self, method: str, path: str, query: dict,
                     body: bytes, writer: asyncio.StreamWriter) -> None:
        parts = [part for part in path.split("/") if part]
        if parts and parts[0] == "v1":
            parts = parts[1:]
        if method == "POST" and parts == ["verify"]:
            try:
                payload = json.loads(body or b"{}")
                if not isinstance(payload, dict):
                    raise ValueError("body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as error:
                await _send_json(writer, 400,
                                 {"error": f"bad request body: {error}"})
                return
            status, reply = await self.submit(payload)
            await _send_json(writer, status, reply)
        elif method == "GET" and parts == ["healthz"]:
            status, reply = self.health()
            await _send_json(writer, status, reply)
        elif method == "GET" and parts == ["readyz"]:
            status, reply = self.ready()
            await _send_json(writer, status, reply)
        elif method == "GET" and parts == ["stats"]:
            status, reply = await self.stats()
            await _send_json(writer, status, reply)
        elif method == "GET" and parts == ["metrics"]:
            await _send_text(
                writer, 200, await self.metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif method == "GET" and parts == ["telemetry"]:
            status, reply = await self.telemetry_snapshot()
            await _send_json(writer, status, reply)
        elif method == "GET" and parts == ["debug", "logs"]:
            try:
                count = int(query.get("n", "100"))
                if count < 0:
                    raise ValueError
            except ValueError:
                await _send_json(
                    writer, 400,
                    {"error": "n must be a non-negative integer"},
                )
                return
            await _send_text(
                writer, 200, self.log_buffer.to_ndjson(count),
                "application/x-ndjson",
            )
        elif (method == "GET" and len(parts) == 3 and parts[0] == "jobs"
              and parts[2] == "trace"):
            status, reply = await self.job_trace(
                parts[1], query.get("format", ""),
            )
            await _send_json(writer, status, reply)
        elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            status, reply = self.job_summary(parts[1])
            await _send_json(writer, status, reply)
        elif (method == "GET" and len(parts) == 3 and parts[0] == "jobs"
              and parts[2] == "events"):
            wait = query.get("wait", "0") not in ("0", "", "false")
            try:
                timeout = float(query.get("timeout", "30"))
                if not math.isfinite(timeout) or timeout < 0:
                    raise ValueError
            except ValueError:
                await _send_json(
                    writer, 400,
                    {"error": "timeout must be a non-negative number"},
                )
                return
            stream = await self.job_events(parts[1], wait, timeout)
            if stream is None:
                await _send_json(writer, 404,
                                 {"error": f"no job {parts[1]!r}"})
                return
            await _send_ndjson(writer, stream)
        else:
            await _send_json(writer, 404,
                             {"error": f"no route for {method} {path}"})


# -- minimal asyncio HTTP/1.1 plumbing ---------------------------------------

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
             404: "Not Found", 409: "Conflict", 429: "Too Many Requests",
             500: "Internal Server Error", 503: "Service Unavailable"}

_MAX_HEADER_LINES = 100


async def _read_http_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict, dict, bytes] | None:
    """Parse one request; None on EOF/garbage (connection then closes)."""
    line = await reader.readline()
    if not line or b" " not in line:
        return None
    try:
        method, target, _version = line.decode("latin1").split(None, 2)
    except ValueError:
        return None
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", "0") or 0)
    if length:
        body = await reader.readexactly(length)
    path, _, query_string = target.partition("?")
    query: dict[str, str] = {}
    for pair in query_string.split("&"):
        if pair:
            key, _, value = pair.partition("=")
            query[key] = value
    return method.upper(), path, query, headers, body


async def _send_json(writer: asyncio.StreamWriter, status: int,
                     body: dict) -> None:
    payload = json.dumps(body, sort_keys=True).encode()
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Response')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
    ]
    if "retry_after_seconds" in body:
        headers.append(f"Retry-After: {int(body['retry_after_seconds'])}")
    writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + payload)
    await writer.drain()


async def _send_text(writer: asyncio.StreamWriter, status: int,
                     body: str, content_type: str) -> None:
    payload = body.encode()
    writer.write((
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Response')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode() + payload)
    await writer.drain()


async def _send_ndjson(writer: asyncio.StreamWriter,
                       stream: AsyncIterator[dict]) -> None:
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Transfer-Encoding: chunked\r\n\r\n"
    )
    async for event in stream:
        line = (json.dumps(event, sort_keys=True) + "\n").encode()
        writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()
