"""One cluster shard: a ``VerificationService`` behind a framed socket.

``python -m repro.cluster.worker --socket PATH --worker-id N`` runs
exactly the single-process service — same admission queue, same
micro-batcher, same shard-local L1 caches and metrics registry — but
fronted by the length-prefixed JSON protocol on a Unix socket instead
of HTTP. The router is its only client; every op maps onto the same
:class:`~repro.service.http.ServiceApp` routes the HTTP front end uses,
so a routed job executes byte-identically to a directly-submitted one.

Shard-local vs shared state: the LLM and SQL caches, verifiers, ledger,
and metrics live in this process (shared-nothing between shards); an
optional ``--cache-db`` adds the one deliberately *shared* tier, the
sqlite L2 from PR 6, which is multi-process safe and keyed by content
fingerprints — the same fingerprints the router shards on.

Ops (see :mod:`repro.cluster.protocol` for framing):

``hello``      handshake; the supervisor's spawn health check.
``submit``     ``{"payload": {...}}`` -> ``{"status", "body"}``
               (the ServiceApp route result, HTTP status included).
``subscribe``  ``{"job_id"}`` -> one ``{"event": {...}}`` frame per job
               event, then ``{"end": true}`` after the terminal event.
``cancel``     ``{"job_id"}`` -> ``{"cancelled": bool}``.
``warm``       ``{"dataset"}`` -> ``{"documents": n}``; force-builds the
               dataset bundle so the first real job doesn't pay for it.
``health``     readiness probe: ``{"ready", "draining", "queue_depth"}``.
``stats``      the full ServiceStats dict for ``/v1/stats`` aggregation.
``metrics``    the metrics registry snapshot (wire form) for
               ``GET /metrics`` aggregation.
``trace``      ``{"job_id"}`` -> the job's span forest (wire form, wall
               times included) plus the trace context it was submitted
               with; the router stitches these under its own job root
               for ``GET /v1/jobs/<id>/trace``.
``telemetry``  the shard's rolling telemetry-window snapshot for
               ``GET /v1/telemetry`` aggregation.
``drain``      graceful drain: stop accepting, flush accepted jobs,
               reply ``{"drained": true}`` when the queue is empty.
``exit``       acknowledge, then stop the process.

SIGTERM/SIGINT trigger the same drain path via the shared
:func:`~repro.service.signals.install_drain_handlers` hook.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import socket
import sys
import threading
from typing import Callable

from repro.cache import CacheConfig
from repro.datasets import DatasetBundle, build_aggchecker, build_tabfact
from repro.obs.logging import FileSink, add_sink
from repro.service import ServiceConfig, VerificationService
from repro.service.http import DEFAULT_DATASETS, ServiceApp
from repro.service.signals import install_drain_handlers

from .protocol import ProtocolError, encode_frame, metrics_to_wire, read_frame

#: Dataset sets the router and its workers must agree on (the router
#: computes routing fingerprints from the same builders the workers
#: verify against). "tiny" keeps integration tests fast; "bench" is the
#: hot-document load the cluster benchmark drives.
DATASET_PROFILES: dict[str, Callable[[], dict]] = {
    "default": lambda: dict(DEFAULT_DATASETS),
    "tiny": lambda: {
        "aggchecker": lambda: build_aggchecker(document_count=2,
                                               total_claims=8),
        "tabfact": lambda: build_tabfact(table_count=2, total_claims=6),
    },
    "bench": lambda: {
        "aggchecker": lambda: build_aggchecker(document_count=32,
                                               total_claims=192),
    },
}


def dataset_builders(profile: str) -> dict[str, Callable[[], DatasetBundle]]:
    """The named profile's dataset builders (raises on unknown names)."""
    try:
        return DATASET_PROFILES[profile]()
    except KeyError:
        raise ValueError(
            f"unknown dataset profile {profile!r}; "
            f"known: {sorted(DATASET_PROFILES)}"
        ) from None


def latency_wrapper(scale: float) -> Callable | None:
    """A client wrapper simulating per-token model latency (0 = none)."""
    if scale <= 0:
        return None
    from repro.experiments.parallel_bench import LatencySimulatingClient

    return lambda client: LatencySimulatingClient(client, scale)


class WorkerServer:
    """Serves the framed protocol for one shard over a Unix socket."""

    def __init__(self, socket_path: str, app: ServiceApp,
                 worker_id: int) -> None:
        self.socket_path = socket_path
        self.app = app
        self.worker_id = worker_id
        self._stop = threading.Event()
        self._drained = threading.Event()
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        with contextlib.suppress(FileNotFoundError):
            os.unlink(socket_path)
        self._listener.bind(socket_path)
        self._listener.listen(16)

    @property
    def service(self) -> VerificationService:
        return self.app.service

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop`; one thread each."""
        try:
            while not self._stop.is_set():
                try:
                    connection, _ = self._listener.accept()
                except OSError:
                    break  # listener closed by stop()
                threading.Thread(
                    target=self._serve_connection,
                    args=(connection,),
                    name=f"cedar-worker-{self.worker_id}-conn",
                    daemon=True,
                ).start()
        finally:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.socket_path)

    def stop(self) -> None:
        self._stop.set()
        with contextlib.suppress(OSError):
            self._listener.shutdown(socket.SHUT_RDWR)
        self._listener.close()

    def drain(self) -> None:
        """Refuse new jobs, flush accepted ones, and remember we did."""
        self.service.begin_drain()
        self.service.shutdown(drain=True)
        self._drained.set()

    # -- the protocol --------------------------------------------------------

    def _serve_connection(self, connection: socket.socket) -> None:
        stream = connection.makefile("rb")
        write_lock = threading.Lock()
        try:
            while True:
                try:
                    request = read_frame(stream)
                except ProtocolError:
                    break
                if request is None:
                    break
                # Each request gets its own thread: a blocking op (a
                # long subscribe, a drain) must not stall the health
                # probes and submits that follow it on the connection.
                threading.Thread(
                    target=self._handle,
                    args=(request, connection, write_lock),
                    daemon=True,
                ).start()
        finally:
            with contextlib.suppress(OSError):
                connection.close()

    def _send(self, connection: socket.socket, lock: threading.Lock,
              message: dict) -> bool:
        try:
            with lock:
                connection.sendall(encode_frame(message))
            return True
        except OSError:
            return False  # router went away; subscriptions just stop

    def _handle(self, request: dict, connection: socket.socket,
                lock: threading.Lock) -> None:
        request_id = request.get("id")
        op = request.get("op")
        try:
            if op == "hello":
                self._send(connection, lock, {
                    "id": request_id, "ok": True,
                    "worker": self.worker_id, "pid": os.getpid(),
                })
            elif op == "submit":
                status, body = self.app.submit(request.get("payload") or {})
                self._send(connection, lock, {
                    "id": request_id, "ok": status == 202,
                    "status": status, "body": body,
                })
            elif op == "subscribe":
                self._subscribe(request, connection, lock)
            elif op == "cancel":
                cancelled = self.service.cancel(str(request.get("job_id")))
                self._send(connection, lock, {
                    "id": request_id, "ok": True, "cancelled": cancelled,
                })
            elif op == "warm":
                documents = self.app.warm(str(request.get("dataset")))
                self._send(connection, lock, {
                    "id": request_id, "ok": True, "documents": documents,
                })
            elif op == "health":
                self._send(connection, lock, {
                    "id": request_id, "ok": True,
                    "ready": self.service.ready,
                    "draining": self.service.draining,
                    "queue_depth": self.service.queue_depth,
                })
            elif op == "stats":
                self._send(connection, lock, {
                    "id": request_id, "ok": True,
                    "stats": self.service.stats().to_dict(),
                })
            elif op == "metrics":
                snapshot = metrics_to_wire(self.service.metrics.collect())
                self._send(connection, lock, {
                    "id": request_id, "ok": True, "metrics": snapshot,
                })
            elif op == "trace":
                self._trace(request, connection, lock)
            elif op == "telemetry":
                self._send(connection, lock, {
                    "id": request_id, "ok": True,
                    "telemetry": self.service.telemetry.snapshot(),
                })
            elif op == "drain":
                self.drain()
                self._send(connection, lock, {
                    "id": request_id, "ok": True, "drained": True,
                })
            elif op == "exit":
                self._send(connection, lock, {"id": request_id, "ok": True})
                self.stop()
            else:
                self._send(connection, lock, {
                    "id": request_id, "ok": False,
                    "error": f"unknown op {op!r}",
                })
        except Exception as error:  # never let one op kill the connection
            self._send(connection, lock, {
                "id": request_id, "ok": False,
                "error": f"{type(error).__name__}: {error}",
            })

    def _trace(self, request: dict, connection: socket.socket,
               lock: threading.Lock) -> None:
        """The job's span forest in wire form (wall times included —
        the router rebases them onto its own clock when stitching)."""
        request_id = request.get("id")
        handle = self.service.job(str(request.get("job_id")))
        if handle is None:
            self._send(connection, lock, {
                "id": request_id, "ok": False,
                "error": f"no job {request.get('job_id')!r}",
            })
            return
        spans = [
            span.to_dict(str(index), include_times=True)
            for index, span in enumerate(handle.spans(), start=1)
        ]
        self._send(connection, lock, {
            "id": request_id, "ok": True, "state": handle.state,
            "spans": spans, "trace": handle.trace_context(),
        })

    def _subscribe(self, request: dict, connection: socket.socket,
                   lock: threading.Lock) -> None:
        request_id = request.get("id")
        handle = self.service.job(str(request.get("job_id")))
        if handle is None:
            self._send(connection, lock, {
                "id": request_id, "ok": False,
                "error": f"no job {request.get('job_id')!r}",
            })
            return
        for event in handle.events(timeout=None):
            if not self._send(connection, lock,
                              {"id": request_id, "event": event.to_dict()}):
                return
        self._send(connection, lock, {"id": request_id, "end": True})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="One CEDAR cluster shard (spawned by the router).",
    )
    parser.add_argument("--socket", required=True,
                        help="unix socket path to serve the protocol on")
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--profile", default="default",
                        choices=sorted(DATASET_PROFILES))
    parser.add_argument("--workers", type=int, default=4,
                        help="verifier threads per batch")
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--batch-window", type=float, default=0.02)
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument("--cache-db", default=None,
                        help="shared persistent L2 sqlite path (optional)")
    parser.add_argument("--latency-scale", type=float, default=0.0,
                        help="simulate per-token model latency (bench)")
    parser.add_argument("--no-tracing", action="store_true",
                        help="disable per-job span trees (bench baseline)")
    parser.add_argument("--log-file", default=None, metavar="PATH",
                        help="append structured ndjson logs to PATH")
    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.log_file:
        add_sink(FileSink(arguments.log_file))
    service = VerificationService(ServiceConfig(
        max_queue_depth=arguments.queue_depth,
        # Fairness is enforced at the router across all shards; a
        # shard-local cap would double-count clients that hash onto
        # few shards, so it is effectively disabled here.
        per_client_limit=1_000_000,
        max_batch_jobs=arguments.max_batch,
        batch_window=arguments.batch_window,
        workers=arguments.workers,
        cache_size=arguments.cache_size,
        tracing=not arguments.no_tracing,
        cache_config=(CacheConfig(path=arguments.cache_db)
                      if arguments.cache_db else None),
    )).start()
    app = ServiceApp(
        service,
        datasets=dataset_builders(arguments.profile),
        seed=arguments.seed,
        client_wrapper=latency_wrapper(arguments.latency_scale),
    )
    server = WorkerServer(arguments.socket, app, arguments.worker_id)

    def begin_drain(signum: int) -> None:
        threading.Thread(target=_drain_and_stop, daemon=True).start()

    def _drain_and_stop() -> None:
        server.drain()
        server.stop()

    install_drain_handlers(begin_drain)
    server.serve_forever()
    # A protocol-initiated exit still owes the service a drain.
    if not server._drained.is_set():
        service.shutdown(drain=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
