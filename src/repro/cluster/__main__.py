"""``python -m repro.cluster`` — run the sharded cluster front end.

Starts N worker processes (each a full single-process service shard)
plus the asyncio router, and serves the familiar HTTP surface —
``POST /v1/verify``, ndjson event streams, ``/v1/stats``, ``/metrics``,
``/v1/healthz``, ``/v1/readyz`` — on one event loop.

SIGTERM/SIGINT trigger the same graceful drain the single-process
``python -m repro.service`` performs: stop admitting, flush every
accepted job on every shard, then exit. A second signal kills.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.service.signals import install_drain_handlers

from .router import ClusterConfig, ClusterRouter
from .worker import DATASET_PROFILES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Sharded CEDAR verification cluster "
                    "(consistent-hash router + N worker processes).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8100)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (shards)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--profile", default="default",
                        choices=sorted(DATASET_PROFILES),
                        help="dataset profile shared by router and shards")
    parser.add_argument("--per-client-limit", type=int, default=8,
                        help="open jobs per client across the cluster")
    parser.add_argument("--max-shard-inflight", type=int, default=64,
                        help="open jobs per shard before queue_full")
    parser.add_argument("--shard-threads", type=int, default=4,
                        help="verifier threads inside each worker")
    parser.add_argument("--cache-db", default=None,
                        help="shared persistent L2 sqlite path (optional)")
    parser.add_argument("--latency-scale", type=float, default=0.0,
                        help="simulate per-token model latency (bench)")
    parser.add_argument("--no-respawn", action="store_true",
                        help="do not respawn crashed workers")
    parser.add_argument("--no-tracing", action="store_true",
                        help="disable distributed tracing (router spans, "
                             "trace contexts, worker span trees)")
    parser.add_argument("--log-file", default=None, metavar="PATH",
                        help="append router ndjson logs to PATH; each "
                             "worker appends to PATH.w<id>")
    return parser


async def _run(arguments: argparse.Namespace) -> int:
    router = ClusterRouter(ClusterConfig(
        workers=arguments.workers,
        seed=arguments.seed,
        profile=arguments.profile,
        per_client_limit=arguments.per_client_limit,
        max_shard_inflight=arguments.max_shard_inflight,
        shard_threads=arguments.shard_threads,
        cache_db=arguments.cache_db,
        latency_scale=arguments.latency_scale,
        respawn=not arguments.no_respawn,
        tracing=not arguments.no_tracing,
        log_file=arguments.log_file,
    ))
    loop = asyncio.get_running_loop()
    drained = asyncio.Event()

    def begin_drain(signum: int) -> None:
        loop.call_soon_threadsafe(drained.set)

    install_drain_handlers(begin_drain)
    await router.start()
    host, port = await router.serve_http(arguments.host, arguments.port)
    print(f"cluster: {arguments.workers} workers behind "
          f"http://{host}:{port}/v1/ (Ctrl-C drains)", flush=True)
    try:
        await drained.wait()
        print("cluster: draining accepted jobs ...", flush=True)
        await router.drain()
    finally:
        await router.stop()
    print("cluster: drained and stopped", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    return asyncio.run(_run(arguments))


if __name__ == "__main__":
    sys.exit(main())
