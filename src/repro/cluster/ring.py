"""Consistent-hash ring: stable job-to-shard routing.

The router places every worker at ``replicas`` pseudo-random points on a
2^64 ring (sha256 of ``"worker:<id>/<replica>"``) and routes each job to
the first worker point at or after the hash of its routing key — the
job's database content fingerprint. Two properties make this the right
structure for shard-local caches:

* **Stability** — the same fingerprint always lands on the same worker
  while the live set is unchanged, so a shard's L1 LLM/SQL caches keep
  serving the traffic that warmed them.
* **Minimal disruption** — when a worker dies, only the keys whose
  owning points belonged to the dead worker move (each to the next live
  point clockwise); every other key keeps its shard. A respawned worker
  re-occupies exactly its old points, restoring the original routing.

Worker ids are small integers (shard indexes); keys are arbitrary
strings. The ring itself is immutable — liveness is passed per lookup —
which keeps it trivially thread/async-safe.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

#: Points per worker. 64 keeps the expected load imbalance across a
#: handful of shards within a few percent at negligible build cost.
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    """A position on the 2^64 ring (first 8 bytes of sha256)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over integer worker ids."""

    def __init__(self, workers: Iterable[int],
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.workers = tuple(sorted(set(workers)))
        if not self.workers:
            raise ValueError("a ring needs at least one worker")
        self.replicas = replicas
        points = [
            (_point(f"worker:{worker}/{replica}"), worker)
            for worker in self.workers
            for replica in range(replicas)
        ]
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def route(self, key: str,
              live: Sequence[int] | None = None) -> int | None:
        """The worker owning ``key``, restricted to ``live`` workers.

        ``live=None`` means every worker is eligible. Returns None when
        no eligible worker exists. Walking clockwise past dead workers'
        points (rather than rebuilding the ring) is what confines a
        failure's remapping to the dead worker's own keys.
        """
        eligible = set(self.workers if live is None else live)
        eligible &= set(self.workers)
        if not eligible:
            return None
        start = bisect.bisect_right(self._hashes, _point(f"key:{key}"))
        count = len(self._points)
        for offset in range(count):
            worker = self._points[(start + offset) % count][1]
            if worker in eligible:
                return worker
        return None

    def assignment(self, keys: Iterable[str],
                   live: Sequence[int] | None = None) -> dict[str, int]:
        """Route many keys at once (testing/inspection convenience)."""
        routed: dict[str, int] = {}
        for key in keys:
            worker = self.route(key, live)
            if worker is not None:
                routed[key] = worker
        return routed
