"""Length-prefixed JSON frames: the router <-> worker wire protocol.

One frame = a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON encoding one object. That is the whole format — no content
negotiation, no compression — because both ends are the same codebase
on the same machine and the values are small control messages; job
*payloads* are dataset references, never documents, so frames stay tiny.

Requests carry a caller-chosen ``id``; every response frame echoes it,
which is what lets the router multiplex all traffic to a worker over a
single connection: a reader task dispatches each arriving frame to the
pending request (or event subscription) with that id. Most ops produce
exactly one response; ``subscribe`` produces an ``{"id", "event"}``
frame per job event and a final ``{"id", "end": true}``.

The module deliberately has both a blocking reader (the worker side is
threaded, like the service it wraps) and an asyncio reader (the router
side is a single event loop).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import BinaryIO

from repro.obs.metrics import Metric

#: Upper bound on one frame's JSON body. Stats and metrics snapshots
#: are the largest frames and sit far below this; anything bigger is a
#: corrupt length prefix, and failing fast beats a 4 GiB allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame (bad length, truncated body, non-object JSON)."""


def encode_frame(message: dict) -> bytes:
    """Serialise one message to its wire form."""
    body = json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    return _LENGTH.pack(len(body)) + body


def _decode_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame body: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


def read_frame(stream: BinaryIO) -> dict | None:
    """Blocking read of one frame; None on clean EOF at a boundary."""
    header = stream.read(_LENGTH.size)
    if not header:
        return None
    if len(header) < _LENGTH.size:
        raise ProtocolError("truncated frame length")
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    body = b""
    while len(body) < length:
        chunk = stream.read(length - len(body))
        if not chunk:
            raise ProtocolError("truncated frame body")
        body += chunk
    return _decode_body(body)


async def read_frame_async(reader: asyncio.StreamReader) -> dict | None:
    """Asyncio read of one frame; None on clean EOF at a boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("truncated frame length") from error
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("truncated frame body") from error
    return _decode_body(body)


# -- trace context on the wire -----------------------------------------------
#
# Distributed tracing crosses the socket as a tiny dict riding the
# ``submit`` request under the ``"trace"`` key. It names the router's
# trace and the span the worker's tree will be grafted under, nothing
# more — span payloads travel the *other* way, via the ``trace`` op,
# only when a stitched trace is actually requested.


def make_trace_context(trace_id: str, parent_span: str = "1") -> dict:
    """The trace context attached to a routed submit frame.

    ``parent_span`` is a structural span reference (render-time id of
    the router's job root — ``"1"`` since the stitched tree has one
    root), not a random span id: ids here are positions, so the
    reference is stable across reruns.
    """
    return {"trace_id": str(trace_id), "parent_span": str(parent_span)}


def parse_trace_context(payload) -> dict | None:
    """Validate a wire trace context; None when absent or malformed.

    Malformed contexts are dropped rather than rejected — tracing is
    observability, and a bad context must never fail the job itself.
    """
    if not isinstance(payload, dict):
        return None
    trace_id = payload.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    parent_span = payload.get("parent_span", "1")
    return {"trace_id": trace_id, "parent_span": str(parent_span)}


# -- metric snapshots on the wire --------------------------------------------
#
# The router's GET /metrics aggregates every shard's registry. Metric
# objects cross the boundary as plain JSON and are rebuilt with a
# ``worker`` label on every sample, so one Prometheus family carries
# all shards side by side.


def metrics_to_wire(metrics: list[Metric]) -> list[dict]:
    """Serialise a registry snapshot for a ``metrics`` response frame."""
    return [
        {
            "name": metric.name,
            "type": metric.type,
            "help": metric.help,
            "samples": [
                [[list(pair) for pair in labels], value]
                for labels, value in metric.samples
            ],
        }
        for metric in metrics
    ]


def metrics_from_wire(
    payload: list[dict], extra_labels: dict[str, str] | None = None
) -> list[Metric]:
    """Rebuild :class:`Metric` objects, tagging samples with
    ``extra_labels`` (the router adds ``{"worker": <shard>}``)."""
    extra = tuple(sorted((str(k), str(v))
                         for k, v in (extra_labels or {}).items()))
    rebuilt: list[Metric] = []
    for entry in payload:
        samples = tuple(
            (tuple(tuple(pair) for pair in labels) + extra, value)
            for labels, value in entry.get("samples", [])
        )
        rebuilt.append(Metric(
            name=entry["name"],
            type=entry["type"],
            help=entry.get("help", ""),
            samples=samples,
        ))
    return rebuilt
