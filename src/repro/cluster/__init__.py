"""Sharded multi-worker cluster for the verification service.

``python -m repro.cluster --workers N`` runs the single-process
service's big sibling: an asyncio router front end that consistent-
hashes jobs onto N worker processes by database content fingerprint,
with admission control lifted to the router, per-job event fan-out to
any number of ndjson streams, and a supervisor that health-checks
spawns, drains gracefully, and respawns crashed workers while turning
their open jobs into structured ``worker_lost`` terminal events.

See ``docs/cluster.md`` for the architecture.

Exports resolve lazily (PEP 562): workers are spawned with
``python -m repro.cluster.worker``, and an eager ``from .worker import``
here would make runpy import the module twice per spawn.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "MAX_FRAME_BYTES": ".protocol",
    "ProtocolError": ".protocol",
    "encode_frame": ".protocol",
    "metrics_from_wire": ".protocol",
    "metrics_to_wire": ".protocol",
    "read_frame": ".protocol",
    "read_frame_async": ".protocol",
    "DEFAULT_REPLICAS": ".ring",
    "HashRing": ".ring",
    "REASON_WORKER_LOST": ".router",
    "TERMINAL_KINDS": ".router",
    "ClusterConfig": ".router",
    "ClusterRouter": ".router",
    "JobRecord": ".router",
    "RoutingTable": ".router",
    "WorkerGone": ".supervisor",
    "WorkerLink": ".supervisor",
    "WorkerProcess": ".supervisor",
    "WorkerSupervisor": ".supervisor",
    "DATASET_PROFILES": ".worker",
    "WorkerServer": ".worker",
    "dataset_builders": ".worker",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module, __name__), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
