"""TabFact-style benchmark generator (paper Section 7.1).

The paper samples 100 numerical claims over 28 Wikipedia tables from
TabFact [34]. TabFact tables are small (a few dozen rows) and its claims
are simple (mostly lookups and counts; Table 3 reports 0.63 aggregates and
0.09 sub-queries per query on average), which is exactly the regime where
the TAPEX baseline's table flattening works. Labels follow TabFact's
entailed/refuted split, which is roughly balanced.
"""

from __future__ import annotations

import random

from repro.core.claims import Document
from repro.llm.world import ClaimWorld

from .base import DatasetBundle
from .claimgen import ClaimGenerator, GenerationSettings
from .tablegen import generate_database
from .themes import ALL_THEMES

KIND_WEIGHTS = {
    "lookup": 0.48,
    "count": 0.26,
    "max": 0.10,
    "min": 0.06,
    "avg": 0.05,
    "superlative_numeric": 0.05,
}

TABLE_COUNT = 28
TOTAL_CLAIMS = 100
INCORRECT_RATE = 0.40  # TabFact's refuted share is close to half

#: TabFact claims are human-written paraphrases with low lexical overlap
#: with the table headers (unlike data summaries, which tend to echo
#: column names). Measure phrases are rewritten through this synonym map
#: so keyword-matching baselines face the published difficulty.
PARAPHRASES: dict[str, str] = {
    "fatal_accidents_85_99": "deadly crashes in the late twentieth century",
    "fatal_accidents_00_14": "deadly crashes since the millennium",
    "incidents": "reported mishaps",
    "avail_seat_km_per_week": "weekly seat-distance flown, in millions",
    "beer_servings": "yearly glasses of lager per capita",
    "wine_servings": "yearly glasses from the vineyard per capita",
    "spirit_servings": "yearly shots of hard liquor per capita",
    "total_litres_of_pure_alcohol": "ethanol intake per capita",
    "race_wins": "career victories",
    "pole_positions": "starts from the front of the grid",
    "podiums": "top-three finishes",
    "championships": "world titles",
    "respondents": "people who answered the questionnaire",
    "loved_pct": "share of fans among coders",
    "median_salary": "typical yearly pay in dollars",
    "years_experience": "typical time in the craft",
    "violent_crimes": "offences against persons",
    "property_crimes": "thefts and burglaries",
    "population_k": "thousands of inhabitants",
    "officers_per_10k": "patrol staffing per ten thousand residents",
    "mean_temp_c": "typical warmth through the year",
    "annual_rainfall_mm": "yearly precipitation depth",
    "sunny_days": "cloud-free days each year",
    "elevation_m": "height above the sea",
    "box_office_millions": "millions earned in theatres",
    "budget_millions": "millions spent on production",
    "rating": "reviewer score",
    "runtime_min": "length of the picture in minutes",
    "enrollment_k": "thousands of matriculated students",
    "acceptance_rate": "share of applicants admitted",
    "endowment_billions": "billions held in the coffers",
    "founded_year": "year of establishment",
    "annual_visitors_k": "thousands of tourists each year",
    "area_km2": "expanse of protected land",
    "inscription_year": "year of listing",
    "buffer_zone_km2": "expanse of the surrounding shield",
    "capacity_mw": "megawatts the station can deliver",
    "annual_gwh": "yearly output in gigawatt hours",
    "capacity_factor": "share of the theoretical output achieved",
    "commissioned_year": "year the switches were first thrown",
    "league_titles": "domestic crowns",
    "continental_cups": "international trophies",
    "stadium_capacity_k": "thousands of seats in the home ground",
    "squad_value_m": "millions of euros the roster is worth",
    "calories": "units of food energy per bowl",
    "sugar_g": "sweetness content per bowl",
    "fiber_g": "roughage content per bowl",
    "protein_g": "protein content per bowl",
}

#: TabFact tables are small; keep generated tables in that regime so the
#: TAPEX baseline's flattening fits its context window.
ROW_RANGE = (8, 18)


def build_tabfact(
    seed: int = 11,
    table_count: int = TABLE_COUNT,
    total_claims: int = TOTAL_CLAIMS,
    incorrect_rate: float = INCORRECT_RATE,
) -> DatasetBundle:
    """Generate the TabFact-style benchmark."""
    import dataclasses

    rng = random.Random(seed)
    world = ClaimWorld()
    documents: list[Document] = []
    claim_counts = _spread(total_claims, table_count, rng)
    settings = GenerationSettings(
        kind_weights=KIND_WEIGHTS,
        incorrect_rate=incorrect_rate,
        # TabFact claims are short and unambiguous over tiny tables.
        hard_fraction=0.08,
        misread_fraction=0.10,
    )
    for index in range(table_count):
        theme = _paraphrased(
            dataclasses.replace(rng.choice(ALL_THEMES), row_range=ROW_RANGE)
        )
        doc_id = f"tabfact{index:02d}"
        database = generate_database(theme, rng, name=doc_id)
        generator = ClaimGenerator(theme, database, world, rng, doc_id)
        claims = [
            generator.generate(settings).claim
            for _ in range(claim_counts[index])
        ]
        for claim in claims:
            claim.metadata["domain"] = "tabfact"
        documents.append(
            Document(
                doc_id=doc_id,
                claims=claims,
                data=database,
                domain="tabfact",
                title=f"TabFact table {index} ({theme.key})",
            )
        )
    return DatasetBundle(
        name="tabfact",
        documents=documents,
        world=world,
        description=(
            "TabFact-style: 100 numeric claims over 28 small Wikipedia-like "
            "tables, balanced entailed/refuted labels"
        ),
    )


def _paraphrased(theme):
    """Swap measure phrases for their TabFact-style paraphrases."""
    import dataclasses

    numeric = tuple(
        dataclasses.replace(c, measure=PARAPHRASES.get(c.name, c.measure))
        for c in theme.numeric_columns
    )
    return dataclasses.replace(theme, numeric_columns=numeric)


def _spread(total: int, buckets: int, rng: random.Random) -> list[int]:
    base, remainder = divmod(total, buckets)
    counts = [base] * buckets
    for position in rng.sample(range(buckets), remainder):
        counts[position] += 1
    return counts
