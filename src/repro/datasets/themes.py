"""Theme blueprints for synthetic datasets.

Every generated document follows a *theme*: a table schema with realistic
column names and vocabularies, plus the phrasing fragments claim templates
use to render fluent sentences. Themes imitate the sources the paper
evaluates on (538 and NYT newspaper data, Stack Overflow surveys,
Wikipedia tables).

Vocabularies are (stored, display) pairs: the value stored in the table
versus the phrasing a journalist would use in text. Where the two differ
("USA" vs "United States") a claim filtering on that value carries the
paper's *lookup trap* (Figure 4) — one-shot models guess the display form
and miss; agents recover via the unique-values tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class VocabEntry:
    """One category value: how it is stored vs how prose refers to it."""

    stored: str
    display: str | None = None

    @property
    def shown(self) -> str:
        return self.display or self.stored

    @property
    def is_trap(self) -> bool:
        return self.display is not None and self.display != self.stored


@dataclass(frozen=True)
class CategoryColumn:
    """A text column drawing values from a vocabulary."""

    name: str
    vocabulary: tuple[VocabEntry, ...]
    noun: str  # how prose refers to one entity ("airline", "country")


@dataclass(frozen=True)
class NumericColumn:
    """A numeric column with a value range and phrasing for claims."""

    name: str
    low: float
    high: float
    decimals: int  # 0 -> integers
    measure: str   # prose description ("fatal accidents", "wine servings")
    unit: str = ""  # unit name for the unit-conversion benchmark
    unit_kind: str = ""  # key into units.CONVERSIONS ("" = not convertible)


@dataclass(frozen=True)
class Theme:
    """One document theme: schema plus phrasing."""

    key: str
    table_name: str
    entity_column: CategoryColumn
    extra_categories: tuple[CategoryColumn, ...]
    numeric_columns: tuple[NumericColumn, ...]
    subject: str        # collective noun for rows ("airlines", "drivers")
    narrative: str      # boilerplate sentence template for paragraph filler
    row_range: tuple[int, int] = (12, 40)
    #: Extra anonymous rows ("<entity>-<k>") appended beyond the named
    #: vocabulary. Claims never reference fillers, but aggregates range
    #: over them and they inflate the table the way real newspaper data
    #: sets are inflated — which is what breaks table-flattening baselines
    #: like TAPEX on AggChecker (Section 7.2).
    filler_row_range: tuple[int, int] = (0, 0)

    @property
    def category_columns(self) -> tuple[CategoryColumn, ...]:
        return (self.entity_column,) + self.extra_categories

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(
            [c.name for c in self.category_columns]
            + [n.name for n in self.numeric_columns]
        )


def _v(*entries: str | tuple[str, str]) -> tuple[VocabEntry, ...]:
    result = []
    for entry in entries:
        if isinstance(entry, tuple):
            result.append(VocabEntry(entry[0], entry[1]))
        else:
            result.append(VocabEntry(entry))
    return tuple(result)


_COUNTRIES = _v(
    ("USA", "United States"), ("UK", "United Kingdom"), "France", "Germany",
    "Italy", "Spain", "Japan", ("UAE", "United Arab Emirates"), "Brazil",
    "Canada", "Australia", ("S. Korea", "South Korea"), "Mexico", "India",
    "Portugal", "Argentina", "Chile", "Netherlands", "Sweden", "Norway",
)

_REGIONS = _v("Asia", "Europe", "North America", "South America", "Africa",
              "Oceania")

AIRLINE_SAFETY = Theme(
    key="airline_safety",
    table_name="airlinesafety",
    entity_column=CategoryColumn(
        "airline",
        _v(
            "Malaysia Airlines", "KLM", "Lufthansa", "Delta Air Lines",
            ("United", "United Airlines"), "Qantas", "Air France",
            "Singapore Airlines", "Emirates", "Aeroflot", "Turkish Airlines",
            ("ANA", "All Nippon Airways"), "Ryanair", "easyJet",
            "Air Canada", "LATAM", "Iberia", "Finnair", "Korean Air",
            ("SWA", "Southwest Airlines"),
        ),
        "airline",
    ),
    extra_categories=(CategoryColumn("region", _REGIONS, "region"),),
    numeric_columns=(
        NumericColumn("fatal_accidents_85_99", 0, 14, 0,
                      "fatal accidents between 1985 and 1999"),
        NumericColumn("fatal_accidents_00_14", 0, 8, 0,
                      "fatal accidents between 2000 and 2014"),
        NumericColumn("incidents", 0, 60, 0, "safety incidents"),
        NumericColumn("avail_seat_km_per_week", 100, 7000, 0,
                      "million available seat kilometers per week"),
    ),
    subject="airlines",
    narrative=(
        "Aviation safety records vary widely across carriers. Regulators "
        "publish detailed incident statistics for every major airline."
    ),
)

ALCOHOL_CONSUMPTION = Theme(
    key="alcohol",
    table_name="drinks",
    entity_column=CategoryColumn("country", _COUNTRIES, "country"),
    extra_categories=(CategoryColumn("continent", _REGIONS, "continent"),),
    numeric_columns=(
        NumericColumn("beer_servings", 0, 380, 0, "beer servings per person"),
        NumericColumn("wine_servings", 0, 380, 0, "wine servings per person"),
        NumericColumn("spirit_servings", 0, 300, 0,
                      "spirit servings per person"),
        NumericColumn("total_litres_of_pure_alcohol", 0, 15, 1,
                      "litres of pure alcohol per person", "litres", "volume"),
    ),
    subject="countries",
    narrative=(
        "Drinking habits differ across the world. Health agencies track "
        "per-capita consumption of beer, wine, and spirits annually."
    ),
)

FORMULA_ONE = Theme(
    key="formula_one",
    table_name="f1_drivers",
    entity_column=CategoryColumn(
        "driver",
        _v(
            "Lewis Hamilton", "Michael Schumacher", "Max Verstappen",
            "Sebastian Vettel", "Alain Prost", "Ayrton Senna",
            "Fernando Alonso", "Nigel Mansell", "Jackie Stewart",
            "Niki Lauda", "Nelson Piquet", "Jim Clark", "Juan Fangio",
            "Kimi Raikkonen", "Jenson Button", "Mika Hakkinen",
        ),
        "driver",
    ),
    extra_categories=(CategoryColumn("nationality", _COUNTRIES, "nationality"),),
    numeric_columns=(
        NumericColumn("race_wins", 0, 105, 0, "race wins"),
        NumericColumn("pole_positions", 0, 104, 0, "pole positions"),
        NumericColumn("podiums", 0, 200, 0, "podium finishes"),
        NumericColumn("championships", 0, 7, 0, "world championships"),
    ),
    subject="drivers",
    narrative=(
        "Formula One statistics are meticulously recorded. Career totals "
        "for wins, poles, and podiums define the sport's all-time rankings."
    ),
)

DEV_SURVEY = Theme(
    key="dev_survey",
    table_name="survey_languages",
    entity_column=CategoryColumn(
        "language",
        _v(
            "Python", ("JS", "JavaScript"), "Rust", "Go",
            ("C#", "C Sharp"), "Java", "Kotlin", "Swift",
            ("TS", "TypeScript"), "Ruby", "PHP", "Scala", "Haskell",
            "Elixir", "Dart", "Julia",
        ),
        "language",
    ),
    extra_categories=(
        CategoryColumn(
            "category",
            _v("systems", "web", "data", "mobile", "scripting"),
            "category",
        ),
    ),
    numeric_columns=(
        NumericColumn("respondents", 200, 60000, 0, "survey respondents"),
        NumericColumn("loved_pct", 20, 90, 1,
                      "percent of developers who love the language"),
        NumericColumn("median_salary", 40000, 160000, 0,
                      "median annual salary in dollars"),
        NumericColumn("years_experience", 1, 20, 1,
                      "median years of experience"),
    ),
    subject="languages",
    narrative=(
        "The annual developer survey collects responses from programmers "
        "worldwide. Salary and satisfaction vary strongly by language."
    ),
)

CITY_CRIME = Theme(
    key="city_crime",
    table_name="city_stats",
    entity_column=CategoryColumn(
        "city",
        _v(
            ("NYC", "New York City"), ("LA", "Los Angeles"), "Chicago",
            "Houston", "Phoenix", "Philadelphia", ("SF", "San Francisco"),
            "Seattle", "Denver", "Boston", "Detroit", "Memphis",
            "Baltimore", "Atlanta", "Miami", ("DC", "Washington"),
        ),
        "city",
    ),
    extra_categories=(
        CategoryColumn(
            "state_region",
            _v("Northeast", "Midwest", "South", "West"),
            "region",
        ),
    ),
    numeric_columns=(
        NumericColumn("violent_crimes", 500, 30000, 0,
                      "reported violent crimes"),
        NumericColumn("property_crimes", 4000, 120000, 0,
                      "reported property crimes"),
        NumericColumn("population_k", 300, 8600, 0,
                      "thousand residents"),
        NumericColumn("officers_per_10k", 10, 65, 1,
                      "police officers per ten thousand residents"),
    ),
    subject="cities",
    narrative=(
        "Crime statistics are reported annually by police departments. "
        "Rates differ sharply between cities and regions."
    ),
)

CLIMATE = Theme(
    key="climate",
    table_name="climate_stations",
    entity_column=CategoryColumn(
        "station",
        _v(
            "Reykjavik", "Nairobi", "Oslo", "Cairo", "Lima", "Mumbai",
            "Sydney", "Anchorage", "Ushuaia", "Irkutsk", "Honolulu",
            "Marrakesh", "Kathmandu", "Quito", "Perth", "Tromso",
        ),
        "station",
    ),
    extra_categories=(
        CategoryColumn("hemisphere", _v("Northern", "Southern"), "hemisphere"),
    ),
    numeric_columns=(
        NumericColumn("mean_temp_c", -10, 30, 1,
                      "mean annual temperature in degrees Celsius",
                      "degrees Celsius", "temperature"),
        NumericColumn("annual_rainfall_mm", 50, 2500, 0,
                      "millimetres of annual rainfall",
                      "millimetres", "length_mm"),
        NumericColumn("sunny_days", 40, 320, 0, "sunny days per year"),
        NumericColumn("elevation_m", 0, 3700, 0,
                      "metres of elevation", "metres", "length_m"),
    ),
    subject="stations",
    narrative=(
        "Weather stations aggregate decades of measurements. Climate "
        "normals summarise temperature and rainfall per station."
    ),
)

MOVIES = Theme(
    key="movies",
    table_name="films",
    entity_column=CategoryColumn(
        "title",
        _v(
            "The Seventh Voyage", "Crimson Tide Rising", "Paper Lanterns",
            "Midnight Express II", "The Quiet Harbor", "Steel Horizon",
            "Garden of Glass", "The Last Cartographer", "Northern Lights",
            "Echoes of Tomorrow", "The Velvet Hour", "Iron Meridian",
            "Salt and Smoke", "The Forgotten Coast", "Winterfall",
            "A Minor Eclipse",
        ),
        "film",
    ),
    extra_categories=(
        CategoryColumn(
            "genre",
            _v("drama", "action", "comedy", "documentary", ("sci-fi", "science fiction")),
            "genre",
        ),
    ),
    numeric_columns=(
        NumericColumn("box_office_millions", 1, 900, 1,
                      "million dollars at the box office"),
        NumericColumn("budget_millions", 1, 250, 0,
                      "million dollars of budget"),
        NumericColumn("rating", 2, 10, 1, "average critic rating"),
        NumericColumn("runtime_min", 80, 200, 0, "minutes of runtime"),
    ),
    subject="films",
    narrative=(
        "Box-office trackers publish revenue and budget figures for every "
        "wide release. Critics' ratings complete the picture."
    ),
)

UNIVERSITIES = Theme(
    key="universities",
    table_name="universities",
    entity_column=CategoryColumn(
        "university",
        _v(
            "Cornell", ("MIT", "Massachusetts Institute of Technology"),
            "Stanford", "Oxford", "Cambridge", ("ETH", "ETH Zurich"),
            "Toronto", "Melbourne", "Tokyo", "Heidelberg", "Uppsala",
            ("NUS", "National University of Singapore"), "McGill",
            "Edinburgh", "Leiden", "Bologna",
        ),
        "university",
    ),
    extra_categories=(
        CategoryColumn(
            "country", _COUNTRIES[:12], "country",
        ),
    ),
    numeric_columns=(
        NumericColumn("enrollment_k", 5, 70, 1, "thousand enrolled students"),
        NumericColumn("acceptance_rate", 4, 70, 1, "percent acceptance rate"),
        NumericColumn("endowment_billions", 0, 50, 1,
                      "billion dollars of endowment"),
        NumericColumn("founded_year", 1088, 1975, 0, "founding year"),
    ),
    subject="universities",
    narrative=(
        "University league tables compile enrollment, selectivity, and "
        "endowment data from institutional reports."
    ),
)

WORLD_HERITAGE = Theme(
    key="heritage",
    table_name="heritage_sites",
    entity_column=CategoryColumn(
        "site",
        _v(
            "Machu Picchu", "Petra", "Angkor Wat", "Great Barrier Reef",
            "Serengeti", "Alhambra", "Chichen Itza", "Stonehenge",
            "Mont Saint-Michel", "Yellowstone", "Galapagos Islands",
            "Taj Mahal", "Acropolis", "Bagan", "Meteora", "Uluru",
        ),
        "site",
    ),
    extra_categories=(
        CategoryColumn(
            "site_type", _v("cultural", "natural", "mixed"), "type",
        ),
    ),
    numeric_columns=(
        NumericColumn("annual_visitors_k", 20, 4500, 0,
                      "thousand annual visitors"),
        NumericColumn("area_km2", 0, 35000, 1,
                      "square kilometres of protected area",
                      "square kilometres", "area"),
        NumericColumn("inscription_year", 1978, 2019, 0, "inscription year"),
        NumericColumn("buffer_zone_km2", 0, 5000, 1,
                      "square kilometres of buffer zone"),
    ),
    subject="sites",
    narrative=(
        "UNESCO tracks visitor numbers and protected areas for every "
        "listed World Heritage site."
    ),
)

ENERGY = Theme(
    key="energy",
    table_name="power_plants",
    entity_column=CategoryColumn(
        "plant",
        _v(
            "Three Gorges", "Itaipu", "Grand Coulee", "Hoover Dam",
            "Kashiwazaki", "Bruce Station", "Gravelines", "Taichung",
            "Belchatow", "Drax", "Topaz Solar", "Hornsea One",
            "Gansu Wind", "Alta Wind", "Ivanpah", "Geysers Complex",
        ),
        "plant",
    ),
    extra_categories=(
        CategoryColumn(
            "fuel",
            _v("hydro", "nuclear", "coal", "gas", "solar", "wind",
               "geothermal"),
            "fuel type",
        ),
    ),
    numeric_columns=(
        NumericColumn("capacity_mw", 100, 22500, 0, "megawatts of capacity"),
        NumericColumn("annual_gwh", 300, 100000, 0,
                      "gigawatt hours generated annually"),
        NumericColumn("capacity_factor", 10, 95, 1,
                      "percent capacity factor"),
        NumericColumn("commissioned_year", 1936, 2020, 0,
                      "commissioning year"),
    ),
    subject="plants",
    narrative=(
        "Grid operators publish capacity and generation statistics for "
        "major power stations each year."
    ),
)

FOOTBALL = Theme(
    key="football",
    table_name="football_clubs",
    entity_column=CategoryColumn(
        "club",
        _v(
            "Real Madrid", "Barcelona", ("Man United", "Manchester United"),
            "Bayern Munich", "Liverpool", "Juventus", ("PSG",
            "Paris Saint-Germain"), "Ajax", "Porto", "Celtic",
            "Boca Juniors", "Flamengo", ("Inter", "Inter Milan"),
            "Benfica", "Dortmund", "Arsenal",
        ),
        "club",
    ),
    extra_categories=(
        CategoryColumn(
            "league",
            _v("La Liga", "Premier League", "Bundesliga", "Serie A",
               "Ligue 1", "Eredivisie", "Primeira Liga"),
            "league",
        ),
    ),
    numeric_columns=(
        NumericColumn("league_titles", 0, 36, 0, "league titles"),
        NumericColumn("continental_cups", 0, 15, 0, "continental cups"),
        NumericColumn("stadium_capacity_k", 10, 100, 1,
                      "thousand seats of stadium capacity"),
        NumericColumn("squad_value_m", 50, 1200, 0,
                      "million euros of squad value"),
    ),
    subject="clubs",
    narrative=(
        "Football almanacs record every club's honours and finances. "
        "Squad valuations are updated after each transfer window."
    ),
)

NUTRITION = Theme(
    key="nutrition",
    table_name="cereals",
    entity_column=CategoryColumn(
        "cereal",
        _v(
            "Corn Flakes", "Bran Crunch", "Oat Rings", "Wheat Squares",
            "Honey Puffs", "Rice Pops", "Fiber Max", "Granola Gold",
            "Muesli Mix", "Choco Bites", "Fruit Loops", "Nut Clusters",
            "Barley Flakes", "Protein Crunch", "Maple Oats", "Berry Bran",
        ),
        "cereal",
    ),
    extra_categories=(
        CategoryColumn(
            "manufacturer",
            _v("Kellogg", "General Mills", "Post", "Quaker", "Nabisco"),
            "manufacturer",
        ),
    ),
    numeric_columns=(
        NumericColumn("calories", 50, 160, 0, "calories per serving"),
        NumericColumn("sugar_g", 0, 15, 1, "grams of sugar per serving",
                      "grams", "mass_g"),
        NumericColumn("fiber_g", 0, 14, 1, "grams of fiber per serving",
                      "grams", "mass_g"),
        NumericColumn("protein_g", 1, 6, 0, "grams of protein per serving"),
    ),
    subject="cereals",
    narrative=(
        "Nutrition labels disclose calories and macronutrients per "
        "serving for every breakfast cereal on the market."
    ),
)

#: Themes used by the AggChecker-style generator, mapped to the paper's
#: source domains for the Figure 7 cross-domain study.
AGGCHECKER_THEMES: dict[str, tuple[Theme, ...]] = {
    "538": (AIRLINE_SAFETY, ALCOHOL_CONSUMPTION, FOOTBALL),
    "stackoverflow": (DEV_SURVEY,),
    "nytimes": (CITY_CRIME, ENERGY, NUTRITION),
    "wikipedia": (FORMULA_ONE, UNIVERSITIES, WORLD_HERITAGE, MOVIES, CLIMATE),
}

ALL_THEMES: tuple[Theme, ...] = (
    AIRLINE_SAFETY, ALCOHOL_CONSUMPTION, FORMULA_ONE, DEV_SURVEY, CITY_CRIME,
    CLIMATE, MOVIES, UNIVERSITIES, WORLD_HERITAGE, ENERGY, FOOTBALL, NUTRITION,
)


def theme_by_key(key: str) -> Theme:
    """Look up a theme by its key."""
    for theme in ALL_THEMES:
        if theme.key == key:
            return theme
    raise KeyError(f"unknown theme {key!r}")
