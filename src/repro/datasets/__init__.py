"""Synthetic benchmark datasets matching the paper's evaluation corpora."""

from .aggchecker import build_aggchecker
from .base import DatasetBundle
from .claimgen import (
    ClaimGenerator,
    GeneratedClaim,
    GenerationSettings,
    QueryRecipe,
    build_sql,
)
from .joinbench import build_joinbench
from .normalize import NormalizedNaming, joined_sql, normalize_database
from .tablegen import generate_database, generate_table
from .tabfact import build_tabfact
from .themes import ALL_THEMES, AGGCHECKER_THEMES, Theme, theme_by_key
from .units import CONVERSIONS, UnitConversion, conversion_for
from .unitsbench import build_units_benchmark
from .wikitext import build_wikitext

__all__ = [
    "AGGCHECKER_THEMES",
    "ALL_THEMES",
    "CONVERSIONS",
    "ClaimGenerator",
    "DatasetBundle",
    "GeneratedClaim",
    "GenerationSettings",
    "NormalizedNaming",
    "QueryRecipe",
    "Theme",
    "UnitConversion",
    "build_aggchecker",
    "build_joinbench",
    "build_sql",
    "build_tabfact",
    "build_units_benchmark",
    "build_wikitext",
    "conversion_for",
    "generate_database",
    "generate_table",
    "joined_sql",
    "normalize_database",
    "theme_by_key",
]
