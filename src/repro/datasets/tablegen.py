"""Random table instantiation from theme blueprints."""

from __future__ import annotations

import random

from repro.sqlengine import Database, Table

from .themes import Theme, VocabEntry


def generate_table(theme: Theme, rng: random.Random) -> Table:
    """Instantiate a theme's schema with random rows.

    Entity values are sampled without replacement (every row is a distinct
    entity); extra categories are sampled with replacement. Numeric values
    are uniform in the column's range with the declared decimal precision.
    """
    low, high = theme.row_range
    entities = list(theme.entity_column.vocabulary)
    rng.shuffle(entities)
    row_count = min(rng.randint(low, high), len(entities))
    names = [entity.stored for entity in entities[:row_count]]
    filler_low, filler_high = theme.filler_row_range
    if filler_high > 0:
        filler_count = rng.randint(filler_low, filler_high)
        for index in range(filler_count):
            base = entities[index % len(entities)].stored
            names.append(f"{base}-{index // len(entities) + 2}")
    rows = []
    for name_value in names:
        row: list = [name_value]
        for category in theme.extra_categories:
            row.append(rng.choice(category.vocabulary).stored)
        for numeric in theme.numeric_columns:
            row.append(_numeric_value(numeric.low, numeric.high,
                                      numeric.decimals, rng))
        rows.append(tuple(row))
    return Table(theme.table_name, list(theme.column_names), rows)


def generate_database(theme: Theme, rng: random.Random,
                      name: str | None = None) -> Database:
    """Build a single-table database for a theme."""
    database = Database(name or theme.key)
    database.add(generate_table(theme, rng))
    return database


def _numeric_value(low: float, high: float, decimals: int,
                   rng: random.Random) -> float | int:
    value = rng.uniform(low, high)
    if decimals == 0:
        return int(round(value))
    return round(value, decimals)


def vocab_entry_for(theme: Theme, column: str, stored: str) -> VocabEntry:
    """Find the vocabulary entry behind a stored value."""
    for category in theme.category_columns:
        if category.name == column:
            for entry in category.vocabulary:
                if entry.stored == stored:
                    return entry
    raise KeyError(f"no vocabulary entry for {column}={stored!r}")
