"""JoinBench: claims requiring join queries (paper Section 7.3.2).

Three AggChecker-style flat schemas are normalised into 23 tables; the
claims (sentences, values, labels) are reused verbatim, but their
ground-truth queries are rebuilt over the normalised schemas, so correct
translations now require joins. The paper reports unchanged F1 (100 % on
both variants) at roughly 3x the verification cost.
"""

from __future__ import annotations

import copy
import random

from repro.core.claims import Document
from repro.llm.world import ClaimWorld
from repro.sqlengine import engine_for
from repro.sqlengine.ast_nodes import quote_identifier
from repro.sqlengine.errors import SqlError

from .base import DatasetBundle
from .claimgen import ClaimGenerator, GenerationSettings, QueryRecipe
from .normalize import NormalizedNaming, joined_sql, normalize_database
from .tablegen import generate_database
from .themes import AIRLINE_SAFETY, DEV_SURVEY, FORMULA_ONE

#: The three flat schemas JoinBench decomposes, with the fact-group sizes
#: of each normalisation. Tables per schema = facts + 2 dims + 2 bridges:
#: 4 facts -> 8, 4 facts -> 8, 3 facts -> 7, totalling the paper's 23.
_SCHEMA_PLAN = (
    (AIRLINE_SAFETY, (1, 1, 1, 1)),   # 4 facts -> 8 tables
    (DEV_SURVEY, (1, 1, 1, 1)),       # 4 facts -> 8 tables
    (FORMULA_ONE, (2, 1, 1)),         # 3 facts -> 7 tables
)

KIND_WEIGHTS = {
    "lookup": 0.34,
    "count": 0.22,
    "sum": 0.10,
    "avg": 0.12,
    "max": 0.08,
    "percent": 0.08,
    "superlative_numeric": 0.06,
}

CLAIMS_PER_DOCUMENT = 8
INCORRECT_RATE = 0.3

#: Additional difficulty of translating a claim into a join query.
JOIN_DIFFICULTY_SHIFT = 0.18

EXPECTED_TABLE_TOTAL = 23


def build_joinbench(seed: int = 31) -> dict[str, DatasetBundle]:
    """Build the flat and joined JoinBench variants.

    Returns ``{"flat": bundle, "joined": bundle}``; the joined bundle's
    ``extras["table_total"]`` records the normalised table count.
    """
    rng = random.Random(seed)
    flat_world = ClaimWorld()
    joined_world = ClaimWorld()
    flat_documents: list[Document] = []
    joined_documents: list[Document] = []
    table_total = 0
    settings = GenerationSettings(
        kind_weights=KIND_WEIGHTS,
        incorrect_rate=INCORRECT_RATE,
        # The paper reports 100% F1 on both JoinBench variants: the claim
        # subset is clean (no ambiguous or misreadable claims).
        hard_fraction=0.0,
        misread_fraction=0.0,
    )
    for index, (theme, fact_sizes) in enumerate(_SCHEMA_PLAN):
        doc_id = f"join{index:02d}_{theme.key}"
        flat_database = generate_database(theme, rng, name=doc_id)
        generator = ClaimGenerator(theme, flat_database, flat_world, rng, doc_id)
        generated = [
            generator.generate(settings) for _ in range(CLAIMS_PER_DOCUMENT)
        ]
        flat_claims = [g.claim for g in generated]
        for claim in flat_claims:
            claim.metadata["domain"] = "joinbench"
        flat_documents.append(
            Document(
                doc_id=doc_id,
                claims=flat_claims,
                data=flat_database,
                domain="joinbench",
                title=f"JoinBench flat ({theme.key})",
            )
        )

        normalized, naming = normalize_database(
            theme,
            flat_database.table(theme.table_name),
            fact_sizes=fact_sizes,
            name=f"{doc_id}_norm",
        )
        table_total += len(normalized)
        joined_claims = []
        for item in generated:
            joined_claim = copy.deepcopy(item.claim)
            joined_claim.claim_id = f"{item.claim.claim_id}@join"
            joined_claim.query = None
            joined_claim.correct = None
            recipe: QueryRecipe = joined_claim.metadata["recipe"]
            join_query = joined_sql(recipe, naming)
            joined_claim.metadata["reference_sql"] = join_query
            joined_claims.append(joined_claim)
            knowledge = copy.deepcopy(item.knowledge)
            knowledge.claim_id = joined_claim.claim_id
            knowledge.reference_sql = join_query
            knowledge.join_required = True
            knowledge.difficulty = min(
                0.95, knowledge.difficulty + JOIN_DIFFICULTY_SHIFT
            )
            knowledge.table_name = naming.fact_tables[
                recipe.value_column
            ] if recipe.value_column in naming.fact_tables else (
                naming.attributes_table
            )
            knowledge.columns = naming.all_columns()
            knowledge.decomposition = _joined_decomposition(
                recipe, naming, normalized
            )
            joined_world.register(knowledge)
        joined_documents.append(
            Document(
                doc_id=f"{doc_id}@join",
                claims=joined_claims,
                data=normalized,
                domain="joinbench",
                title=f"JoinBench normalised ({theme.key})",
            )
        )
    flat_bundle = DatasetBundle(
        name="joinbench_flat",
        documents=flat_documents,
        world=flat_world,
        description="JoinBench claims over the original flat schemas",
    )
    joined_bundle = DatasetBundle(
        name="joinbench_joined",
        documents=joined_documents,
        world=joined_world,
        description=(
            "JoinBench claims over schemas normalised into "
            f"{table_total} tables"
        ),
        extras={"table_total": table_total},
    )
    return {"flat": flat_bundle, "joined": joined_bundle}


def _joined_decomposition(
    recipe: QueryRecipe,
    naming: NormalizedNaming,
    database,
) -> tuple[str, ...]:
    """Stepwise plan for superlative claims over the normalised schema."""
    if recipe.kind != "superlative_numeric" or recipe.inner_aggregate is None:
        return ()
    _, inner_column = recipe.inner_aggregate
    inner_fact = naming.fact_tables[inner_column]
    inner = (
        f"SELECT MAX({quote_identifier(inner_column)}) FROM "
        f"{quote_identifier(inner_fact)}"
    )
    try:
        inner_value = engine_for(database).execute(inner).first_cell()
    except SqlError:
        return ()
    value_fact = naming.fact_tables[recipe.value_column]
    value_column = quote_identifier(recipe.value_column)
    if value_fact == inner_fact:
        outer = (
            f"SELECT {value_column} FROM {quote_identifier(inner_fact)} "
            f"WHERE {quote_identifier(inner_column)} = {inner_value!r}"
        )
    else:
        outer = (
            f"SELECT v.{value_column} FROM {quote_identifier(value_fact)} v "
            f"JOIN {quote_identifier(inner_fact)} i "
            f"ON v.\"row_id\" = i.\"row_id\" "
            f"WHERE i.{quote_identifier(inner_column)} = {inner_value!r}"
        )
    return (inner, outer)
