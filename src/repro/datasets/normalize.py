"""Schema normalization for JoinBench (paper Section 7.3.2).

JoinBench decomposes flat single-table schemas into normalised schemas so
that claim queries require joins. The decomposition used here:

* one *dimension* table per category column (``<col>_dim`` with an id and
  the value),
* a ``<table>_entities`` table mapping row ids to the entity dimension,
* a ``<table>_attributes`` table mapping row ids to the remaining
  category dimensions,
* one or more *fact* tables holding the numeric columns keyed by row id
  (the fact split is configurable so the benchmark can hit the paper's
  23-table total over three schemas).

:func:`joined_sql` rebuilds a claim's ground-truth query over the
normalised schema from its structured :class:`~.claimgen.QueryRecipe`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlengine import Database, Table
from repro.sqlengine.ast_nodes import quote_identifier, quote_string

from .claimgen import QueryRecipe
from .themes import Theme
from .units import UnitConversion


@dataclass
class NormalizedNaming:
    """Name map of one normalised schema."""

    theme: Theme
    entity_table: str
    attributes_table: str
    dim_tables: dict[str, str]     # category column -> dim table name
    fact_tables: dict[str, str]    # numeric column -> fact table name

    @property
    def table_count(self) -> int:
        return (
            2 + len(self.dim_tables) + len(set(self.fact_tables.values()))
        )

    def all_columns(self) -> tuple[str, ...]:
        """Every column name in the normalised schema (for corruption)."""
        columns = ["row_id"]
        for category, dim in self.dim_tables.items():
            columns.extend([f"{category}_id", category])
        columns.extend(self.fact_tables)
        seen: set[str] = set()
        unique = []
        for column in columns:
            if column not in seen:
                seen.add(column)
                unique.append(column)
        return tuple(unique)


def normalize_database(
    theme: Theme,
    flat: Table,
    fact_split: int = 1,
    name: str | None = None,
    fact_sizes: tuple[int, ...] | None = None,
) -> tuple[Database, NormalizedNaming]:
    """Decompose a flat theme table into a normalised database.

    ``fact_split`` is the number of numeric columns per fact table
    (1 = fully vertical split); ``fact_sizes`` overrides it with explicit
    group sizes (must sum to the number of numeric columns).
    """
    if fact_split < 1:
        raise ValueError("fact_split must be at least 1")
    if fact_sizes is not None and sum(fact_sizes) != len(
        theme.numeric_columns
    ):
        raise ValueError(
            "fact_sizes must cover every numeric column exactly once"
        )
    base = theme.table_name
    database = Database(name or f"{base}_normalized")
    entity = theme.entity_column.name
    extra_names = [c.name for c in theme.extra_categories]

    # Dimension tables with stable ids per distinct value.
    dim_tables: dict[str, str] = {}
    value_ids: dict[str, dict[str, int]] = {}
    for category in theme.category_columns:
        dim_name = f"{category.name}_dim"
        dim_tables[category.name] = dim_name
        distinct = flat.unique_column_values(category.name)
        ids = {str(v): i + 1 for i, v in enumerate(distinct)}
        value_ids[category.name] = ids
        database.add(
            Table(
                dim_name,
                [f"{category.name}_id", category.name],
                [(ids[str(v)], v) for v in distinct],
            )
        )

    # Entities and attributes bridge tables.
    entity_rows = []
    attribute_rows = []
    for row_index, row in enumerate(flat.rows):
        row_id = row_index + 1
        entity_value = row[flat.column_position(entity)]
        entity_rows.append((row_id, value_ids[entity][str(entity_value)]))
        attribute_row = [row_id]
        for extra in extra_names:
            value = row[flat.column_position(extra)]
            attribute_row.append(value_ids[extra][str(value)])
        attribute_rows.append(tuple(attribute_row))
    entity_table = f"{base}_entities"
    attributes_table = f"{base}_attributes"
    database.add(Table(entity_table, ["row_id", f"{entity}_id"], entity_rows))
    database.add(
        Table(
            attributes_table,
            ["row_id"] + [f"{c}_id" for c in extra_names],
            attribute_rows,
        )
    )

    # Fact tables: numeric columns split into groups.
    fact_tables: dict[str, str] = {}
    numeric_names = [c.name for c in theme.numeric_columns]
    if fact_sizes is not None:
        groups = []
        position = 0
        for size in fact_sizes:
            groups.append(numeric_names[position:position + size])
            position += size
    else:
        groups = [
            numeric_names[i:i + fact_split]
            for i in range(0, len(numeric_names), fact_split)
        ]
    for group_index, group in enumerate(groups):
        fact_name = f"{base}_fact_{group_index}"
        rows = []
        for row_index, row in enumerate(flat.rows):
            fact_row = [row_index + 1]
            for column in group:
                fact_row.append(row[flat.column_position(column)])
            rows.append(tuple(fact_row))
        database.add(Table(fact_name, ["row_id"] + group, rows))
        for column in group:
            fact_tables[column] = fact_name

    naming = NormalizedNaming(
        theme=theme,
        entity_table=entity_table,
        attributes_table=attributes_table,
        dim_tables=dim_tables,
        fact_tables=fact_tables,
    )
    return database, naming


# -- query construction over the normalised schema ---------------------------


def joined_sql(
    recipe: QueryRecipe,
    naming: NormalizedNaming,
    conversion: UnitConversion | None = None,
) -> str:
    """Rebuild a recipe's ground-truth query over the normalised schema."""
    kind = recipe.kind
    if kind == "percent":
        numerator = _count_query(recipe, naming)
        denominator = (
            f"SELECT COUNT(a.\"row_id\") FROM "
            f"{quote_identifier(naming.attributes_table)} a"
        )
        return f"SELECT ({numerator}) * 100.0 / ({denominator})"
    if kind == "count":
        return _count_query(recipe, naming)
    if kind == "superlative_numeric":
        return _superlative_query(recipe, naming, conversion)
    return _aggregate_or_lookup_query(recipe, naming, conversion)


def _count_query(recipe: QueryRecipe, naming: NormalizedNaming) -> str:
    attributes = quote_identifier(naming.attributes_table)
    if recipe.numeric_filter is not None:
        column, operator, threshold = recipe.numeric_filter
        fact = quote_identifier(naming.fact_tables[column])
        threshold_text = (
            str(int(threshold)) if threshold == int(threshold)
            else repr(threshold)
        )
        return (
            f"SELECT COUNT(f.\"row_id\") FROM {fact} f "
            f"WHERE f.{quote_identifier(column)} {operator} {threshold_text}"
        )
    joins, predicates = _filter_joins(recipe.filters, naming, "a")
    return (
        f"SELECT COUNT(a.\"row_id\") FROM {attributes} a"
        + joins
        + _where(predicates)
    )


def _aggregate_or_lookup_query(
    recipe: QueryRecipe,
    naming: NormalizedNaming,
    conversion: UnitConversion | None,
) -> str:
    column = recipe.value_column
    fact = quote_identifier(naming.fact_tables[column])
    expression = f"f.{quote_identifier(column)}"
    if recipe.aggregate:
        expression = f"{recipe.aggregate}({expression})"
    if conversion is not None:
        expression = conversion.wrap_sql(expression)
    joins, predicates = _filter_joins(recipe.filters, naming, "f")
    return (
        f"SELECT {expression} FROM {fact} f" + joins + _where(predicates)
    )


def _superlative_query(
    recipe: QueryRecipe,
    naming: NormalizedNaming,
    conversion: UnitConversion | None,
) -> str:
    _, inner_column = recipe.inner_aggregate
    value_fact = naming.fact_tables[recipe.value_column]
    inner_fact = naming.fact_tables[inner_column]
    value_expression = f"v.{quote_identifier(recipe.value_column)}"
    if conversion is not None:
        value_expression = conversion.wrap_sql(value_expression)
    inner_select = (
        f"SELECT MAX(i2.{quote_identifier(inner_column)}) FROM "
        f"{quote_identifier(inner_fact)} i2"
    )
    if value_fact == inner_fact:
        return (
            f"SELECT {value_expression.replace('v.', 'i.')} FROM "
            f"{quote_identifier(inner_fact)} i "
            f"WHERE i.{quote_identifier(inner_column)} = ({inner_select})"
        )
    return (
        f"SELECT {value_expression} FROM {quote_identifier(value_fact)} v "
        f"JOIN {quote_identifier(inner_fact)} i "
        f"ON v.\"row_id\" = i.\"row_id\" "
        f"WHERE i.{quote_identifier(inner_column)} = ({inner_select})"
    )


def _filter_joins(
    filters: tuple[tuple[str, str], ...],
    naming: NormalizedNaming,
    base_alias: str,
) -> tuple[str, list[str]]:
    """Render joins and predicates for category filters.

    ``base_alias`` is the alias of the table carrying ``row_id`` that the
    bridge tables join against.
    """
    entity = naming.theme.entity_column.name
    joins = ""
    predicates: list[str] = []
    bridged: dict[str, str] = {}
    for index, (column, value) in enumerate(filters):
        dim = quote_identifier(naming.dim_tables[column])
        dim_alias = f"d{index}"
        id_column = quote_identifier(f"{column}_id")
        if column == entity:
            bridge_table, bridge_alias = naming.entity_table, "e"
        else:
            bridge_table, bridge_alias = naming.attributes_table, "at"
        if base_alias == "a" and bridge_table == naming.attributes_table:
            # Counting over the attributes table itself: no bridge needed.
            bridge_alias = base_alias
        elif bridge_table not in bridged:
            joins += (
                f" JOIN {quote_identifier(bridge_table)} {bridge_alias} "
                f"ON {base_alias}.\"row_id\" = {bridge_alias}.\"row_id\""
            )
            bridged[bridge_table] = bridge_alias
        else:
            bridge_alias = bridged[bridge_table]
        joins += (
            f" JOIN {dim} {dim_alias} "
            f"ON {bridge_alias}.{id_column} = {dim_alias}.{id_column}"
        )
        predicates.append(
            f"{dim_alias}.{quote_identifier(column)} = {quote_string(value)}"
        )
    return joins, predicates


def _where(predicates: list[str]) -> str:
    if not predicates:
        return ""
    return " WHERE " + " AND ".join(predicates)
