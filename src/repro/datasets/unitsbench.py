"""Unit-conversion benchmark (paper Section 7.3.1, Figure 6).

20 claims over 8 Wikipedia-like articles, in two parallel variants:

* **aligned** — claim units match the data units;
* **converted** — the claim states the value in a different unit, so the
  correct translation must apply the conversion inside the query.

Both variants draw from identically seeded generators over identical
databases, so each document's claim set is parallel and the per-document
ΔF1 of Figure 6 is a like-for-like comparison.
"""

from __future__ import annotations

import random

from repro.core.claims import Document
from repro.llm.world import ClaimWorld

from .base import DatasetBundle
from .claimgen import ClaimGenerator, GenerationSettings
from .tablegen import generate_database
from .themes import (
    ALCOHOL_CONSUMPTION,
    CLIMATE,
    NUTRITION,
    Theme,
    WORLD_HERITAGE,
)

KIND_WEIGHTS = {
    "lookup": 0.5,
    "avg": 0.2,
    "max": 0.15,
    "min": 0.15,
}

DOCUMENT_COUNT = 8
TOTAL_CLAIMS = 20
INCORRECT_RATE = 0.5

_THEME_CYCLE: tuple[Theme, ...] = (
    CLIMATE, ALCOHOL_CONSUMPTION, WORLD_HERITAGE, NUTRITION,
)


def build_units_benchmark(seed: int = 43) -> dict[str, DatasetBundle]:
    """Build the aligned and converted unit-benchmark variants."""
    bundles: dict[str, DatasetBundle] = {}
    for variant, convert in (("aligned", False), ("converted", True)):
        world = ClaimWorld()
        documents: list[Document] = []
        settings = GenerationSettings(
            kind_weights=KIND_WEIGHTS,
            incorrect_rate=INCORRECT_RATE,
            convert_units=convert,
            restrict_convertible=True,
            # Small, clean benchmark (the paper reports ~95% F1 aligned).
            hard_fraction=0.0,
            misread_fraction=0.05,
        )
        claim_counts = _claim_counts()
        for index in range(DOCUMENT_COUNT):
            theme = _THEME_CYCLE[index % len(_THEME_CYCLE)]
            doc_rng = random.Random(f"{seed}/{index}")
            doc_id = f"units{index:02d}_{variant}"
            database = generate_database(theme, doc_rng, name=doc_id)
            generator = ClaimGenerator(theme, database, world, doc_rng, doc_id)
            claims = []
            for claim_index in range(claim_counts[index]):
                # Re-seed per claim so the aligned and converted variants
                # draw identical templates/labels even though value
                # formatting consumes different amounts of randomness.
                generator.rng = random.Random(
                    f"{seed}/{index}/{claim_index}"
                )
                claims.append(generator.generate(settings).claim)
            for claim in claims:
                claim.metadata["domain"] = "units"
                claim.metadata["variant"] = variant
                claim.metadata["pair_doc"] = f"units{index:02d}"
            documents.append(
                Document(
                    doc_id=doc_id,
                    claims=claims,
                    data=database,
                    domain="units",
                    title=f"Units benchmark doc {index} ({variant})",
                )
            )
        bundles[variant] = DatasetBundle(
            name=f"units_{variant}",
            documents=documents,
            world=world,
            description=(
                f"Unit-conversion benchmark ({variant}): {TOTAL_CLAIMS} "
                f"claims over {DOCUMENT_COUNT} articles"
            ),
        )
    return bundles


def _claim_counts() -> list[int]:
    base, remainder = divmod(TOTAL_CLAIMS, DOCUMENT_COUNT)
    counts = [base] * DOCUMENT_COUNT
    for index in range(remainder):
        counts[index] += 1
    return counts
