"""WikiText-style benchmark generator (paper Section 7.1).

50 *textual* claims over 14 Wikipedia-like articles: the claimed value is
a string (an entity, a category) rather than a number, exercising the
embedding-similarity path of CorrectQuery/CorrectClaim. Query shapes match
Table 3's WikiText row: occasional GROUP BY (0.22/query), sub-queries via
superlatives, multi-column queries.
"""

from __future__ import annotations

import random

from repro.core.claims import Document
from repro.llm.world import ClaimWorld

from .base import DatasetBundle
from .claimgen import ClaimGenerator, GenerationSettings
from .tablegen import generate_database
from .themes import ALL_THEMES

KIND_WEIGHTS = {
    "lookup_text": 0.33,
    "superlative_text": 0.45,
    "group_leader_text": 0.22,
}

DOCUMENT_COUNT = 14
TOTAL_CLAIMS = 50
INCORRECT_RATE = 0.20

#: Textual claims are harder to translate than numeric lookups (the model
#: must realise the masked value is an entity); shift difficulty up.
DIFFICULTY_SHIFT = 0.05


def build_wikitext(
    seed: int = 23,
    document_count: int = DOCUMENT_COUNT,
    total_claims: int = TOTAL_CLAIMS,
    incorrect_rate: float = INCORRECT_RATE,
) -> DatasetBundle:
    """Generate the WikiText-style benchmark of textual claims."""
    rng = random.Random(seed)
    world = ClaimWorld()
    documents: list[Document] = []
    claim_counts = _spread(total_claims, document_count, rng)
    settings = GenerationSettings(
        kind_weights=KIND_WEIGHTS,
        incorrect_rate=incorrect_rate,
        difficulty_shift=DIFFICULTY_SHIFT,
        hard_fraction=0.08,
        misread_fraction=0.18,
        # Prose refers to entities by abbreviations and partial names far
        # more often than numeric claims misstate digits.
        textual_variant_prob=0.8,
    )
    for index in range(document_count):
        theme = rng.choice(ALL_THEMES)
        doc_id = f"wiki{index:02d}"
        database = generate_database(theme, rng, name=doc_id)
        generator = ClaimGenerator(theme, database, world, rng, doc_id)
        claims = [
            generator.generate(settings).claim
            for _ in range(claim_counts[index])
        ]
        for claim in claims:
            claim.metadata["domain"] = "wikitext"
        documents.append(
            Document(
                doc_id=doc_id,
                claims=claims,
                data=database,
                domain="wikitext",
                title=f"Wikipedia article {index} ({theme.key})",
            )
        )
    return DatasetBundle(
        name="wikitext",
        documents=documents,
        world=world,
        description=(
            "WikiText-style: 50 textual claims over 14 Wikipedia-like "
            "articles"
        ),
    )


def _spread(total: int, buckets: int, rng: random.Random) -> list[int]:
    base, remainder = divmod(total, buckets)
    counts = [base] * buckets
    for position in rng.sample(range(buckets), remainder):
        counts[position] += 1
    return counts
