"""Common container for generated benchmark datasets."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.claims import Claim, Document
from repro.llm.world import ClaimWorld


@dataclass
class DatasetBundle:
    """A generated benchmark: documents plus the simulated-LLM world.

    The world is part of the LLM substitute, not of the data: experiment
    harnesses hand it to :class:`~repro.llm.simulated.SimulatedLLM`
    instances, never to CEDAR itself.
    """

    name: str
    documents: list[Document]
    world: ClaimWorld
    description: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def claims(self) -> list[Claim]:
        """All claims across all documents, in document order."""
        return [c for d in self.documents for c in d.claims]

    @property
    def claim_count(self) -> int:
        return len(self.claims)

    @property
    def incorrect_count(self) -> int:
        return sum(
            1 for c in self.claims if not c.metadata.get("label_correct", True)
        )

    def documents_by_domain(self) -> dict[str, list[Document]]:
        """Group documents by their domain tag (538, nytimes, …)."""
        grouped: dict[str, list[Document]] = {}
        for document in self.documents:
            grouped.setdefault(document.domain, []).append(document)
        return grouped

    def __repr__(self) -> str:
        return (
            f"DatasetBundle({self.name!r}, {len(self.documents)} docs, "
            f"{self.claim_count} claims, {self.incorrect_count} incorrect)"
        )
