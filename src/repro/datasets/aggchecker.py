"""AggChecker-style benchmark generator (paper Section 7.1).

The published AggChecker dataset [14] holds 56 data summaries with 392
numerical claims from newspapers (538, NYTimes), Stack Overflow developer
surveys, and Wikipedia articles. This generator reproduces those shapes:
56 documents across the same four domains, 392 numeric claims, a mix of
lookup/aggregate/percentage/sub-query templates matching the query
complexity statistics the paper reports in Table 3.
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.claims import Document
from repro.llm.world import ClaimWorld

from .base import DatasetBundle
from .claimgen import ClaimGenerator, GenerationSettings
from .tablegen import generate_database
from .themes import AGGCHECKER_THEMES

#: Claim-template mix tuned to Table 3's AggChecker row (aggregates on
#: most claims, sub-queries on roughly half via percent/superlative).
KIND_WEIGHTS = {
    "lookup": 0.26,
    "count": 0.17,
    "sum": 0.08,
    "avg": 0.12,
    "max": 0.08,
    "min": 0.05,
    "percent": 0.18,
    "superlative_numeric": 0.06,
}

DOCUMENT_COUNT = 56
TOTAL_CLAIMS = 392
INCORRECT_RATE = 0.25

#: How the 56 documents are distributed over the four source domains.
_DOMAIN_SHARE = {"538": 18, "stackoverflow": 8, "nytimes": 14,
                 "wikipedia": 16}


def build_aggchecker(
    seed: int = 7,
    document_count: int = DOCUMENT_COUNT,
    total_claims: int = TOTAL_CLAIMS,
    incorrect_rate: float = INCORRECT_RATE,
) -> DatasetBundle:
    """Generate the AggChecker-style benchmark."""
    rng = random.Random(seed)
    world = ClaimWorld()
    documents: list[Document] = []
    domain_plan = _domain_plan(document_count)
    claim_counts = _spread(total_claims, document_count, rng)
    settings = GenerationSettings(
        kind_weights=KIND_WEIGHTS,
        incorrect_rate=incorrect_rate,
        hard_fraction=0.15,
        misread_fraction=0.20,
    )
    for index, domain in enumerate(domain_plan):
        # Real AggChecker tables are large (surveys run to tens of
        # thousands of rows); inflate the named vocabulary with anonymous
        # filler rows so flattening baselines face realistic table sizes.
        theme = dataclasses.replace(
            rng.choice(AGGCHECKER_THEMES[domain]),
            filler_row_range=(60, 240),
        )
        doc_id = f"agg{index:02d}_{domain}"
        database = generate_database(theme, rng, name=doc_id)
        generator = ClaimGenerator(theme, database, world, rng, doc_id)
        claims = [
            generator.generate(settings).claim
            for _ in range(claim_counts[index])
        ]
        for claim in claims:
            claim.metadata["domain"] = domain
        documents.append(
            Document(
                doc_id=doc_id,
                claims=claims,
                data=database,
                domain=domain,
                title=f"{theme.key} summary ({domain})",
            )
        )
    return DatasetBundle(
        name="aggchecker",
        documents=documents,
        world=world,
        description=(
            "AggChecker-style: 56 documents, 392 numeric claims over "
            "newspaper/survey/Wikipedia-like single tables"
        ),
    )


def _domain_plan(document_count: int) -> list[str]:
    plan: list[str] = []
    for domain, share in _DOMAIN_SHARE.items():
        plan.extend([domain] * share)
    # Adjust to the requested count (pad with wikipedia, trim from the end).
    while len(plan) < document_count:
        plan.append("wikipedia")
    return plan[:document_count]


def _spread(total: int, buckets: int, rng: random.Random) -> list[int]:
    """Distribute ``total`` claims over ``buckets`` docs, ≥2 per doc."""
    if total < 2 * buckets:
        raise ValueError("too few claims for the document count")
    counts = [2] * buckets
    for _ in range(total - 2 * buckets):
        counts[rng.randrange(buckets)] += 1
    return counts
