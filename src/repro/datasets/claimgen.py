"""Claim generation: sentences, ground-truth SQL, labels, and LLM knowledge.

Each generated claim is built *backwards from a query*: a query recipe is
drawn (lookup, count, aggregate, percentage, superlative, …), instantiated
against the actual table contents, executed to obtain the true value, and
then rendered as a fluent English sentence claiming either the true value
(correct claim) or a perturbed one (incorrect claim — perturbations stay
in the same order of magnitude, matching the finding [17] that wrong
numeric claims are close to the truth).

Alongside the :class:`~repro.core.claims.Claim`, the generator registers a
:class:`~repro.llm.world.ClaimKnowledge` record in the dataset's
:class:`~repro.llm.world.ClaimWorld` so the simulated LLM can "understand"
the claim. The structured :class:`QueryRecipe` is stored in the claim's
metadata so JoinBench can mechanically rebuild the query over a normalised
schema.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.core.claims import (
    Claim,
    Span,
    numeric_values_match,
    parse_claim_value,
    same_order_of_magnitude,
)
from repro.core.masking import mask_sentence
from repro.embeddings import text_similarity
from repro.llm.world import ClaimKnowledge, ClaimWorld, LookupTrap
from repro.sqlengine import Database, engine_for
from repro.sqlengine.ast_nodes import quote_identifier, quote_string
from repro.sqlengine.errors import SqlError

from .tablegen import vocab_entry_for
from .themes import NumericColumn, Theme
from .units import UnitConversion, conversion_for

#: Sentinel marking the claim-value position while rendering templates.
_VALUE_SENTINEL = "__VALUE__"

#: Base difficulty per template kind; see the behaviour model in
#: repro.llm.simulated for how difficulty maps to success probability.
BASE_DIFFICULTY = {
    "lookup": 0.12,
    "lookup_text": 0.18,
    "count": 0.18,
    "max": 0.28,
    "min": 0.28,
    "sum": 0.34,
    "avg": 0.34,
    "superlative_numeric": 0.42,
    "superlative_text": 0.46,
    "group_leader_text": 0.52,
    "percent": 0.50,
}

_OPENERS = (
    "According to the data,",
    "The records show that",
    "The figures indicate that",
    "Based on the latest release,",
    "The dataset reveals that",
    "Per the official tally,",
    "",
)

_CLOSERS = (
    "Analysts continue to monitor these figures closely.",
    "The numbers are updated with every reporting cycle.",
    "Experts consider the trend noteworthy.",
    "Observers expect the picture to shift in coming years.",
    "The statistic has drawn considerable attention.",
)


@dataclass(frozen=True)
class QueryRecipe:
    """Machine-readable description of a claim's ground-truth query."""

    kind: str
    value_column: str | None = None
    aggregate: str | None = None
    filters: tuple[tuple[str, str], ...] = ()
    numeric_filter: tuple[str, str, float] | None = None
    inner_aggregate: tuple[str, str] | None = None  # (agg, column)
    entity_column: str | None = None


@dataclass
class GeneratedClaim:
    """A claim together with its registered LLM knowledge."""

    claim: Claim
    knowledge: ClaimKnowledge


@dataclass
class GenerationSettings:
    """Knobs for one dataset's claim mix."""

    kind_weights: dict[str, float]
    incorrect_rate: float = 0.25
    convert_units: bool = False
    restrict_convertible: bool = False
    difficulty_shift: float = 0.0
    #: Fraction of claims whose phrasing is genuinely ambiguous or
    #: under-specified — real-world documents always contain some. These
    #: draw difficulty from the high tail and often defeat every
    #: verification method, producing the fallback verdicts behind the
    #: paper's sub-100% precision.
    hard_fraction: float = 0.10
    #: Fraction of claims that carry a *tempting misreading* — a sibling
    #: column or group whose phrasing also fits the claim. Models latch
    #: onto it across retries (see ClaimKnowledge.misread_sql).
    misread_fraction: float = 0.10
    #: For *correct textual* claims: probability that the claim phrases
    #: the value differently from how the data stores it (abbreviation,
    #: partial name). The claim is factually right, but no query result
    #: can match it at the 0.8 similarity bar — the surface mismatches
    #: behind the paper's low precision on textual claims (WikiText).
    textual_variant_prob: float = 0.0
    max_attempts: int = 80


class ClaimGenerator:
    """Generates claims for one document (one theme + one database)."""

    def __init__(
        self,
        theme: Theme,
        database: Database,
        world: ClaimWorld,
        rng: random.Random,
        doc_id: str,
    ) -> None:
        self.theme = theme
        self.database = database
        self.world = world
        self.rng = rng
        self.doc_id = doc_id
        self._engine = engine_for(database)
        self._table = database.table(theme.table_name)
        self._claim_index = 0
        self._pending_surface_variant = False

    # -- public API ----------------------------------------------------------

    def generate(self, settings: GenerationSettings) -> GeneratedClaim:
        """Generate one claim, retrying until all integrity checks pass."""
        last_error: Exception | None = None
        for _ in range(settings.max_attempts):
            try:
                generated = self._attempt(settings)
            except _RetryGeneration as error:
                last_error = error
                continue
            self.world.register(generated.knowledge)
            self._claim_index += 1
            return generated
        raise RuntimeError(
            f"could not generate a claim for {self.doc_id} after "
            f"{settings.max_attempts} attempts: {last_error}"
        )

    # -- single attempt --------------------------------------------------------

    def _attempt(self, settings: GenerationSettings) -> GeneratedClaim:
        rng = self.rng
        self._pending_surface_variant = False
        kind = _weighted_kind(settings.kind_weights, rng)
        recipe, conversion = self._draw_recipe(kind, settings)
        reference_sql = build_sql(
            recipe, self.theme.table_name, conversion
        )
        true_value = self._execute(reference_sql)
        if true_value is None:
            raise _RetryGeneration("query returned NULL")
        label_correct = rng.random() >= settings.incorrect_rate
        claim_type = "text" if kind.endswith("_text") else "numeric"
        if claim_type == "numeric":
            value_text = self._numeric_value_text(
                kind, recipe, true_value, label_correct
            )
        else:
            value_text = self._text_value_text(
                recipe, str(true_value), label_correct, settings
            )
        sentence, span = self._render_sentence(
            kind, recipe, value_text, conversion
        )
        claim_id = f"{self.doc_id}/c{self._claim_index}"
        masked = mask_sentence(sentence, span.start, span.end)
        if self.world.has_sentence(masked) or self.world.has_sentence(sentence):
            raise _RetryGeneration("sentence collision")
        context = self._render_context(sentence)
        claim = Claim(
            sentence=sentence,
            span=span,
            context=context,
            claim_id=claim_id,
            metadata={
                "label_correct": label_correct,
                "kind": kind,
                "recipe": recipe,
                "reference_sql": reference_sql,
                "theme": self.theme.key,
                "surface_variant": self._pending_surface_variant,
            },
        )
        knowledge = self._build_knowledge(
            claim, masked, reference_sql, recipe, kind, claim_type,
            conversion, settings,
        )
        return GeneratedClaim(claim, knowledge)

    # -- recipe drawing --------------------------------------------------------

    def _draw_recipe(
        self, kind: str, settings: GenerationSettings
    ) -> tuple[QueryRecipe, UnitConversion | None]:
        rng = self.rng
        theme = self.theme
        entity = theme.entity_column.name
        conversion: UnitConversion | None = None
        numeric = self._pick_numeric(settings)
        if settings.convert_units and numeric.unit_kind:
            conversion = conversion_for(numeric.unit_kind)
        if kind == "lookup":
            row_value = self._pick_entity_value()
            recipe = QueryRecipe(
                kind, value_column=numeric.name,
                filters=((entity, row_value),), entity_column=entity,
            )
        elif kind == "lookup_text":
            row_value = self._pick_entity_value()
            category = rng.choice(theme.extra_categories)
            recipe = QueryRecipe(
                kind, value_column=category.name,
                filters=((entity, row_value),), entity_column=entity,
            )
        elif kind == "count":
            recipe = QueryRecipe(
                kind, value_column=entity, aggregate="COUNT",
                filters=self._category_filter(), entity_column=entity,
            )
            if rng.random() < 0.35:
                threshold = self._numeric_threshold(numeric)
                recipe = replace(
                    recipe, filters=(), numeric_filter=threshold
                )
        elif kind in ("sum", "avg", "max", "min"):
            filters = self._category_filter() if rng.random() < 0.4 else ()
            recipe = QueryRecipe(
                kind, value_column=numeric.name, aggregate=kind.upper(),
                filters=filters, entity_column=entity,
            )
        elif kind == "percent":
            recipe = QueryRecipe(
                kind, value_column=entity, aggregate="COUNT",
                filters=self._category_filter(), entity_column=entity,
            )
        elif kind == "superlative_numeric":
            other = self._pick_numeric(settings, exclude=numeric.name)
            recipe = QueryRecipe(
                kind, value_column=numeric.name,
                inner_aggregate=("MAX", other.name), entity_column=entity,
            )
            self._require_unique_extreme("MAX", other.name)
        elif kind == "superlative_text":
            agg = rng.choice(("MAX", "MIN"))
            recipe = QueryRecipe(
                kind, value_column=entity,
                inner_aggregate=(agg, numeric.name), entity_column=entity,
            )
            self._require_unique_extreme(agg, numeric.name)
        elif kind == "group_leader_text":
            category = rng.choice(theme.extra_categories)
            recipe = QueryRecipe(
                kind, value_column=category.name,
                inner_aggregate=("SUM", numeric.name), entity_column=entity,
            )
        else:
            raise ValueError(f"unknown claim kind {kind!r}")
        return recipe, conversion

    def _pick_numeric(
        self, settings: GenerationSettings, exclude: str | None = None
    ) -> NumericColumn:
        candidates = [
            c for c in self.theme.numeric_columns if c.name != exclude
        ]
        if settings.convert_units or settings.restrict_convertible:
            convertible = [c for c in candidates if c.unit_kind]
            if convertible:
                candidates = convertible
        return self.rng.choice(candidates)

    def _pick_entity_value(self) -> str:
        values = self._table.unique_column_values(
            self.theme.entity_column.name
        )
        # Filler rows (appended beyond the named vocabulary) are part of
        # the data but never the subject of a claim.
        named = {e.stored for e in self.theme.entity_column.vocabulary}
        candidates = [v for v in values if str(v) in named]
        if not candidates:
            raise _RetryGeneration("no named entities in table")
        return str(self.rng.choice(candidates))

    def _category_filter(self) -> tuple[tuple[str, str], ...]:
        category = self.rng.choice(self.theme.extra_categories)
        values = self._table.unique_column_values(category.name)
        if not values:
            raise _RetryGeneration("empty category column")
        return ((category.name, str(self.rng.choice(values))),)

    def _numeric_threshold(
        self, numeric: NumericColumn
    ) -> tuple[str, str, float]:
        values = [
            v for v in self._table.column_values(numeric.name)
            if v is not None
        ]
        pivot = self.rng.choice(values)
        operator = self.rng.choice((">", "<"))
        return (numeric.name, operator, float(pivot))

    def _require_unique_extreme(self, agg: str, column: str) -> None:
        values = [
            v for v in self._table.column_values(column) if v is not None
        ]
        extreme = max(values) if agg == "MAX" else min(values)
        if sum(1 for v in values if v == extreme) != 1:
            raise _RetryGeneration(f"tied {agg} on {column}")

    # -- values ------------------------------------------------------------------

    def _execute(self, sql: str):
        try:
            return self._engine.execute(sql).first_cell()
        except SqlError as error:
            raise _RetryGeneration(f"reference query failed: {error}") from None

    def _numeric_value_text(
        self, kind: str, recipe: QueryRecipe, true_value, label_correct: bool
    ) -> str:
        decimals = self._display_decimals(kind, recipe)
        true_text = _format_number(float(true_value), decimals)
        if label_correct:
            return true_text
        for _ in range(30):
            perturbed = _perturb(float(true_value), self.rng)
            text = _format_number(perturbed, decimals)
            parsed = parse_claim_value(text)
            if not isinstance(parsed, (int, float)):
                continue
            if numeric_values_match(float(true_value), text):
                continue  # perturbation rounded back to the truth
            if not same_order_of_magnitude(float(true_value), float(parsed)):
                continue  # too far off; wrong claims stay close [17]
            return text
        raise _RetryGeneration("could not perturb numeric value")

    def _display_decimals(self, kind: str, recipe: QueryRecipe) -> int:
        if kind in ("count", "sum", "percent"):
            return 1 if kind == "percent" else 0
        if kind == "avg":
            return 1
        column = self._numeric_column(recipe.value_column)
        return column.decimals if column is not None else 0

    def _numeric_column(self, name: str | None) -> NumericColumn | None:
        for column in self.theme.numeric_columns:
            if column.name == name:
                return column
        return None

    def _text_value_text(
        self,
        recipe: QueryRecipe,
        true_value: str,
        label_correct: bool,
        settings: GenerationSettings,
    ) -> str:
        if label_correct:
            if self.rng.random() < settings.textual_variant_prob:
                variant = self._surface_variant(recipe, true_value)
                if variant is not None:
                    self._pending_surface_variant = True
                    return variant
            return true_value
        values = [
            str(v)
            for v in self._table.unique_column_values(recipe.value_column)
            if v is not None and str(v) != true_value
        ]
        self.rng.shuffle(values)
        for candidate in values:
            if text_similarity(candidate, true_value) < 0.55:
                return candidate
        raise _RetryGeneration("no dissimilar wrong value available")

    def _surface_variant(
        self, recipe: QueryRecipe, true_value: str
    ) -> str | None:
        """A different surface form of the same entity, if one exists."""
        try:
            entry = vocab_entry_for(self.theme, recipe.value_column,
                                    true_value)
        except KeyError:
            entry = None
        if entry is not None and entry.is_trap:
            return entry.shown
        words = true_value.split()
        if len(words) >= 2:
            # Refer to the entity by its distinctive last word ("Hamilton"
            # for "Lewis Hamilton").
            return words[-1]
        return None

    # -- rendering ---------------------------------------------------------------

    def _render_sentence(
        self,
        kind: str,
        recipe: QueryRecipe,
        value_text: str,
        conversion: UnitConversion | None,
    ) -> tuple[str, Span]:
        template = self._sentence_template(kind, recipe, conversion)
        opener = self.rng.choice(_OPENERS)
        sentence = f"{opener} {template}".strip()
        return _place_value(sentence, value_text)

    def _sentence_template(
        self,
        kind: str,
        recipe: QueryRecipe,
        conversion: UnitConversion | None,
    ) -> str:
        theme = self.theme
        measure = self._measure_phrase(recipe.value_column, conversion)
        if kind == "lookup":
            entity = self._shown(recipe.filters[0])
            return f"{entity} recorded {_VALUE_SENTINEL} {measure}."
        if kind == "lookup_text":
            entity = self._shown(recipe.filters[0])
            noun = self._category_noun(recipe.value_column)
            return (
                f"the {noun} listed for {entity} is {_VALUE_SENTINEL}."
            )
        if kind == "count":
            if recipe.numeric_filter is not None:
                column, operator, threshold = recipe.numeric_filter
                direction = "more" if operator == ">" else "fewer"
                filter_measure = self._measure_phrase(column, None)
                return (
                    f"{_VALUE_SENTINEL} of the {theme.subject} posted "
                    f"{direction} than {_format_number(threshold, 6).rstrip('0').rstrip('.')} "
                    f"{filter_measure}."
                )
            noun = self._category_noun(recipe.filters[0][0])
            shown = self._shown(recipe.filters[0])
            return (
                f"{_VALUE_SENTINEL} of the {theme.subject} fall under the "
                f"{shown} {noun}."
            )
        if kind == "sum":
            scope = self._scope_phrase(recipe.filters)
            return (
                f"the combined total of {measure} across {scope} reaches "
                f"{_VALUE_SENTINEL}."
            )
        if kind == "avg":
            scope = self._scope_phrase(recipe.filters)
            return (
                f"on average, {scope} posted {_VALUE_SENTINEL} {measure}."
            )
        if kind in ("max", "min"):
            extreme = "highest" if kind == "max" else "lowest"
            scope = self._scope_phrase(recipe.filters)
            return (
                f"the {extreme} number of {measure} among {scope} stands at "
                f"{_VALUE_SENTINEL}."
            )
        if kind == "percent":
            noun = self._category_noun(recipe.filters[0][0])
            shown = self._shown(recipe.filters[0])
            return (
                f"about {_VALUE_SENTINEL} percent of the {theme.subject} "
                f"belong to the {shown} {noun}."
            )
        if kind == "superlative_numeric":
            _, inner_column = recipe.inner_aggregate
            inner_measure = self._measure_phrase(inner_column, None)
            return (
                f"the {theme.entity_column.noun} with the most "
                f"{inner_measure} recorded {_VALUE_SENTINEL} {measure}."
            )
        if kind == "superlative_text":
            agg, inner_column = recipe.inner_aggregate
            inner_measure = self._measure_phrase(inner_column, None)
            extreme = "most" if agg == "MAX" else "fewest"
            return (
                f"{_VALUE_SENTINEL} leads all {theme.subject} with the "
                f"{extreme} {inner_measure}."
            )
        if kind == "group_leader_text":
            _, inner_column = recipe.inner_aggregate
            inner_measure = self._measure_phrase(inner_column, None)
            noun = self._category_noun(recipe.value_column)
            return (
                f"the {noun} with the highest combined {inner_measure} is "
                f"{_VALUE_SENTINEL}."
            )
        raise ValueError(f"unknown claim kind {kind!r}")

    def _measure_phrase(
        self, column_name: str | None, conversion: UnitConversion | None
    ) -> str:
        column = self._numeric_column(column_name)
        if column is None:
            return "entries"
        measure = column.measure
        if conversion is not None and column.unit_kind == conversion.kind:
            measure = measure.replace(
                conversion.source_unit, conversion.target_unit
            )
        return measure

    def _category_noun(self, column_name: str | None) -> str:
        for category in self.theme.category_columns:
            if category.name == column_name:
                return category.noun
        return "category"

    def _shown(self, filter_pair: tuple[str, str]) -> str:
        column, stored = filter_pair
        try:
            return vocab_entry_for(self.theme, column, stored).shown
        except KeyError:
            return stored

    def _scope_phrase(self, filters: tuple[tuple[str, str], ...]) -> str:
        if not filters:
            return f"all {self.theme.subject}"
        column, _ = filters[0]
        noun = self._category_noun(column)
        shown = self._shown(filters[0])
        return f"the {self.theme.subject} in the {shown} {noun}"

    def _render_context(self, sentence: str) -> str:
        closer = self.rng.choice(_CLOSERS)
        return f"{self.theme.narrative} {sentence} {closer}"

    # -- knowledge -----------------------------------------------------------------

    def _build_knowledge(
        self,
        claim: Claim,
        masked_sentence: str,
        reference_sql: str,
        recipe: QueryRecipe,
        kind: str,
        claim_type: str,
        conversion: UnitConversion | None,
        settings: GenerationSettings,
    ) -> ClaimKnowledge:
        trap = self._find_trap(recipe, claim.sentence)
        misread = self._misread_sql(recipe, reference_sql, settings)
        decomposition = self._decomposition(recipe, conversion)
        difficulty, ambiguous = self._difficulty(kind, recipe, settings)
        naive_sql = None
        unit_factor = 1.0
        if conversion is not None:
            naive_sql = build_sql(recipe, self.theme.table_name, None)
            unit_factor = conversion.factor_for_model
        return ClaimKnowledge(
            claim_id=claim.claim_id,
            masked_sentence=masked_sentence,
            unmasked_sentence=claim.sentence,
            reference_sql=reference_sql,
            claim_value_text=claim.value_text,
            claim_type=claim_type,
            difficulty=difficulty,
            table_name=self.theme.table_name,
            columns=tuple(self.theme.column_names),
            lookup_trap=trap,
            misread_sql=misread,
            ambiguous=ambiguous,
            decomposition=decomposition,
            unit_factor=unit_factor,
            naive_unit_sql=naive_sql,
        )

    def _misread_sql(
        self,
        recipe: QueryRecipe,
        reference_sql: str,
        settings: GenerationSettings,
    ) -> str | None:
        """Draw the claim's tempting misinterpretation, if it has one."""
        if self.rng.random() >= settings.misread_fraction:
            return None
        if recipe.kind in ("percent", "count") and recipe.filters:
            column, value = recipe.filters[0]
            others = [
                str(v)
                for v in self._table.unique_column_values(column)
                if str(v) != value
            ]
            if not others:
                return None
            return reference_sql.replace(
                quote_string(value), quote_string(self.rng.choice(others)), 1
            )
        if recipe.value_column and self._numeric_column(recipe.value_column):
            siblings = [
                c.name
                for c in self.theme.numeric_columns
                if c.name != recipe.value_column
            ]
            if not siblings:
                return None
            return reference_sql.replace(
                quote_identifier(recipe.value_column),
                quote_identifier(self.rng.choice(siblings)),
                1,
            )
        if recipe.kind == "lookup_text":
            others = [
                c.name
                for c in self.theme.extra_categories
                if c.name != recipe.value_column
            ]
            if not others:
                return None
            return reference_sql.replace(
                quote_identifier(recipe.value_column),
                quote_identifier(self.rng.choice(others)),
                1,
            )
        return None

    def _find_trap(
        self, recipe: QueryRecipe, sentence: str
    ) -> LookupTrap | None:
        for column, stored in recipe.filters:
            try:
                entry = vocab_entry_for(self.theme, column, stored)
            except KeyError:
                continue
            if entry.is_trap and entry.shown in sentence:
                return LookupTrap(
                    column=column,
                    wrong_constant=entry.shown,
                    right_constant=stored,
                )
        return None

    def _decomposition(
        self, recipe: QueryRecipe, conversion: UnitConversion | None
    ) -> tuple[str, ...]:
        if recipe.inner_aggregate is None or recipe.kind == "group_leader_text":
            return ()
        agg, column = recipe.inner_aggregate
        table = quote_identifier(self.theme.table_name)
        inner = f"SELECT {agg}({quote_identifier(column)}) FROM {table}"
        inner_value = self._execute(inner)
        value_expression = quote_identifier(recipe.value_column)
        if conversion is not None:
            value_expression = conversion.wrap_sql(value_expression)
        outer = (
            f"SELECT {value_expression} FROM {table} "
            f"WHERE {quote_identifier(column)} = "
            f"{_render_constant(inner_value)}"
        )
        return (inner, outer)

    def _difficulty(
        self, kind: str, recipe: QueryRecipe, settings: GenerationSettings
    ) -> tuple[float, bool]:
        if self.rng.random() < settings.hard_fraction:
            # Ambiguously phrased claim: hard for every method.
            return self.rng.uniform(0.72, 0.95), True
        difficulty = BASE_DIFFICULTY[kind]
        difficulty += 0.06 * max(0, len(recipe.filters) - 1)
        difficulty += self.rng.uniform(-0.08, 0.08)
        difficulty += settings.difficulty_shift
        return min(0.95, max(0.05, difficulty)), False


class _RetryGeneration(Exception):
    """Internal: the current attempt violated an integrity check."""


# -- SQL construction ----------------------------------------------------------


def build_sql(
    recipe: QueryRecipe,
    table_name: str,
    conversion: UnitConversion | None = None,
) -> str:
    """Render a recipe as SQL over a flat (single-table) schema."""
    table = quote_identifier(table_name)
    where = _where_clause(recipe)
    if recipe.kind == "percent":
        entity = quote_identifier(recipe.value_column)
        numerator = (
            f"SELECT COUNT({entity}) FROM {table}{where}"
        )
        denominator = f"SELECT COUNT({entity}) FROM {table}"
        return f"SELECT ({numerator}) * 100.0 / ({denominator})"
    if recipe.inner_aggregate is not None:
        agg, column = recipe.inner_aggregate
        inner_col = quote_identifier(column)
        if recipe.kind == "group_leader_text":
            group_col = quote_identifier(recipe.value_column)
            return (
                f"SELECT {group_col} FROM {table} GROUP BY {group_col} "
                f"ORDER BY {agg}({inner_col}) DESC LIMIT 1"
            )
        value = _value_expression(recipe, conversion)
        return (
            f"SELECT {value} FROM {table} WHERE {inner_col} = "
            f"(SELECT {agg}({inner_col}) FROM {table})"
        )
    value = _value_expression(recipe, conversion)
    return f"SELECT {value} FROM {table}{where}"


def _value_expression(
    recipe: QueryRecipe, conversion: UnitConversion | None
) -> str:
    column = quote_identifier(recipe.value_column)
    if recipe.aggregate:
        expression = f"{recipe.aggregate}({column})"
    else:
        expression = column
    if conversion is not None:
        expression = conversion.wrap_sql(expression)
    return expression


def _where_clause(recipe: QueryRecipe) -> str:
    predicates = [
        f"{quote_identifier(column)} = {quote_string(value)}"
        for column, value in recipe.filters
    ]
    if recipe.numeric_filter is not None:
        column, operator, threshold = recipe.numeric_filter
        predicates.append(
            f"{quote_identifier(column)} {operator} "
            f"{_render_constant(threshold)}"
        )
    if not predicates:
        return ""
    return " WHERE " + " AND ".join(predicates)


def _render_constant(value) -> str:
    if isinstance(value, str):
        return quote_string(value)
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


# -- helpers ---------------------------------------------------------------------


def _weighted_kind(weights: dict[str, float], rng: random.Random) -> str:
    total = sum(weights.values())
    draw = rng.random() * total
    cumulative = 0.0
    for kind, weight in weights.items():
        cumulative += weight
        if draw <= cumulative:
            return kind
    return next(reversed(weights))


def _format_number(value: float, decimals: int) -> str:
    if decimals == 0:
        return str(int(round(value)))
    return f"{value:.{decimals}f}"


def _perturb(value: float, rng: random.Random) -> float:
    if value == 0.0:
        return float(rng.randint(1, 3))
    if abs(value) < 10 and float(value).is_integer():
        delta = rng.choice((-2, -1, 1, 2))
        candidate = value + delta
        if candidate >= 0 or value < 0:
            return candidate
        return value + abs(delta)
    factor = rng.choice((rng.uniform(0.45, 0.85), rng.uniform(1.2, 2.2)))
    return value * factor


def _place_value(sentence: str, value_text: str) -> tuple[str, Span]:
    """Substitute the value sentinel and compute the claim span."""
    tokens = sentence.split()
    sentinel_index = None
    for index, token in enumerate(tokens):
        if _VALUE_SENTINEL in token:
            sentinel_index = index
            break
    if sentinel_index is None:
        raise ValueError(f"no value sentinel in {sentence!r}")
    value_tokens = value_text.split()
    host = tokens[sentinel_index]
    prefix, suffix = host.split(_VALUE_SENTINEL, 1)
    substituted = list(value_tokens)
    substituted[0] = prefix + substituted[0]
    substituted[-1] = substituted[-1] + suffix
    final_tokens = tokens[:sentinel_index] + substituted + tokens[sentinel_index + 1:]
    span = Span(sentinel_index, sentinel_index + len(value_tokens) - 1)
    return " ".join(final_tokens), span
