"""Unit conversions for the Section 7.3.1 benchmark.

Some claims state values in units different from the source data (feet vs
metres, Fahrenheit vs Celsius). A conversion is modelled as an affine map
``claim_value = scale * data_value + offset`` together with the SQL
expression wrapper the correct translation must apply.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class UnitConversion:
    """An affine unit conversion with its SQL rendering."""

    kind: str
    source_unit: str
    target_unit: str
    scale: float
    offset: float = 0.0

    def convert(self, value: float) -> float:
        """Map a data-unit value to the claim unit."""
        return self.scale * value + self.offset

    def wrap_sql(self, column_expression: str) -> str:
        """Wrap a SQL expression so it yields claim-unit values."""
        wrapped = f"({column_expression}) * {self.scale!r}"
        if self.offset:
            wrapped = f"({wrapped} + {self.offset!r})"
        return wrapped

    @property
    def factor_for_model(self) -> float:
        """Representative multiplicative factor for the simulated LLM.

        Used by the behaviour model to treat the conversion claim as
        requiring extra skill; affine conversions report their scale.
        """
        return self.scale


#: Conversions keyed by the ``unit_kind`` declared on numeric theme columns.
CONVERSIONS: dict[str, UnitConversion] = {
    "length_m": UnitConversion("length_m", "metres", "feet", 3.28084),
    "length_mm": UnitConversion("length_mm", "millimetres", "inches",
                                1.0 / 25.4),
    "mass_g": UnitConversion("mass_g", "grams", "ounces", 1.0 / 28.3495),
    "volume": UnitConversion("volume", "litres", "gallons", 1.0 / 3.78541),
    "temperature": UnitConversion("temperature", "degrees Celsius",
                                  "degrees Fahrenheit", 9.0 / 5.0, 32.0),
    "area": UnitConversion("area", "square kilometres", "square miles",
                           1.0 / 2.58999),
}


def conversion_for(unit_kind: str) -> UnitConversion:
    """Look up the conversion for a column's unit kind."""
    try:
        return CONVERSIONS[unit_kind]
    except KeyError:
        raise KeyError(
            f"no conversion for unit kind {unit_kind!r}; known kinds: "
            f"{', '.join(sorted(CONVERSIONS))}"
        ) from None
