"""Graceful-drain signal handling shared by the service and cluster CLIs.

``python -m repro.service`` and ``python -m repro.cluster`` (and each
cluster worker process) all want the same SIGTERM/SIGINT behaviour:

* the **first** signal starts a graceful drain — stop accepting, finish
  what was admitted, flush state — instead of killing mid-batch;
* a **second** signal falls back to the previous (usually default,
  i.e. kill) disposition, so a stuck drain can still be interrupted.

The callback runs inside the signal handler frame, so it must only do
cheap, thread-safe things: set events, start a thread, call
``loop.call_soon_threadsafe``. Only the main thread of the main
interpreter may install handlers (a CPython rule); callers embedding the
service elsewhere should wire their own shutdown path instead.
"""

from __future__ import annotations

import signal
from typing import Callable

#: The signals a process manager (or a Ctrl-C) sends to stop us.
DRAIN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


def install_drain_handlers(
    drain: Callable[[int], None],
    signals: tuple[signal.Signals, ...] = DRAIN_SIGNALS,
) -> dict[signal.Signals, object]:
    """Route the first of ``signals`` to ``drain(signum)``, once.

    The previous dispositions are restored *before* the callback runs,
    so the second signal of either kind behaves as it did before
    installation. Returns the replaced handlers, letting callers restore
    them early (tests do).
    """
    previous: dict[signal.Signals, object] = {}

    def handler(signum: int, frame: object) -> None:
        restore_handlers(previous)
        drain(signum)

    for signum in signals:
        previous[signum] = signal.signal(signum, handler)
    return previous


def restore_handlers(previous: dict[signal.Signals, object]) -> None:
    """Put back the dispositions replaced by :func:`install_drain_handlers`."""
    for signum, old in previous.items():
        try:
            signal.signal(signum, old)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            # Non-callable sentinel or not the main thread: leave as-is.
            pass
