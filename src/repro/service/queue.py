"""Bounded priority queue with admission control.

The service's front door is a queue that *refuses* work it cannot hold:
a full queue rejects the submission immediately with a structured
:class:`RejectionReason` instead of blocking the client or growing
without bound. Rejection is part of the API — callers (and the HTTP
layer's 429 responses) are expected to back off and resubmit.

Priorities are integers, lower is sooner; entries of equal priority
leave in FIFO order (a monotone sequence number breaks ties, so the heap
never compares the queued items themselves).
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
import time
from dataclasses import dataclass
from typing import Callable

#: Admission-rejection codes (the machine-readable half of the reason).
REASON_QUEUE_FULL = "queue_full"
REASON_CLIENT_LIMIT = "client_limit"
REASON_DRAINING = "draining"
REASON_CONFLICT = "conflict"

#: The rejection codes whose HTTP responses should carry a Retry-After
#: header: backlog (queue_full), fairness (client_limit), and shutdown
#: (draining) all clear with time; a ``conflict`` does not.
RETRYABLE_REASONS = frozenset(
    {REASON_QUEUE_FULL, REASON_CLIENT_LIMIT, REASON_DRAINING}
)


def retry_after_seconds(
    queue_depth: int,
    per_job_seconds: float = 0.25,
    floor: int = 1,
    ceiling: int = 60,
) -> int:
    """A Retry-After hint (whole seconds) derived from queue depth.

    The estimate is deliberately coarse — backlog times one nominal
    per-job drain cost, clamped to ``[floor, ceiling]`` — because its
    only job is to spread retries out proportionally to load. Both the
    single-process HTTP front end and the cluster router derive their
    429/503 ``Retry-After`` headers from it.
    """
    estimate = math.ceil((max(0, queue_depth) + 1) * per_job_seconds)
    return int(min(ceiling, max(floor, estimate)))


@dataclass(frozen=True)
class RejectionReason:
    """Why a submission was refused: a stable code plus a human message."""

    code: str
    message: str

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message}


class AdmissionError(RuntimeError):
    """Raised by ``submit``/``offer`` when admission control says no."""

    def __init__(self, reason: RejectionReason) -> None:
        super().__init__(f"{reason.code}: {reason.message}")
        self.reason = reason


class BoundedJobQueue:
    """A depth-bounded priority queue (thread-safe, non-blocking offers)."""

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self._heap: list[tuple[int, int, object]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()

    def offer(self, item: object, priority: int = 0) -> None:
        """Enqueue ``item`` or raise :class:`AdmissionError` when full."""
        with self._cond:
            if len(self._heap) >= self.max_depth:
                raise AdmissionError(RejectionReason(
                    REASON_QUEUE_FULL,
                    f"queue is at its depth limit ({self.max_depth}); "
                    "retry with backoff",
                ))
            heapq.heappush(self._heap, (priority, next(self._seq), item))
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> object | None:
        """Dequeue the best item, waiting up to ``timeout`` seconds.

        Returns None on timeout (``timeout=0`` polls without waiting;
        ``timeout=None`` waits indefinitely).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._heap:
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if not self._heap:
                            return None
            return heapq.heappop(self._heap)[2]

    def pop_matching(
        self, predicate: Callable[[object], bool], limit: int
    ) -> list[object]:
        """Pop up to ``limit`` queued items satisfying ``predicate``.

        Non-blocking; returns matches in priority order and leaves the
        rest of the queue untouched. This is the micro-batcher's coalesce
        step: having popped one job, it sweeps the queue for others with
        the same batch key.
        """
        if limit <= 0:
            return []
        taken: list[object] = []
        kept: list[tuple[int, int, object]] = []
        with self._cond:
            for entry in sorted(self._heap):
                if len(taken) < limit and predicate(entry[2]):
                    taken.append(entry[2])
                else:
                    kept.append(entry)
            heapq.heapify(kept)
            self._heap = kept
        return taken

    def remove(self, item: object) -> bool:
        """Remove a specific queued item (identity match); False if absent.

        Used for cancellation: a job still in the queue is simply pulled
        out, never reaching a dispatcher.
        """
        with self._cond:
            for index, entry in enumerate(self._heap):
                if entry[2] is item:
                    self._heap[index] = self._heap[-1]
                    self._heap.pop()
                    heapq.heapify(self._heap)
                    return True
            return False

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)
