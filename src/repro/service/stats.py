"""Service statistics: a small latency histogram and the /stats snapshot.

The histogram keeps geometric buckets instead of raw samples, so
recording is O(log buckets) with a bounded footprint no matter how many
jobs pass through — quantiles come back as the upper bound of the bucket
the quantile falls in, which is plenty for p50/p95 health reporting.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import asdict, dataclass


class LatencyHistogram:
    """Fixed geometric buckets over seconds; thread-safe.

    Defaults span 1 ms to ~2.3 h (24 buckets, factor 2). Values above the
    last bound land in an overflow bucket whose quantile reports the
    maximum value seen.
    """

    def __init__(
        self,
        first_bound: float = 0.001,
        factor: float = 2.0,
        buckets: int = 24,
    ) -> None:
        if first_bound <= 0 or factor <= 1 or buckets < 1:
            raise ValueError("invalid histogram shape")
        self._bounds = [first_bound * factor ** i for i in range(buckets)]
        self._counts = [0] * (buckets + 1)       # +1: overflow bucket
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        index = bisect.bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            self._max = max(self._max, seconds)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            cumulative = 0
            for index, count in enumerate(self._counts):
                cumulative += count
                if cumulative >= target and count:
                    if index >= len(self._bounds):   # overflow bucket
                        return self._max
                    return min(self._bounds[index], self._max)
            return self._max

    def snapshot(self) -> dict:
        """Summary stats plus the raw bucket layout.

        ``buckets`` exposes the geometric bounds and per-bucket counts
        (the final count is the overflow bucket, whose upper edge is the
        maximum value observed) so exporters — the Prometheus
        ``/metrics`` endpoint in particular — can render the full
        distribution instead of just two quantiles.
        """
        with self._lock:
            count, total, maximum = self._count, self._sum, self._max
            counts = list(self._counts)
        return {
            "count": count,
            "sum_seconds": round(total, 6),
            "mean_seconds": round(total / count, 6) if count else 0.0,
            "max_seconds": round(maximum, 6),
            "p50_seconds": round(self.quantile(0.5), 6),
            "p95_seconds": round(self.quantile(0.95), 6),
            "buckets": {"bounds": list(self._bounds), "counts": counts},
        }


@dataclass(frozen=True)
class ServiceStats:
    """One consistent-enough snapshot of a running service."""

    queue_depth: int
    running_jobs: int
    draining: bool
    jobs: dict          # submitted / completed / failed / cancelled / rejected
    batches: dict       # count / jobs / mean_size / max_size
    cache: dict | None  # CacheStats.to_dict(), None when caching is off
    sql: dict           # plan_cache / strategies / result_cache / executions
    ledger: dict        # entries / calls / cost_usd / tokens / retries
    latency: dict       # LatencyHistogram.snapshot()

    def to_dict(self) -> dict:
        return asdict(self)
