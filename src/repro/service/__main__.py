"""CLI entry point: ``python -m repro.service`` (or ``make serve``).

Starts the verification service behind the stdlib HTTP front end and
blocks until signalled. SIGTERM and SIGINT (Ctrl-C) both trigger a
graceful drain — the server stops accepting, every accepted job is
flushed, then the process exits; a second signal kills it the blunt
way. ``GET /readyz`` flips to 503 the moment the drain starts, so a
load balancer in front stops routing first.
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.obs.logging import FileSink, add_sink

from .http import ServiceApp, make_server
from .service import ServiceConfig, VerificationService
from .signals import install_drain_handlers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve CEDAR claim verification over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000,
                        help="0 picks a free port")
    parser.add_argument("--workers", type=int, default=4,
                        help="verifier threads per batch")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="bounded queue depth (admission limit)")
    parser.add_argument("--per-client", type=int, default=8,
                        help="in-flight job cap per client_id")
    parser.add_argument("--batch-window", type=float, default=0.05,
                        help="seconds to linger coalescing jobs")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="jobs coalesced into one batch")
    parser.add_argument("--cache-size", type=int, default=1024,
                        help="shared response cache entries (0 disables)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--log-file", default=None, metavar="PATH",
                        help="append structured ndjson logs to PATH")
    parser.add_argument("--verbose", action="store_true",
                        help="log HTTP requests")
    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.log_file:
        add_sink(FileSink(arguments.log_file))
    service = VerificationService(ServiceConfig(
        max_queue_depth=arguments.queue_depth,
        per_client_limit=arguments.per_client,
        max_batch_jobs=arguments.max_batch,
        batch_window=arguments.batch_window,
        workers=arguments.workers,
        cache_size=arguments.cache_size,
    )).start()
    app = ServiceApp(service, seed=arguments.seed)
    server = make_server(arguments.host, arguments.port, app,
                         verbose=arguments.verbose)
    host, port = server.server_address[:2]

    def begin_drain(signum: int) -> None:
        # Refuse new work immediately (readyz goes 503, submits get
        # `draining` + Retry-After), then stop the accept loop from a
        # side thread: BaseServer.shutdown() blocks until serve_forever
        # exits, so calling it in the handler frame would deadlock.
        service.begin_drain()
        threading.Thread(target=server.shutdown, daemon=True).start()

    install_drain_handlers(begin_drain)
    print(f"serving CEDAR verification on http://{host}:{port}  "
          "(POST /v1/verify, GET /v1/stats; SIGTERM/Ctrl-C drains and exits)")
    try:
        server.serve_forever()
    finally:
        print("draining accepted jobs …")
        server.server_close()
        service.shutdown(drain=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
