"""Embeddable verification service (queueing, batching, streaming).

The package turns the concurrent executor into a long-lived service:

* :class:`VerificationService` — bounded-queue admission control,
  cross-request micro-batching onto shared verifiers (one response
  cache and ledger for the whole service), streaming job events,
  cancellation, and drain-on-shutdown.
* :mod:`repro.service.http` — a stdlib ``http.server`` front end
  (``python -m repro.service``) exposing submit / events / stats.

Importing this package never imports the HTTP layer; embedders that
just want ``VerificationService`` pay for nothing else.
"""

from .events import (
    ClaimAccepted,
    ClaimVerdict,
    JobCancelled,
    JobDone,
    JobEvent,
    JobFailed,
    JobQueued,
    JobStarted,
    StageStarted,
    WorkerLost,
)
from .queue import (
    REASON_CLIENT_LIMIT,
    REASON_CONFLICT,
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    RETRYABLE_REASONS,
    AdmissionError,
    BoundedJobQueue,
    RejectionReason,
    retry_after_seconds,
)
from .signals import install_drain_handlers, restore_handlers
from .service import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobHandle,
    ServiceConfig,
    VerificationService,
    clone_document,
)
from .stats import LatencyHistogram, ServiceStats

__all__ = [
    "AdmissionError",
    "BoundedJobQueue",
    "CANCELLED",
    "COMPLETED",
    "ClaimAccepted",
    "ClaimVerdict",
    "FAILED",
    "Job",
    "JobCancelled",
    "JobDone",
    "JobEvent",
    "JobFailed",
    "JobHandle",
    "JobQueued",
    "JobStarted",
    "LatencyHistogram",
    "QUEUED",
    "REASON_CLIENT_LIMIT",
    "REASON_CONFLICT",
    "REASON_DRAINING",
    "REASON_QUEUE_FULL",
    "RETRYABLE_REASONS",
    "RUNNING",
    "RejectionReason",
    "ServiceConfig",
    "ServiceStats",
    "StageStarted",
    "VerificationService",
    "WorkerLost",
    "clone_document",
    "install_drain_handlers",
    "restore_handlers",
    "retry_after_seconds",
]
