"""Typed job-lifecycle events, serialisable to JSON lines.

Every accepted job exposes a stream of these events: claims accepted at
admission, stages starting, per-claim verdicts as they land, and exactly
one terminal event (done, failed, or cancelled). Callers consume them
through :meth:`~repro.service.service.JobHandle.events`; the HTTP front
end replays them as ``application/x-ndjson`` from
``GET /jobs/<id>/events``.

Events are frozen dataclasses — facts about the run, not mutable state —
and each carries its ``kind`` in the serialised form so a stream can be
parsed without knowing the Python types.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import ClassVar


def _now() -> float:
    return time.time()


class JobEvent:
    """Mixin shared by all event dataclasses (not itself a dataclass)."""

    #: Wire name of the event, written as ``"event"`` in the JSON form.
    kind: ClassVar[str] = "event"
    #: True for the events that end a job's stream.
    terminal: ClassVar[bool] = False

    def to_dict(self) -> dict:
        payload = asdict(self)  # type: ignore[call-overload]
        payload["event"] = self.kind
        return payload

    def to_json(self) -> str:
        """One JSON line (no trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True)


@dataclass(frozen=True)
class JobQueued(JobEvent):
    """The job passed admission control and entered the queue."""

    kind: ClassVar[str] = "job_queued"
    job_id: str
    priority: int = 0
    queue_depth: int = 0
    ts: float = field(default_factory=_now)


@dataclass(frozen=True)
class ClaimAccepted(JobEvent):
    """One claim of the job was admitted for verification."""

    kind: ClassVar[str] = "claim_accepted"
    job_id: str
    claim_id: str = ""
    sentence: str = ""
    ts: float = field(default_factory=_now)


@dataclass(frozen=True)
class JobStarted(JobEvent):
    """The job left the queue and its batch began executing."""

    kind: ClassVar[str] = "job_started"
    job_id: str
    batch_id: int = 0
    batch_jobs: int = 1          # jobs coalesced into the same batch
    ts: float = field(default_factory=_now)


@dataclass(frozen=True)
class StageStarted(JobEvent):
    """A schedule stage began work on one of the job's documents."""

    kind: ClassVar[str] = "stage_started"
    job_id: str
    doc_id: str = ""
    method: str = ""
    tries: int = 1
    ts: float = field(default_factory=_now)


@dataclass(frozen=True)
class ClaimVerdict(JobEvent):
    """One claim reached its final verdict (streamed as it lands)."""

    kind: ClassVar[str] = "claim_verdict"
    job_id: str
    claim_id: str = ""
    verdict: str = ""            # "correct" | "incorrect"
    query: str | None = None
    verified_by: str | None = None
    attempts: int = 0
    fallback: bool = False
    ts: float = field(default_factory=_now)


@dataclass(frozen=True)
class JobDone(JobEvent):
    """Terminal: every claim has a verdict; summary of the job."""

    kind: ClassVar[str] = "job_done"
    terminal: ClassVar[bool] = True
    job_id: str
    claims: int = 0
    flagged: int = 0
    spend: dict | None = None    # {"cost_usd", "llm_calls", "tokens"}
    latency_seconds: float = 0.0
    ts: float = field(default_factory=_now)


@dataclass(frozen=True)
class JobFailed(JobEvent):
    """Terminal: the job's batch raised; no verdicts are trustworthy."""

    kind: ClassVar[str] = "job_failed"
    terminal: ClassVar[bool] = True
    job_id: str
    error: str = ""
    ts: float = field(default_factory=_now)


@dataclass(frozen=True)
class JobCancelled(JobEvent):
    """Terminal: the job was cancelled; its stream ends here."""

    kind: ClassVar[str] = "job_cancelled"
    terminal: ClassVar[bool] = True
    job_id: str
    ts: float = field(default_factory=_now)


@dataclass(frozen=True)
class WorkerLost(JobEvent):
    """Terminal: the worker process running the job died mid-flight.

    Emitted by the cluster router (never by a single-process service)
    for every non-terminal job routed to a crashed shard, so clients get
    a structured end-of-stream instead of a wedged connection. The job
    was *accepted* but its verdicts are unknown; resubmitting is safe —
    ids were released when the stream closed, and the shard's caches
    make the retry cheap.
    """

    kind: ClassVar[str] = "worker_lost"
    terminal: ClassVar[bool] = True
    job_id: str
    worker: int = -1             # shard index of the dead worker
    error: str = ""
    ts: float = field(default_factory=_now)
