"""Stdlib HTTP front end for the verification service.

``python -m repro.service`` serves these endpoints, mounted under the
versioned ``/v1/`` prefix:

* ``POST /v1/verify`` — body ``{"dataset": "tabfact", "document": 0}``
  (optional ``"client_id"``, ``"priority"``). Clones the dataset
  document under a request-unique tag and submits it; replies ``202``
  with the job id, or a structured rejection: ``429`` (queue full /
  client limit), ``503`` (draining), ``409`` (claim-id conflict).
* ``GET /v1/jobs/<id>`` — job state summary.
* ``GET /v1/jobs/<id>/events`` — the job's event stream as ndjson.
  ``?wait=1`` streams until the terminal event (bounded by
  ``&timeout=<seconds>``); without it, replays the events so far.
* ``GET /v1/jobs/<id>/trace`` — the job's span tree as Chrome
  trace-event JSON (queue wait plus the per-document verification
  waterfall); save it and load it in Perfetto or ``chrome://tracing``.
* ``GET /v1/healthz`` — liveness (always 200 while the process is up).
* ``GET /v1/readyz`` — readiness: 200 while submissions are accepted,
  503 once draining; the 503 carries a ``Retry-After`` hint. Rejected
  submissions (429/503) carry the same queue-depth-derived header.
* ``GET /v1/stats`` — queue depth, batch sizes, cache hit rate (L1 and
  persistent L2 tiers when configured), SQL-engine counters (plan
  cache, result cache, join strategies), ledger spend (including
  cumulative retry backoff), and the latency histogram.
* ``GET /v1/metrics`` — the same numbers in Prometheus text exposition
  format, ready for a scrape config.
* ``GET /v1/telemetry`` — rolling-window rates (jobs, retries, cache
  hit rates, per-method spend) from the service's
  :class:`~repro.obs.telemetry.TelemetryWindow`.
* ``GET /v1/debug/logs?n=`` — the last ``n`` structured log records as
  ndjson, straight out of the process ring buffer
  (docs/observability.md "Structured logs").

The legacy unprefixed paths (``POST /verify``, ``GET /stats``, ...)
keep working as aliases but answer with a ``Deprecation: true``
response header; an unknown version prefix (``/v2/...``) is rejected
with a structured 404 naming the supported versions.

Every request against a dataset shares one service-wide response cache
and ledger, and jobs arriving close together coalesce into one verifier
batch — the ``batches.mean_size`` stat shows it happening. The app is
deliberately framework-free: ``ThreadingHTTPServer`` plus hand-rolled
routing is all a demo-scale service needs, and it keeps the repo
dependency-light.
"""

from __future__ import annotations

import itertools
import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterator
from urllib.parse import parse_qs, urlparse

from repro.core import ScheduleEntry, VerifierConfig
from repro.datasets import (
    DatasetBundle,
    build_aggchecker,
    build_tabfact,
    build_wikitext,
)
from repro.experiments import build_cedar
from repro.obs.export import to_chrome_trace, to_prometheus
from repro.obs.logging import RingBufferSink, add_sink

from .events import JobEvent
from .queue import (
    REASON_CLIENT_LIMIT,
    REASON_CONFLICT,
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    RETRYABLE_REASONS,
    AdmissionError,
    retry_after_seconds,
)
from .service import ServiceConfig, VerificationService, clone_document

#: The datasets served by default — also the cluster workers' default
#: profile, so the router and its shards agree on document identity.
DEFAULT_DATASETS: dict[str, Callable[[], DatasetBundle]] = {
    "aggchecker": lambda: build_aggchecker(document_count=12,
                                           total_claims=72),
    "tabfact": lambda: build_tabfact(table_count=8, total_claims=28),
    "wikitext": lambda: build_wikitext(document_count=5, total_claims=18),
}

#: Backwards-compatible alias (pre-cluster name).
_DEFAULT_DATASETS = DEFAULT_DATASETS

#: The one API version this build serves; bump alongside breaking
#: route changes and keep the old prefix routed during a deprecation
#: window.
API_VERSION = "v1"

_VERSION_PART = re.compile(r"v\d+")

#: HTTP status per admission-rejection code.
_REJECTION_STATUS = {
    REASON_QUEUE_FULL: 429,
    REASON_CLIENT_LIMIT: 429,
    REASON_DRAINING: 503,
    REASON_CONFLICT: 409,
}


class ServiceApp:
    """Routes requests onto a :class:`VerificationService`.

    Dataset bundles (and the verification methods over them) are built
    lazily on first use and share the service's ledger, so ``/stats``
    accounts for every request's spend in one place. All jobs against a
    dataset use one fixed single-try schedule — identical schedules are
    what makes cross-request batching possible.
    """

    def __init__(
        self,
        service: VerificationService | None = None,
        datasets: dict[str, Callable[[], DatasetBundle]] | None = None,
        seed: int = 0,
        client_wrapper: Callable | None = None,
    ) -> None:
        self.service = service if service is not None else (
            VerificationService().start()
        )
        self._builders = dict(
            datasets if datasets is not None else DEFAULT_DATASETS
        )
        self._seed = seed
        #: Optional LLM-client decorator applied to every method of a
        #: freshly built dataset system — the benchmarks use it to
        #: stack simulated model latency under the response cache.
        self._client_wrapper = client_wrapper
        self._datasets: dict[str, tuple[DatasetBundle,
                                        list[ScheduleEntry]]] = {}
        self._lock = threading.Lock()
        self._request_seq = itertools.count(1)
        #: The last 512 structured log records, served by
        #: ``GET /v1/debug/logs`` (process-global sink: records from
        #: every component land here, not just the HTTP layer's).
        self.log_buffer = RingBufferSink(512)
        add_sink(self.log_buffer)

    @property
    def datasets(self) -> list[str]:
        return sorted(self._builders)

    def _dataset(self, name: str) -> tuple[DatasetBundle,
                                           list[ScheduleEntry]]:
        with self._lock:
            entry = self._datasets.get(name)
            if entry is None:
                bundle = self._builders[name]()
                system = build_cedar(
                    bundle, seed=self._seed,
                    config=VerifierConfig(ledger=self.service.ledger),
                )
                if self._client_wrapper is not None:
                    for method in system.methods:
                        method.client = self._client_wrapper(method.client)
                # Single-try stages: deterministic (temperature 0
                # everywhere) and maximally cacheable across requests.
                schedule = [ScheduleEntry(method, 1)
                            for method in system.methods[:3]]
                entry = (bundle, schedule)
                self._datasets[name] = entry
            return entry

    def warm(self, name: str) -> int:
        """Force-build a dataset's bundle and systems (an expensive,
        once-per-process step otherwise paid by the first submission);
        returns the document count. Lets deployments and benchmarks
        warm every worker before taking traffic."""
        if name not in self._builders:
            raise KeyError(f"unknown dataset {name!r}")
        bundle, _schedule = self._dataset(name)
        return len(bundle.documents)

    # -- routes --------------------------------------------------------------

    def submit(self, payload: dict) -> tuple[int, dict]:
        name = payload.get("dataset", "aggchecker")
        if name not in self._builders:
            return 400, {"error": f"unknown dataset {name!r}",
                         "datasets": sorted(self._builders)}
        index = payload.get("document", 0)
        if not isinstance(index, int):
            return 400, {"error": "document must be an integer index"}
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            return 400, {"error": "priority must be an integer"}
        bundle, schedule = self._dataset(name)
        if not 0 <= index < len(bundle.documents):
            return 400, {
                "error": f"document index out of range "
                         f"(0..{len(bundle.documents) - 1})",
            }
        document = clone_document(
            bundle.documents[index], f"r{next(self._request_seq):05d}"
        )
        # A routed submission carries its upstream trace context (see
        # cluster/protocol.py); a malformed one is dropped, never fatal.
        trace = payload.get("trace")
        if not (isinstance(trace, dict)
                and isinstance(trace.get("trace_id"), str)):
            trace = None
        try:
            handle = self.service.submit(
                document,
                schedule,
                client_id=str(payload.get("client_id", "default")),
                priority=priority,
                trace_context=trace,
            )
        except AdmissionError as error:
            status = _REJECTION_STATUS.get(error.reason.code, 429)
            body = {"rejected": error.reason.to_dict()}
            if error.reason.code in RETRYABLE_REASONS:
                # The client should come back once the backlog (or the
                # drain) has had time to clear; scale the hint by it.
                body["retry_after_seconds"] = retry_after_seconds(
                    self.service.queue_depth
                )
            return status, body
        return 202, {
            "job_id": handle.job_id,
            "state": handle.state,
            "claims": len(document.claims),
            "events_url": f"/{API_VERSION}/jobs/{handle.job_id}/events",
        }

    def job_summary(self, job_id: str) -> tuple[int, dict]:
        handle = self.service.job(job_id)
        if handle is None:
            return 404, {"error": f"no job {job_id!r}"}
        body = {"job_id": job_id, "state": handle.state,
                "events": len(handle.events_snapshot())}
        if handle.error:
            body["error"] = handle.error
        return 200, body

    def job_events(
        self, job_id: str, wait: bool, timeout: float
    ) -> Iterator[JobEvent] | None:
        """The job's events — live (bounded by ``timeout``) or replayed."""
        handle = self.service.job(job_id)
        if handle is None:
            return None
        if wait:
            return handle.events(timeout=timeout)
        return iter(handle.events_snapshot())

    def job_trace(self, job_id: str) -> tuple[int, dict]:
        """The job's span forest as Chrome trace-event JSON."""
        handle = self.service.job(job_id)
        if handle is None:
            return 404, {"error": f"no job {job_id!r}"}
        return 200, to_chrome_trace(handle.spans(), process_name=job_id)

    def health(self) -> tuple[int, dict]:
        """Liveness: the process is up and answering (draining or not)."""
        return 200, {"status": "ok", "draining": self.service.draining}

    def ready(self) -> tuple[int, dict]:
        """Readiness: 200 only while new submissions are accepted.

        A draining service stays *live* (``/healthz`` keeps returning
        200 so orchestrators don't kill it mid-flush) but flips
        ``/readyz`` to 503 so load balancers stop sending it work.
        """
        if self.service.ready:
            return 200, {"ready": True, "draining": False}
        return 503, {"ready": False,
                     "draining": self.service.draining}

    def stats(self) -> tuple[int, dict]:
        return 200, self.service.stats().to_dict()

    def metrics(self) -> str:
        """The service registry in Prometheus text exposition format."""
        return to_prometheus(self.service.metrics)

    def telemetry(self) -> tuple[int, dict]:
        """The rolling telemetry window's current snapshot."""
        return 200, self.service.telemetry.snapshot()

    def debug_logs(self, n: int | None = None) -> str:
        """The last ``n`` structured log records as ndjson."""
        return self.log_buffer.to_ndjson(n)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Thin adapter from HTTP to :class:`ServiceApp` routes."""

    app: ServiceApp  # injected by make_server
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _extra_headers(self) -> None:
        # Legacy unprefixed paths still work, but every response from
        # one carries the deprecation signal so clients can migrate on
        # their own schedule (draft-ietf-httpapi-deprecation-header).
        if getattr(self, "_legacy_path", False):
            self.send_header("Deprecation", "true")

    def _route_parts(self) -> list[str] | None:
        """Path segments with the version prefix resolved.

        Returns the post-prefix segments for ``/v1/...``, the raw
        segments for legacy unprefixed paths (flagging the response as
        deprecated), or ``None`` after answering an unsupported
        ``/v<k>/`` prefix with a structured 404.
        """
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        self._legacy_path = not (parts and _VERSION_PART.fullmatch(parts[0]))
        if self._legacy_path:
            return parts
        if parts[0] != API_VERSION:
            self._send_json(404, {
                "error": f"unknown API version {parts[0]!r}",
                "supported": [API_VERSION],
            })
            return None
        return parts[1:]

    def _send_json(self, status: int, body: dict,
                   headers: dict[str, str] | None = None) -> None:
        payload = json.dumps(body, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        # Structured rejections advertise when to come back; the header
        # mirrors the body's retry_after_seconds for plain HTTP clients.
        if "retry_after_seconds" in body:
            self.send_header("Retry-After",
                             str(int(body["retry_after_seconds"])))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self._extra_headers()
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, body: str,
                   content_type: str) -> None:
        payload = body.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self._extra_headers()
        self.end_headers()
        self.wfile.write(payload)

    def _send_ndjson(self, events: Iterator[JobEvent]) -> None:
        # Length unknown up front (events may still be landing), so the
        # stream is chunked and flushed per event.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self._extra_headers()
        self.end_headers()
        try:
            for event in events:
                line = (event.to_json() + "\n").encode()
                self.wfile.write(f"{len(line):x}\r\n".encode())
                self.wfile.write(line + b"\r\n")
                self.wfile.flush()
        except TimeoutError:
            pass  # ?wait deadline hit: end the stream where it stands
        self.wfile.write(b"0\r\n\r\n")

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server's casing)
        url = urlparse(self.path)
        parts = self._route_parts()
        if parts is None:
            return
        if parts == ["healthz"]:
            self._send_json(*self.app.health())
        elif parts == ["readyz"]:
            status, body = self.app.ready()
            if status != 200:
                body["retry_after_seconds"] = retry_after_seconds(
                    self.app.service.queue_depth
                )
            self._send_json(status, body)
        elif parts == ["stats"]:
            self._send_json(*self.app.stats())
        elif parts == ["metrics"]:
            self._send_text(
                200, self.app.metrics(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif parts == ["telemetry"]:
            self._send_json(*self.app.telemetry())
        elif parts == ["debug", "logs"]:
            query = parse_qs(url.query)
            try:
                n = int(query.get("n", ["100"])[0])
                if n < 0:
                    raise ValueError
            except ValueError:
                self._send_json(
                    400, {"error": "n must be a non-negative integer"}
                )
                return
            self._send_text(200, self.app.debug_logs(n),
                            "application/x-ndjson")
        elif len(parts) == 2 and parts[0] == "jobs":
            self._send_json(*self.app.job_summary(parts[1]))
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
            self._send_json(*self.app.job_trace(parts[1]))
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            query = parse_qs(url.query)
            wait = query.get("wait", ["0"])[0] not in ("0", "", "false")
            try:
                timeout = float(query.get("timeout", ["30"])[0])
                if not math.isfinite(timeout) or timeout < 0:
                    raise ValueError
            except ValueError:
                self._send_json(
                    400,
                    {"error": "timeout must be a non-negative number"},
                )
                return
            events = self.app.job_events(parts[1], wait, timeout)
            if events is None:
                self._send_json(404, {"error": f"no job {parts[1]!r}"})
            else:
                self._send_ndjson(events)
        else:
            self._send_json(404, {"error": f"no route for {url.path}"})

    def do_POST(self) -> None:  # noqa: N802
        url = urlparse(self.path)
        parts = self._route_parts()
        if parts is None:
            return
        if parts != ["verify"]:
            self._send_json(404, {"error": f"no route for {url.path}"})
            return
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"bad request body: {error}"})
            return
        self._send_json(*self.app.submit(payload))


def make_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    app: ServiceApp | None = None,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build (but don't start) the HTTP server; ``port=0`` picks a free
    port — read it back from ``server.server_address``."""
    app = app if app is not None else ServiceApp()
    handler = type("BoundHandler", (ServiceRequestHandler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.verbose = verbose  # type: ignore[attr-defined]
    server.app = app  # type: ignore[attr-defined]
    return server
