"""The embeddable verification service.

``VerificationService`` turns the PR 1 engine (:class:`ParallelVerifier`
with its shared response cache, retry layer, and thread-safe ledger)
into something that can sit under concurrent traffic:

* **Admission control** — a bounded priority queue rejects-with-reason
  when full, per-client in-flight caps stop one caller from starving the
  rest, and claim-id conflicts with in-flight jobs are refused rather
  than silently corrupting shared state.
* **Micro-batching** — a dispatcher coalesces queued jobs whose batch
  key (database identity, schedule stages) matches into one
  ``verify_documents`` call on a shared verifier, so the response cache,
  worker pools, and ledger are amortised across requests instead of
  re-paid per call.
* **Streaming** — every job exposes an event iterator (accepted → stage
  started → verdict → done) fed by the executor's
  :class:`~repro.core.pipeline.VerificationObserver` hooks, so callers
  see per-claim verdicts while the batch is still running.
* **Cancellation and drain** — a queued job cancels instantly; a running
  job stops emitting events and its remaining documents are skipped.
  ``shutdown(drain=True)`` refuses new work, flushes everything already
  accepted, and joins the dispatchers.

Submitted documents must carry doc ids and claim ids that are unique
among in-flight jobs (the observer maps, reports map, and ledger tags
key on them); use :func:`clone_document` to derive a uniquely-tagged
copy when submitting the same document many times.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core import (
    ParallelVerifier,
    ScheduleEntry,
    VerificationObserver,
    VerificationRun,
    VerifierConfig,
)
from repro.cache import CacheConfig
from repro.core.claims import Claim, Document
from repro.core.pipeline import ClaimReport
from repro.core.reports import claim_record
from repro.llm.cache import LLMCache
from repro.llm.ledger import CostLedger
from repro.llm.resilience import RetryPolicy
from repro.obs.logging import get_logger
from repro.obs.metrics import (
    Metric,
    MetricsRegistry,
    cache_metrics,
    engine_metrics,
    ledger_metrics,
)
from repro.obs.telemetry import TelemetryWindow, hit_rate
from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    annotate_critical_path,
)
from repro.sqlengine import QueryResultCache, engine_stats

from .events import (
    ClaimAccepted,
    ClaimVerdict,
    JobCancelled,
    JobDone,
    JobEvent,
    JobQueued,
    JobStarted,
    StageStarted,
)
from .events import JobFailed
from .queue import (
    REASON_CLIENT_LIMIT,
    REASON_CONFLICT,
    REASON_DRAINING,
    AdmissionError,
    BoundedJobQueue,
    RejectionReason,
)
from .stats import LatencyHistogram, ServiceStats

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

_TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})


@dataclass
class ServiceConfig:
    """Service-level knobs plus the executor settings it builds on."""

    max_queue_depth: int = 64
    per_client_limit: int = 8       # queued + running jobs per client_id
    max_batch_jobs: int = 8         # jobs coalesced into one batch
    batch_window: float = 0.0       # seconds to linger for coalescible jobs
    dispatchers: int = 1            # batch-runner threads
    workers: int = 4                # ParallelVerifier pool width per batch
    cache_size: int = 1024          # shared response cache; 0 disables
    sql_cache_size: int = 2048      # shared query-result cache; 0 disables
    #: Algorithm 1's few-shot sample harvesting. Note the re-pass it
    #: triggers runs at retry temperature, and those draws are
    #: independent across jobs (Assumption 1) — disable it when
    #: bit-identical verdicts across repeat submissions are required.
    use_samples: bool = True
    retry: RetryPolicy | None = None
    ledger: CostLedger | None = None
    poll_interval: float = 0.02     # dispatcher shutdown-poll cadence
    #: Per-job span trees (queue wait + the document waterfall), served
    #: by ``GET /jobs/<id>/trace``. Tracing never changes verdicts or
    #: spend; disable it to shave the last few percent off hot batches.
    tracing: bool = True
    #: Persistent cache wiring (see :mod:`repro.cache`): with a
    #: ``CacheConfig(path=...)``, the service's shared LLM and SQL-result
    #: caches gain a restart-surviving L2 tier (its stats appear in
    #: ``/stats`` and ``GET /v1/metrics`` under ``tier`` labels). None
    #: keeps the pure in-memory behaviour.
    cache_config: CacheConfig | None = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.per_client_limit < 1:
            raise ValueError("per_client_limit must be at least 1")
        if self.max_batch_jobs < 1:
            raise ValueError("max_batch_jobs must be at least 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.dispatchers < 1:
            raise ValueError("dispatchers must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if self.sql_cache_size < 0:
            raise ValueError("sql_cache_size must be non-negative")


def clone_document(document: Document, tag: str) -> Document:
    """A verification-fresh copy of ``document`` with ``tag``-unique ids.

    Claims are re-created with cleared ``query``/``correct`` state and
    ids prefixed by ``tag``; the database (and claim metadata) is shared,
    not copied. This is how the HTTP front end lets many requests verify
    the same dataset document concurrently without mutating one shared
    object — and since the simulated-LLM world keys on sentences, clones
    verify identically to the original.
    """
    claims = [
        Claim(
            sentence=claim.sentence,
            span=claim.span,
            context=claim.context,
            claim_id=f"{tag}/{claim.claim_id}",
            metadata=claim.metadata,
        )
        for claim in document.claims
    ]
    return Document(
        doc_id=f"{tag}/{document.doc_id}",
        claims=claims,
        data=document.data,
        domain=document.domain,
        title=document.title,
    )


class Job:
    """One accepted verification request and its event stream."""

    def __init__(
        self,
        job_id: str,
        documents: list[Document],
        schedule: list[ScheduleEntry],
        client_id: str,
        priority: int,
        trace_context: dict | None = None,
    ) -> None:
        self.job_id = job_id
        self.documents = documents
        self.schedule = schedule
        self.client_id = client_id
        self.priority = priority
        #: Distributed-trace parentage handed in by a cluster router
        #: (``{"trace_id", "parent_span"}``); None for direct callers.
        self.trace_context = trace_context
        self.state = QUEUED
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.run: VerificationRun | None = None
        self.spend: dict | None = None
        self.error: str | None = None
        #: Root spans filed under this job (queue_wait + one document
        #: span per document) once its batch completes.
        self.spans: list[Span] = []
        self._events: list[JobEvent] = []
        self._cond = threading.Condition()
        self._cancelled = False
        self._closed = False

    # -- event stream --------------------------------------------------------

    def emit(self, event: JobEvent, force: bool = False) -> None:
        """Append an event; after cancellation only forced (terminal)
        events get through — a cancelled job stops emitting."""
        with self._cond:
            if self._closed or (self._cancelled and not force):
                return
            self._events.append(event)
            if event.terminal:
                self._closed = True
            self._cond.notify_all()

    def event_at(self, index: int, timeout: float | None) -> JobEvent | None:
        """Block until event ``index`` exists (None once the stream ended)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._events) <= index and not self._closed:
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"no event {index} for job {self.job_id} "
                            f"within {timeout}s"
                        )
                    self._cond.wait(remaining)
            if index < len(self._events):
                return self._events[index]
            return None

    def events_snapshot(self) -> list[JobEvent]:
        with self._cond:
            return list(self._events)

    def wait(self, timeout: float | None = None) -> bool:
        """True once the job reached a terminal event."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._closed:
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._cond.wait(remaining)
            return True

    # -- cancellation --------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def request_cancel(self) -> bool:
        with self._cond:
            if self._closed or self._cancelled:
                return False
            self._cancelled = True
            return True

    def claim_ids(self) -> list[str]:
        return [c.claim_id for d in self.documents for c in d.claims]


class JobHandle:
    """Caller-facing view of a submitted job."""

    def __init__(self, job: Job, service: "VerificationService") -> None:
        self._job = job
        self._service = service

    @property
    def job_id(self) -> str:
        return self._job.job_id

    @property
    def state(self) -> str:
        return self._job.state

    @property
    def error(self) -> str | None:
        return self._job.error

    def events(self, timeout: float | None = None) -> Iterator[JobEvent]:
        """Yield events as they land, ending after the terminal event.

        ``timeout`` bounds the wait for each *next* event; exceeding it
        raises :class:`TimeoutError`.
        """
        index = 0
        while True:
            event = self._job.event_at(index, timeout)
            if event is None:
                return
            yield event
            index += 1
            if event.terminal:
                return

    def events_snapshot(self) -> list[JobEvent]:
        """The events emitted so far, without blocking."""
        return self._job.events_snapshot()

    def wait(self, timeout: float | None = None) -> bool:
        return self._job.wait(timeout)

    def cancel(self) -> bool:
        return self._service.cancel(self.job_id)

    def result(self, timeout: float | None = None) -> VerificationRun:
        """Block until done and return the job's VerificationRun."""
        if not self._job.wait(timeout):
            raise TimeoutError(f"job {self.job_id} still {self._job.state}")
        if self._job.state == COMPLETED:
            assert self._job.run is not None
            return self._job.run
        raise RuntimeError(
            f"job {self.job_id} {self._job.state}"
            + (f": {self._job.error}" if self._job.error else "")
        )

    def spans(self) -> list[Span]:
        """Root spans filed under this job (populated at completion)."""
        return list(self._job.spans)

    def trace_context(self) -> dict | None:
        """The upstream trace context the job was submitted with."""
        return self._job.trace_context


class _StreamingObserver(VerificationObserver):
    """Fan one batch's verifier progress out to each job's event stream.

    Called from verifier worker threads; Job.emit is the synchronisation
    point. Documents of cancelled jobs are skipped via ``should_verify``.
    """

    def __init__(
        self, doc_jobs: dict[str, Job], claim_jobs: dict[str, Job]
    ) -> None:
        self._doc_jobs = doc_jobs
        self._claim_jobs = claim_jobs

    def should_verify(self, document: Document) -> bool:
        job = self._doc_jobs.get(document.doc_id)
        return job is not None and not job.cancelled

    def stage_started(self, document: Document, entry: ScheduleEntry) -> None:
        job = self._doc_jobs.get(document.doc_id)
        if job is not None:
            job.emit(StageStarted(
                job_id=job.job_id,
                doc_id=document.doc_id,
                method=entry.method.name,
                tries=entry.tries,
            ))

    def claim_resolved(self, claim: Claim, report: ClaimReport) -> None:
        job = self._claim_jobs.get(claim.claim_id)
        if job is not None:
            record = claim_record(claim, report)
            job.emit(ClaimVerdict(
                job_id=job.job_id,
                claim_id=claim.claim_id,
                verdict=record["verdict"],
                query=record["query"],
                verified_by=record["verified_by"],
                attempts=record["attempts"],
                fallback=record["fallback"],
            ))


class VerificationService:
    """Accepts, batches, executes, and streams verification jobs."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.ledger = (
            self.config.ledger
            if self.config.ledger is not None else CostLedger()
        )
        #: The opened persistent store (None without a cache_config) —
        #: one sqlite file shared by both caches below.
        self.cache_store = (
            self.config.cache_config.open()
            if self.config.cache_config is not None else None
        )
        #: One response cache shared by every verifier the service owns,
        #: so requests warm each other's entries (the cross-request half
        #: of the PR 1 cache).
        self.cache = (
            LLMCache(self.config.cache_size, store=self.cache_store)
            if self.config.cache_size > 0 else None
        )
        #: One query-result cache shared the same way: jobs that verify
        #: against the same database re-use each other's SQL results
        #: (keys carry the database fingerprint, so mutation invalidates).
        self.sql_cache = (
            QueryResultCache(
                self.config.sql_cache_size, store=self.cache_store,
            )
            if self.config.sql_cache_size > 0 else None
        )
        self._queue = BoundedJobQueue(self.config.max_queue_depth)
        self._jobs: dict[str, Job] = {}
        self._verifiers: dict[
            tuple, tuple[ParallelVerifier, threading.Lock]
        ] = {}
        self._lock = threading.RLock()
        self._inflight: dict[str, int] = {}
        self._active_claim_ids: set[str] = set()
        self._active_doc_ids: set[str] = set()
        self._job_seq = itertools.count(1)
        self._batch_seq = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._draining = False
        self._started = False
        self._counts = {"submitted": 0, "completed": 0, "failed": 0,
                        "cancelled": 0, "rejected": 0}
        self._batches = 0
        self._batched_jobs = 0
        self._max_batch = 0
        self._running_jobs = 0
        self._histogram = LatencyHistogram()
        #: Pull-based metrics registry behind ``GET /metrics``: ledger,
        #: cache, and engine stats are translated at scrape time, so the
        #: hot paths pay nothing extra per event.
        self.metrics = MetricsRegistry()
        self.metrics.register_collector(lambda: ledger_metrics(self.ledger))
        self.metrics.register_collector(self._own_metrics)
        self.metrics.register_collector(
            lambda: engine_metrics(self._engine_stats())
        )
        self._log = get_logger("service")
        #: Rolling-window rates over the counters above — the adaptive
        #: scheduler's input surface (``GET /v1/telemetry`` and the
        #: ``cedar_telemetry_*`` gauges). Sampled after every batch.
        self.telemetry = TelemetryWindow()
        self._wire_telemetry()
        self.metrics.register_collector(self.telemetry.metrics)

    def _wire_telemetry(self) -> None:
        window = self.telemetry
        window.register_gauges(lambda: {
            "queue_depth": len(self._queue),
            "running_jobs": self._running_jobs,
        })
        window.register_counters("jobs", lambda: dict(self._counts))
        window.register_counters("llm", self._llm_counters)
        if self.cache is not None:
            window.register_counters("llm_cache", lambda: {
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
            })
            window.register_derived(
                "llm_cache_hit_rate",
                hit_rate("llm_cache_hits", "llm_cache_misses"),
            )
        if self.sql_cache is not None:
            window.register_counters("sql_cache", lambda: {
                "hits": self.sql_cache.stats()["hits"],
                "misses": self.sql_cache.stats()["misses"],
            })
            window.register_derived(
                "sql_cache_hit_rate",
                hit_rate("sql_cache_hits", "sql_cache_misses"),
            )
        window.register_counters(
            "method_cost_usd",
            lambda: self._method_totals("cost"), keyed_by="method",
        )
        window.register_counters(
            "method_calls",
            lambda: self._method_totals("calls"), keyed_by="method",
        )

    def _llm_counters(self) -> dict:
        totals = self.ledger.totals()
        return {
            "calls": totals.calls,
            "cost_usd": totals.cost,
            "retries": self.ledger.retry_count,
            "retry_backoff_seconds": self.ledger.retry_backoff_seconds,
        }

    def _method_totals(self, field_name: str) -> dict:
        """Per-method ledger totals, ``method:`` tag prefix stripped."""
        totals = self.ledger.totals_by_tag_prefix("method:")
        return {
            tag[len("method:"):]: getattr(entry, field_name)
            for tag, entry in totals.items()
        }

    def _engine_stats(self) -> dict:
        """Process engine stats with this service's result cache spliced
        in (mirrors :meth:`stats`)."""
        stats = dict(engine_stats())
        stats["result_cache"] = (
            self.sql_cache.stats() if self.sql_cache is not None else None
        )
        return stats

    def _own_metrics(self) -> list[Metric]:
        """Queue/job/batch/latency state owned by the service itself."""
        with self._lock:
            counts = dict(self._counts)
            running = self._running_jobs
            batches = self._batches
            batched_jobs = self._batched_jobs
        metrics = [
            Metric.gauge("cedar_queue_depth", len(self._queue),
                         "Jobs waiting for a dispatcher"),
            Metric.gauge("cedar_running_jobs", running,
                         "Jobs currently inside a batch"),
            Metric.counter("cedar_batches_total", batches,
                           "Verifier batches dispatched"),
            Metric.counter("cedar_batched_jobs_total", batched_jobs,
                           "Jobs that went through a batch"),
        ]
        for state, count in sorted(counts.items()):
            metrics.append(Metric.counter(
                "cedar_jobs_total", count,
                "Job admissions by outcome", {"state": state},
            ))
        latency = self._histogram.snapshot()
        metrics.append(Metric.histogram(
            "cedar_job_latency_seconds",
            latency["buckets"]["bounds"],
            latency["buckets"]["counts"],
            latency["sum_seconds"], latency["count"],
            "Completed-job latency, submission to done",
        ))
        if self.cache is not None:
            metrics.extend(cache_metrics(
                "llm", self.cache.stats,
                tiers=(self.cache.tier_stats()
                       if self.cache_store is not None else None),
            ))
        return metrics

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "VerificationService":
        """Launch the dispatcher threads (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._log.info("service_started",
                           dispatchers=self.config.dispatchers,
                           workers=self.config.workers)
            for index in range(self.config.dispatchers):
                thread = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"cedar-dispatch-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def begin_drain(self) -> None:
        """Flip to draining without blocking: new submissions are
        refused (``/readyz`` goes 503) while dispatchers keep flushing
        what was already accepted. Safe to call from a signal handler;
        follow with :meth:`shutdown` to actually wait the drain out.
        """
        with self._lock:
            self._draining = True
        self._log.info("drain_started", queue_depth=len(self._queue))

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop the service, refusing new submissions immediately.

        ``drain=True`` flushes every job already accepted (queued and
        running) before returning; ``drain=False`` cancels the queued
        jobs and only lets in-flight batches finish. On a service that
        was never started, draining runs the queued jobs inline on the
        calling thread — handy for one-shot embedding and tests.
        """
        with self._lock:
            self._draining = True
            started = self._started
        if not drain:
            while True:
                job = self._queue.pop(timeout=0)
                if job is None:
                    break
                job.request_cancel()
                self._finalize(job, CANCELLED)
        if not started and drain:
            self._drain_inline()
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._log.info("service_stopped", drained=drain)

    def __enter__(self) -> "VerificationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def ready(self) -> bool:
        """True while the service accepts new submissions.

        Liveness and readiness are distinct probes: a draining service
        is still *alive* (it answers requests, flushes jobs) but not
        *ready* (submits are refused). ``GET /readyz`` reports this.
        """
        return not (self._draining or self._stop.is_set())

    @property
    def queue_depth(self) -> int:
        """Jobs accepted but not yet picked up by a dispatcher."""
        return len(self._queue)

    # -- admission -----------------------------------------------------------

    def submit(
        self,
        documents: Sequence[Document] | Document,
        schedule: list[ScheduleEntry],
        *,
        client_id: str = "default",
        priority: int = 0,
        trace_context: dict | None = None,
    ) -> JobHandle:
        """Admit a job or raise :class:`AdmissionError` with the reason.

        ``trace_context`` (``{"trace_id", "parent_span"}``) marks the
        job as part of a distributed trace — the cluster router passes
        its own per-job root here so the worker's span tree can be
        stitched under it (docs/observability.md).
        """
        if isinstance(documents, Document):
            documents = [documents]
        documents = list(documents)
        if not documents:
            raise ValueError("submit needs at least one document")
        if not schedule:
            raise ValueError("submit needs a non-empty schedule")
        with self._lock:
            if self._draining or self._stop.is_set():
                self._counts["rejected"] += 1
                self._log.warning("job_rejected", reason=REASON_DRAINING,
                                  client_id=client_id)
                raise AdmissionError(RejectionReason(
                    REASON_DRAINING,
                    "service is draining and not accepting new jobs",
                ))
            inflight = self._inflight.get(client_id, 0)
            if inflight >= self.config.per_client_limit:
                self._counts["rejected"] += 1
                self._log.warning("job_rejected", reason=REASON_CLIENT_LIMIT,
                                  client_id=client_id, inflight=inflight)
                raise AdmissionError(RejectionReason(
                    REASON_CLIENT_LIMIT,
                    f"client {client_id!r} already has {inflight} jobs in "
                    f"flight (limit {self.config.per_client_limit})",
                ))
            # Doc ids key the observer maps and ledger tags, claim ids
            # key the reports map — both must be unique in flight or a
            # coalesced batch misroutes events and double-bills spend.
            claim_ids = [c.claim_id for d in documents for c in d.claims]
            doc_ids = [d.doc_id for d in documents]
            if (
                len(set(claim_ids)) != len(claim_ids)
                or len(set(doc_ids)) != len(doc_ids)
                or any(cid in self._active_claim_ids for cid in claim_ids)
                or any(did in self._active_doc_ids for did in doc_ids)
            ):
                self._counts["rejected"] += 1
                self._log.warning("job_rejected", reason=REASON_CONFLICT,
                                  client_id=client_id)
                raise AdmissionError(RejectionReason(
                    REASON_CONFLICT,
                    "doc or claim ids overlap a job already in flight; "
                    "submit clone_document() copies instead",
                ))
            job = Job(
                job_id=f"job-{next(self._job_seq):06d}",
                documents=documents,
                schedule=schedule,
                client_id=client_id,
                priority=priority,
                trace_context=trace_context,
            )
            # Admission events go on the stream before the job becomes
            # poppable, so JobStarted can never precede JobQueued.
            job.emit(JobQueued(job_id=job.job_id, priority=priority,
                               queue_depth=len(self._queue) + 1))
            for document in documents:
                for claim in document.claims:
                    job.emit(ClaimAccepted(job_id=job.job_id,
                                           claim_id=claim.claim_id,
                                           sentence=claim.sentence))
            try:
                self._queue.offer(job, priority)
            except AdmissionError:
                self._counts["rejected"] += 1
                raise
            self._jobs[job.job_id] = job
            self._inflight[client_id] = inflight + 1
            self._active_claim_ids.update(claim_ids)
            self._active_doc_ids.update(doc_ids)
            self._counts["submitted"] += 1
        self._log.info(
            "job_accepted", job_id=job.job_id, client_id=client_id,
            priority=priority, documents=len(documents),
            claims=len(claim_ids),
            **({"upstream_trace": trace_context["trace_id"]}
               if trace_context else {}),
        )
        return JobHandle(job, self)

    def job(self, job_id: str) -> JobHandle | None:
        with self._lock:
            job = self._jobs.get(job_id)
        return JobHandle(job, self) if job is not None else None

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; True if this call won the cancellation.

        A still-queued job is finalised immediately; a running one stops
        emitting events and is finalised when its batch completes. A job
        whose state is already terminal refuses the cancel (checked
        under the service lock, the same lock :meth:`_finalize` sets the
        state under). A cancel that lands in the instant a batch is
        finishing may still see the job complete — the terminal
        ``JobDone`` is emitted forced, so the stream closes either way.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state in _TERMINAL_STATES:
                return False
            if not job.request_cancel():
                return False
        if self._queue.remove(job):
            self._finalize(job, CANCELLED)
        return True

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            job = self._queue.pop(timeout=self.config.poll_interval)
            if job is None:
                if self._stop.is_set() and len(self._queue) == 0:
                    return
                continue
            self._run_batch(self._coalesce(job))

    def _coalesce(self, first: Job) -> list[Job]:
        """The micro-batcher: gather queued jobs sharing a batch key."""
        if self.config.batch_window > 0 and not self._stop.is_set():
            time.sleep(self.config.batch_window)
        key = self._batch_key(first)
        extra = self._queue.pop_matching(
            lambda other: self._batch_key(other) == key,
            self.config.max_batch_jobs - 1,
        )
        return [first, *extra]

    @staticmethod
    def _batch_key(job: Job) -> tuple:
        """Jobs coalesce when they verify against the same databases with
        the same schedule stages (identical method objects and budgets)."""
        databases = tuple(sorted({id(doc.data) for doc in job.documents}))  # lint: allow-id-key
        stages = tuple((id(entry.method), entry.tries)
                       for entry in job.schedule)
        return (databases, stages)

    def _verifier_for(
        self, key: tuple
    ) -> tuple[ParallelVerifier, threading.Lock]:
        """One persistent verifier per batch key, all sharing the service
        ledger and response cache, each guarded by its own mutex.

        ``ParallelVerifier`` keeps per-run state on the instance (the
        streaming observer and the claims pool), so two dispatchers must
        never run ``verify_documents`` on the same verifier at once —
        batch A's observer would be stomped by batch B's and A's
        documents silently skipped. The mutex serialises same-key
        batches; different keys get different verifiers and still run
        concurrently.
        """
        with self._lock:
            entry = self._verifiers.get(key)
            if entry is None:
                verifier = ParallelVerifier(config=VerifierConfig(
                    workers=self.config.workers,
                    use_samples=self.config.use_samples,
                    cache=self.cache,
                    retry=self.config.retry,
                    ledger=self.ledger,
                    sql_cache=self.sql_cache,
                    sql_cache_size=self.config.sql_cache_size,
                ))
                entry = (verifier, threading.Lock())
                self._verifiers[key] = entry
            return entry

    def _run_batch(self, batch: list[Job]) -> None:
        batch_id = next(self._batch_seq)
        runnable: list[Job] = []
        for job in batch:
            if job.cancelled:
                self._finalize(job, CANCELLED)
            else:
                runnable.append(job)
        if not runnable:
            return
        with self._lock:
            self._batches += 1
            self._batched_jobs += len(runnable)
            self._max_batch = max(self._max_batch, len(runnable))
            self._running_jobs += len(runnable)
        documents: list[Document] = []
        doc_jobs: dict[str, Job] = {}
        claim_jobs: dict[str, Job] = {}
        for job in runnable:
            job.state = RUNNING
            job.started_at = time.monotonic()
            job.emit(JobStarted(job_id=job.job_id, batch_id=batch_id,
                                batch_jobs=len(runnable)))
            for document in job.documents:
                documents.append(document)
                doc_jobs[document.doc_id] = job
                for claim in document.claims:
                    claim_jobs[claim.claim_id] = job
        verifier, verifier_lock = self._verifier_for(
            self._batch_key(runnable[0])
        )
        self._log.debug(
            "batch_dispatched", batch_id=batch_id, jobs=len(runnable),
            documents=len(documents),
        )
        # One tracer per batch: roots are routed to their owning jobs
        # afterwards, so concurrent dispatchers never mix span forests.
        # The clock is time.monotonic — the same epoch as the Job
        # timestamps — so queue-wait bars line up with the work bars.
        tracer: Tracer = (
            Tracer(trace_id=f"batch-{batch_id}", clock=time.monotonic)
            if self.config.tracing else NULL_TRACER
        )
        if tracer.enabled:
            for job in runnable:
                tracer.record(
                    f"wait:{job.job_id}", "queue_wait",
                    job.submitted_at, job.started_at or job.submitted_at,
                    job_id=job.job_id, priority=job.priority,
                )
        try:
            with verifier_lock:
                checkpoint = verifier.ledger.checkpoint()
                run = verifier.verify_documents(
                    documents,
                    runnable[0].schedule,
                    observer=_StreamingObserver(doc_jobs, claim_jobs),
                    tracer=tracer,
                )
        except Exception as error:  # the whole batch is poisoned
            message = f"{type(error).__name__}: {error}"
            self._log.error("batch_failed", batch_id=batch_id,
                            jobs=len(runnable), error=message)
            for job in runnable:
                self._finalize(job, CANCELLED if job.cancelled else FAILED,
                               error=message)
            return
        finally:
            with self._lock:
                self._running_jobs -= len(runnable)
            if tracer.enabled:
                self._file_spans(tracer, runnable, doc_jobs)
            self.telemetry.sample()
        for job in runnable:
            if job.cancelled:
                self._finalize(job, CANCELLED)
                continue
            job.run = VerificationRun(job.documents, {
                claim.claim_id: run.reports[claim.claim_id]
                for document in job.documents
                for claim in document.claims
            })
            totals = verifier.ledger.totals_for_tags(
                {f"doc:{document.doc_id}" for document in job.documents},
                since=checkpoint,
            )
            job.spend = {
                "cost_usd": round(totals.cost, 6),
                "llm_calls": totals.calls,
                "tokens": totals.total_tokens,
            }
            self._finalize(job, COMPLETED)

    @staticmethod
    def _file_spans(
        tracer: Tracer, runnable: list[Job], doc_jobs: dict[str, Job]
    ) -> None:
        """Route the batch tracer's root spans to their owning jobs.

        ``queue_wait`` roots carry a ``job_id`` attribute; ``document``
        roots carry ``doc_id``. Anything unroutable is dropped — spans
        are diagnostics, never load-bearing state. Document roots get
        the critical-path annotation here, once their subtree is final
        (the attributes are wall-time-derived, so timeless renderings
        drop them again — see ``WALL_TIME_ATTRIBUTES``).
        """
        jobs_by_id = {job.job_id: job for job in runnable}
        for span in tracer.drain_roots():
            if span.kind == "queue_wait":
                job = jobs_by_id.get(span.attributes.get("job_id"))
            else:
                job = doc_jobs.get(span.attributes.get("doc_id"))
                annotate_critical_path(span)
            if job is not None:
                job.spans.append(span)

    def _drain_inline(self) -> None:
        """Run remaining queued jobs on the calling thread (never-started
        services only: one-shot embedding and deterministic tests)."""
        while True:
            job = self._queue.pop(timeout=0)
            if job is None:
                return
            self._run_batch(self._coalesce(job))

    # -- completion ----------------------------------------------------------

    def _finalize(self, job: Job, state: str, error: str | None = None) -> None:
        with self._lock:
            if job.state in _TERMINAL_STATES:
                return
            job.state = state
            job.finished_at = time.monotonic()
            job.error = error
            remaining = self._inflight.get(job.client_id, 1) - 1
            if remaining > 0:
                self._inflight[job.client_id] = remaining
            else:
                self._inflight.pop(job.client_id, None)
            for claim_id in job.claim_ids():
                self._active_claim_ids.discard(claim_id)
            for document in job.documents:
                self._active_doc_ids.discard(document.doc_id)
            counter = {COMPLETED: "completed", FAILED: "failed",
                       CANCELLED: "cancelled"}[state]
            self._counts[counter] += 1
        latency = job.finished_at - job.submitted_at
        self._log.log(
            "error" if state == FAILED else "info", "job_finished",
            job_id=job.job_id, state=state,
            latency_seconds=round(latency, 6),
            **({"error": error} if error else {}),
        )
        if state == COMPLETED:
            self._histogram.record(latency)
            flagged = sum(
                1 for document in job.documents
                for claim in document.claims if claim.correct is False
            )
            # Forced: a terminal event must always close the stream,
            # even if a cancel() raced in after the state flipped to
            # COMPLETED (the cancel itself is then a no-op — see
            # :meth:`cancel`).
            job.emit(JobDone(
                job_id=job.job_id,
                claims=len(job.claim_ids()),
                flagged=flagged,
                spend=job.spend,
                latency_seconds=round(latency, 6),
            ), force=True)
        elif state == FAILED:
            job.emit(JobFailed(job_id=job.job_id, error=error or ""),
                     force=True)
        else:
            job.emit(JobCancelled(job_id=job.job_id), force=True)

    # -- introspection -------------------------------------------------------

    def stats(self) -> ServiceStats:
        with self._lock:
            jobs = dict(self._counts)
            batches = {
                "count": self._batches,
                "jobs": self._batched_jobs,
                "mean_size": (round(self._batched_jobs / self._batches, 2)
                              if self._batches else 0.0),
                "max_size": self._max_batch,
            }
            running = self._running_jobs
            draining = self._draining
        totals = self.ledger.totals()
        # Engine-wide plan-cache/strategy counters, with the result-cache
        # slot replaced by this service's own shared cache (the global
        # strategy counters still expose process-wide hit/miss tallies).
        sql = dict(engine_stats())
        sql["result_cache"] = (
            self.sql_cache.stats() if self.sql_cache is not None else None
        )
        sql["executions"] = self.ledger.sql_executions
        sql["seconds"] = round(self.ledger.sql_seconds, 6)
        return ServiceStats(
            queue_depth=len(self._queue),
            running_jobs=running,
            draining=draining,
            jobs=jobs,
            batches=batches,
            cache=self.cache.stats.to_dict() if self.cache else None,
            sql=sql,
            ledger={
                "entries": len(self.ledger),
                "calls": totals.calls,
                "cost_usd": round(totals.cost, 6),
                "tokens": totals.total_tokens,
                "retries": self.ledger.retry_count,
                "retry_backoff_seconds": round(
                    self.ledger.retry_backoff_seconds, 6
                ),
            },
            latency=self._histogram.snapshot(),
        )
