"""Agent tools (paper Section 5.3 and Algorithm 8).

Two tools are available to the verification agent:

* ``unique_column_values`` — list the distinct values of one column, so the
  agent can discover the exact constants stored in the data (Figure 4's
  'United States' → 'USA' correction).
* ``database_querying`` — run a candidate SQL query and receive the result
  together with *coarse* feedback comparing it to the claimed value
  ('correct' / 'close' / 'greater' / 'smaller' for numbers, 'matched' /
  'mismatched' for text). The feedback deliberately never reveals the
  claimed value itself, to prevent the Figure 2 cheat.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.embeddings import text_similarity
from repro.obs.tracer import current_tracer
from repro.sqlengine import Database, SqlValue, engine_for, to_text
from repro.sqlengine.analyzer import (
    analyze_sql,
    record_rejection,
    render_diagnostics,
)
from repro.sqlengine.errors import EmptyResultError, SqlError
from repro.sqlengine.values import coerce_numeric

from repro.core.claims import numeric_values_match, same_order_of_magnitude

#: Cap on how many distinct values the unique-values tool returns;
#: everything is billed as prompt tokens, so unbounded output would make
#: the tool uneconomical (the paper makes the same argument).
MAX_UNIQUE_VALUES = 60

#: Textual similarity above which the querying tool reports 'matched'
#: (the paper's plausibility threshold, Section 4).
TEXT_MATCH_THRESHOLD = 0.7


def format_tool_error(error: BaseException) -> str:
    """Render one exception as a stable tool observation.

    Every error path of every tool goes through here so the agent
    transcript — which seeds the simulated LLM's RNG — cannot drift with
    the Python version. Three tiers:

    * :class:`EmptyResultError` — verbatim. Its message is the paper's
      Figure 4 observation (``index 0 is out of bounds ...``) and both
      the simulated agent policy and tests key on the exact text.
    * Other :class:`SqlError` — ``Error: <message>``. These messages are
      authored by this repo's engine, so they are stable by construction.
    * Anything else — ``Error: <TypeName>`` only; interpreter-authored
      messages change between Python versions, the type name does not.
    """
    if isinstance(error, EmptyResultError):
        return str(error)
    if isinstance(error, SqlError):
        return f"Error: {error}"
    return f"Error: {type(error).__name__}"


class Tool(ABC):
    """One callable tool exposed to the ReAct agent."""

    name: str
    description: str

    @abstractmethod
    def run(self, tool_input: str) -> str:
        """Execute the tool; the returned string becomes the observation."""


class UniqueColumnValuesTool(Tool):
    """Expose distinct column values (first tool of Section 5.3)."""

    name = "unique_column_values"
    description = (
        "List the unique values stored in a column. Input: the column "
        "name, optionally qualified as table.column."
    )

    def __init__(self, database: Database) -> None:
        self._database = database

    def run(self, tool_input: str) -> str:
        column = tool_input.strip().strip("\"'")
        table_name = None
        if "." in column:
            table_name, column = column.split(".", 1)
            table_name = table_name.strip().strip("\"'")
            column = column.strip().strip("\"'")
        tables = (
            [self._database.table(table_name)]
            if table_name and self._database.has_table(table_name)
            else self._database.tables()
        )
        for table in tables:
            if table.has_column(column):
                values = table.unique_column_values(column)
                shown = values[:MAX_UNIQUE_VALUES]
                lines = [column] + [to_text(v) for v in shown]
                if len(values) > len(shown):
                    lines.append(f"... ({len(values) - len(shown)} more)")
                return "\n".join(lines)
        return f"Error: no column named '{column}' in the database"


class DatabaseQueryingTool(Tool):
    """Run a candidate query and give coarse claim-value feedback
    (Algorithm 8)."""

    name = "database_querying"
    description = (
        "Execute a SQL query against the data. Returns the query result "
        "and feedback on whether the result is consistent with the "
        "claimed value."
    )

    def __init__(
        self,
        database: Database,
        claim_value: SqlValue,
        claim_value_text: str,
        *,
        analyze: bool = True,
    ) -> None:
        self._database = database
        self._engine = engine_for(database)
        self._claim_value = claim_value
        self._claim_value_text = claim_value_text
        self._analyze = analyze
        self.queries: list[str] = []
        self.results: list[SqlValue] = []

    def run(self, tool_input: str) -> str:
        sql = tool_input.strip()
        self.queries.append(sql)
        tracer = current_tracer()
        if self._analyze:
            # Statically invalid queries never reach the engine: the
            # observation is the rendered diagnostics (structured codes
            # the agent can act on) instead of whichever runtime error
            # happened to surface first.
            analysis = analyze_sql(sql, self._database)
            if analysis.errors:
                record_rejection()
                # Stamp the verdict onto the open tool_call span so the
                # waterfall shows analyzer rejections without a SQL leaf.
                tracer.annotate(analyzer="rejected")
                return f"Error: {render_diagnostics(analysis.errors)}"
            tracer.annotate(analyzer="ok")
        try:
            result = self._engine.execute(sql).first_cell()
        except SqlError as error:
            tracer.annotate(sql_error=type(error).__name__)
            return format_tool_error(error)
        self.results.append(result)
        feedback = self._feedback(result)
        tracer.annotate(feedback=feedback)
        return f"[{to_text(result)}, '{feedback}']"

    def _feedback(self, result: SqlValue) -> str:
        """GetFeedback of Algorithm 8: coarse, value-free comparison."""
        claim_number = coerce_numeric(self._claim_value)
        if claim_number is not None:
            result_number = coerce_numeric(result)
            if result_number is None:
                return "Result is not numeric but a number was expected"
            if numeric_values_match(result_number, self._claim_value_text):
                return "Value is correct"
            if same_order_of_magnitude(result_number, claim_number):
                direction = (
                    "greater" if result_number > claim_number else "smaller"
                )
                return f"Value is close but {direction} than expected"
            if result_number > claim_number:
                return "Value is greater than expected"
            return "Value is smaller than expected"
        if result is None:
            return "Value mismatched"
        similarity = text_similarity(to_text(result), str(self._claim_value))
        if similarity >= TEXT_MATCH_THRESHOLD:
            return "Value matched"
        return "Value mismatched"
