"""The iterative ReAct agent loop (paper Algorithm 7).

The loop is model-agnostic: it sends the base prompt plus the scratchpad of
prior steps to an :class:`~repro.llm.base.LLMClient`, parses the reply in
ReAct format, executes the requested tool, and appends the observation —
until the model produces a final answer or the iteration cap is reached.
Every SQL query issued through the ``database_querying`` tool is logged, so
the post-processing stage (Algorithm 9) can reconstruct one complete query
from the trace.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.llm.base import LLMClient
from repro.obs.tracer import current_tracer

from .tools import Tool
from .trace import AgentStep, AgentTrace

#: Hard cap on thought/action/observation iterations per claim; the paper's
#: agent terminates quickly (Figure 4 uses three tool calls), and the cap
#: bounds the cost of pathological loops.
MAX_ITERATIONS = 8

_ACTION_PATTERN = re.compile(
    r"Action:\s*(?P<action>[\w-]+)\s*\nAction Input:\s*(?P<input>.*?)"
    r"(?=\n(?:Thought|Action|Observation|Final Answer):|\Z)",
    re.DOTALL,
)
_FINAL_PATTERN = re.compile(r"Final Answer:\s*(?P<answer>.*)", re.DOTALL)
_THOUGHT_PATTERN = re.compile(
    r"Thought:\s*(?P<thought>.*?)(?=\n(?:Action|Final Answer):|\Z)", re.DOTALL
)


@dataclass
class ReActResult:
    """Outcome of one agent run."""

    queries: list[str] = field(default_factory=list)
    trace: AgentTrace = field(default_factory=AgentTrace)
    final_answer: str | None = None


class ReActAgent:
    """Runs the thought/action/observation loop for one claim."""

    def __init__(
        self,
        client: LLMClient,
        tools: list[Tool],
        max_iterations: int = MAX_ITERATIONS,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self._client = client
        self._tools = {tool.name: tool for tool in tools}
        self._max_iterations = max_iterations

    def run(self, base_prompt: str, temperature: float = 0.0) -> ReActResult:
        """Execute the loop, returning issued queries and the full trace."""
        result = ReActResult()
        scratchpad: list[str] = []
        tracer = current_tracer()
        for index in range(1, self._max_iterations + 1):
            prompt = base_prompt + "\n".join(scratchpad)
            with tracer.span(
                f"step:{index}", "agent_step", step=index
            ) as step_span:
                response = self._client.complete(prompt, temperature)
                thought, action, action_input, final = _parse_reply(
                    response.text
                )
                step = AgentStep(thought, action, action_input)
                if final is not None:
                    result.trace.steps.append(step)
                    result.trace.final_answer = final
                    result.final_answer = final
                    result.trace.stopped_reason = "finished"
                    step_span.set(outcome="final_answer")
                    return result
                if action is None:
                    # The model produced only reasoning; keep iterating.
                    result.trace.steps.append(step)
                    scratchpad.append(step.render())
                    step_span.set(outcome="thought_only")
                    continue
                step_span.set(outcome="action", action=action)
                tool = self._tools.get(action)
                if tool is None:
                    observation = (
                        f"Error: unknown tool '{action}'. Available tools: "
                        f"{', '.join(sorted(self._tools))}"
                    )
                else:
                    with tracer.span(action, "tool_call", tool=action):
                        observation = tool.run(action_input or "")
                if action == "database_querying" and action_input:
                    result.queries.append(action_input.strip())
                step.observation = observation
                result.trace.steps.append(step)
                scratchpad.append(step.render())
        result.trace.stopped_reason = "iteration_limit"
        return result


def _parse_reply(
    text: str,
) -> tuple[str, str | None, str | None, str | None]:
    """Split one model reply into (thought, action, input, final_answer)."""
    final_match = _FINAL_PATTERN.search(text)
    thought_match = _THOUGHT_PATTERN.search(text)
    thought = (
        thought_match.group("thought").strip() if thought_match else text.strip()
    )
    if final_match:
        return thought, None, None, final_match.group("answer").strip()
    action_match = _ACTION_PATTERN.search(text)
    if action_match:
        return (
            thought,
            action_match.group("action").strip(),
            action_match.group("input").strip(),
            None,
        )
    return thought, None, None, None


def parse_scratchpad(prompt: str) -> list[AgentStep]:
    """Recover prior steps from a prompt's scratchpad section.

    Used by the simulated agent policy, which is stateless across LLM
    calls: it re-reads what has happened so far from the prompt, exactly
    as a real model would.
    """
    steps: list[AgentStep] = []
    pattern = re.compile(
        r"Thought:\s*(?P<thought>.*?)\n"
        r"(?:Action:\s*(?P<action>[\w-]+)\s*\n"
        r"Action Input:\s*(?P<input>.*?)\n"
        r"Observation:\s*(?P<obs>.*?))?"
        r"(?=\nThought:|\Z)",
        re.DOTALL,
    )
    marker = prompt.find("Begin!")
    section = prompt[marker:] if marker >= 0 else prompt
    for match in pattern.finditer(section):
        steps.append(
            AgentStep(
                thought=match.group("thought").strip(),
                action=(match.group("action") or "").strip() or None,
                action_input=(match.group("input") or "").strip() or None,
                observation=(match.group("obs") or "").strip() or None,
            )
        )
    return steps
