"""Structured records of an agent run (thoughts, actions, observations)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AgentStep:
    """One ReAct iteration."""

    thought: str
    action: str | None = None
    action_input: str | None = None
    observation: str | None = None

    def render(self) -> str:
        """Render the step in the scratchpad format the LLM sees."""
        lines = [f"Thought: {self.thought}"]
        if self.action is not None:
            lines.append(f"Action: {self.action}")
            lines.append(f"Action Input: {self.action_input or ''}")
        if self.observation is not None:
            lines.append(f"Observation: {self.observation}")
        return "\n".join(lines)


@dataclass
class AgentTrace:
    """The full record of one agent run over a single claim."""

    steps: list[AgentStep] = field(default_factory=list)
    final_answer: str | None = None
    stopped_reason: str = "finished"

    def render(self) -> str:
        """Render the whole trace (used in prompts and in the demo example)."""
        parts = [step.render() for step in self.steps]
        if self.final_answer is not None:
            parts.append(f"Final Answer: {self.final_answer}")
        return "\n".join(parts)

    @property
    def iterations(self) -> int:
        return len(self.steps)
