"""Prompt construction for the ReAct verification agent.

The template extends the one-shot prompt (paper Figure 3) with tool
descriptions and the ReAct format instructions, following the standard
LangChain ReAct template the paper references.
"""

from __future__ import annotations

from repro.llm.simulated import AGENT_PROMPT_MARKER

from .tools import Tool

_REACT_FORMAT = """Use the following format:

Thought: reason about what to do next
Action: the tool to use, one of [{tool_names}]
Action Input: the input to the tool
Observation: the result of the tool
... (this Thought/Action/Action Input/Observation can repeat N times)
Thought: I now know the final answer
Final Answer: the value that replaces "x" in the claim"""


def agent_prompt(
    masked_claim: str,
    value_type: str,
    db_schema: str,
    sample_text: str,
    context: str,
    tools: list[Tool],
) -> str:
    """Build the base agent prompt for one claim.

    The scratchpad (prior thoughts/actions/observations) is appended by the
    ReAct loop on every iteration.
    """
    tool_lines = "\n".join(f"- {t.name}: {t.description}" for t in tools)
    tool_names = ", ".join(t.name for t in tools)
    type_clause = f' where "x" is a "{value_type}" value' if value_type else ""
    sample_block = f"\n{sample_text}\n" if sample_text else ""
    return f"""Given the claim "{masked_claim}"{type_clause}, you must think about a question that generates "x" as the answer and then find the SQL query that answers that question by interacting with the database.

You must use the schema of the following table called "table".
{db_schema}

{AGENT_PROMPT_MARKER}:
{tool_lines}

{_REACT_FORMAT.format(tool_names=tool_names)}
{sample_block}
The following context information might help to form the SQL query.
{context}

Begin!

"""
