"""Simulated agent policy: the ReAct "brain" of the offline LLM.

A real agent LLM reads the prompt (claim + tools + scratchpad) and decides
the next thought/action. This policy reproduces that decision process with
a seeded noise model, consuming the same information a real model would:

* no prior steps → propose an initial query (reference translation on a
  successful skill draw, a corruption otherwise; claims whose constants
  are not guessable fall into the lookup trap — Figure 4's
  'United States' instead of 'USA');
* an error observation (empty result) → consult ``unique_column_values``
  for the offending column, then emit the corrected query;
* 'greater'/'smaller'/'mismatched' feedback → attempt a repair with the
  model's repair skill, giving up after a few failed queries;
* claims whose reference uses a scalar sub-query are solved *stepwise*
  (the paper's motivation for Algorithm 9): the agent first runs the inner
  query, then a trivial outer query with the observed constant inlined.

The policy is installed on a :class:`~repro.llm.simulated.SimulatedLLM`
via :func:`install_agent_policy`; the ReAct loop in :mod:`.react` never
knows it is talking to a simulation.
"""

from __future__ import annotations

import random

from repro.llm.corruption import corrupt_query, trap_query
from repro.llm.simulated import (
    SAMPLE_MARKER,
    ModelBehaviour,
    SimulatedLLM,
    hard_claim_factor,
)
from repro.llm.world import ClaimKnowledge

from .react import parse_scratchpad
from .trace import AgentStep

#: After this many unsuccessful database_querying attempts the policy
#: concedes and produces a final answer from the best result so far.
GIVE_UP_AFTER_QUERIES = 3

#: Marker feedbacks produced by the querying tool (see tools.py).
_SUCCESS_FEEDBACK = ("Value is correct", "Value matched")
_CLOSE_FEEDBACK = ("Value is close",)


def install_agent_policy(client: SimulatedLLM) -> SimulatedLLM:
    """Install the simulated ReAct policy on a client and return it."""
    client.agent_policy = _agent_policy
    return client


def agent_success_probability(
    knowledge: ClaimKnowledge, behaviour: ModelBehaviour, has_sample: bool
) -> float:
    """Probability that the agent's *initial* query is the right one.

    Difficulty weighs less than for one-shot translation because the agent
    observes the schema plus feedback; units and joins also penalise less
    (tools let the agent inspect the data).
    """
    probability = (
        behaviour.agent_initial_skill
        - 0.45 * behaviour.difficulty_slope * knowledge.difficulty
    )
    if has_sample:
        probability += behaviour.sample_bonus
    if knowledge.needs_unit_conversion:
        probability -= (1.0 - behaviour.unit_conversion_skill) / 2.0
    if knowledge.join_required:
        probability -= behaviour.join_penalty / 2.0
    probability *= hard_claim_factor(knowledge)
    return min(0.98, max(0.03, probability))


def _agent_policy(
    knowledge: ClaimKnowledge,
    value_visible: bool,
    behaviour: ModelBehaviour,
    prompt: str,
    rng: random.Random,
) -> str:
    steps = parse_scratchpad(prompt)
    query_steps = [
        s for s in steps if s.action == "database_querying" and s.action_input
    ]
    used_lookup = any(s.action == "unique_column_values" for s in steps)
    has_sample = SAMPLE_MARKER in prompt

    if not steps or not query_steps:
        return _initial_move(knowledge, behaviour, has_sample, rng)

    last = query_steps[-1]
    observation = last.observation or ""
    last_sql = (last.action_input or "").strip()

    # Stepwise plan: if the last query was a decomposition step, move on to
    # the next step (or finish) regardless of the coarse feedback —
    # intermediate results are not supposed to match the claim value.
    plan_move = _advance_plan(knowledge, last_sql, observation)
    if plan_move is not None:
        return plan_move

    if used_lookup and _after_lookup(steps):
        # The unique values revealed the stored constant; emit the
        # corrected query (Figure 4's second database_querying call).
        return _render_action(
            "The unique values show the constant stored in the data; I "
            "will correct the filter and re-run the query.",
            "database_querying",
            _corrected_query(knowledge),
        )

    if _is_error(observation):
        if knowledge.lookup_trap is not None and not used_lookup:
            trap = knowledge.lookup_trap
            return _render_action(
                "The query returned no rows. The constant in the filter may "
                "not match how values are stored; I will inspect the unique "
                f"values of the '{trap.column}' column.",
                "unique_column_values",
                trap.column,
            )
        return _repair_or_concede(
            knowledge, behaviour, query_steps, observation, rng
        )

    if any(marker in observation for marker in _SUCCESS_FEEDBACK):
        return _finish(observation)

    if _matches_reference(knowledge, last_sql):
        # The agent issued the translation it believes in; coarse feedback
        # (close/greater/smaller) does not shake that belief — an
        # incorrect claim is *expected* to mismatch the correct query.
        return _finish(observation)

    return _repair_or_concede(
        knowledge, behaviour, query_steps, observation, rng
    )


# -- move constructors -------------------------------------------------------


def _initial_move(
    knowledge: ClaimKnowledge,
    behaviour: ModelBehaviour,
    has_sample: bool,
    rng: random.Random,
) -> str:
    if (
        knowledge.misread_sql is not None
        and rng.random() < behaviour.misread_prob
    ):
        # The same tempting misinterpretation one-shot models fall for;
        # the agent can still escape it through tool feedback.
        return _render_action(
            "Based on the schema, one column matches the claim's phrasing "
            "directly; I will query it.",
            "database_querying",
            knowledge.misread_sql,
        )
    probability = agent_success_probability(knowledge, behaviour, has_sample)
    if rng.random() < probability:
        if len(knowledge.decomposition) >= 2:
            return _render_action(
                "The claim needs an intermediate value; I will decompose "
                "the problem and query for the inner value first.",
                "database_querying",
                knowledge.decomposition[0],
            )
        sql = knowledge.reference_sql
        if (
            knowledge.lookup_trap is not None
            and rng.random() >= behaviour.lookup_known_prob
        ):
            sql = trap_query(knowledge)
        return _render_action(
            "Based on the schema, the claim maps to a query over the "
            f"{knowledge.table_name} data; I will test it.",
            "database_querying",
            sql,
        )
    return _render_action(
        "I will try a query that should produce the masked value.",
        "database_querying",
        corrupt_query(knowledge, rng),
    )


def _advance_plan(
    knowledge: ClaimKnowledge, last_sql: str, observation: str
) -> str | None:
    plan = knowledge.decomposition
    if len(plan) < 2 or _is_error(observation):
        return None
    normalised = _normalise(last_sql)
    for index, step_sql in enumerate(plan):
        if _normalise(step_sql) == normalised:
            if index + 1 < len(plan):
                return _render_action(
                    "With the intermediate value known, I can query for "
                    "the claimed value directly.",
                    "database_querying",
                    plan[index + 1],
                )
            return _finish(observation)
    return None


def _repair_or_concede(
    knowledge: ClaimKnowledge,
    behaviour: ModelBehaviour,
    query_steps: list[AgentStep],
    observation: str,
    rng: random.Random,
) -> str:
    if len(query_steps) >= GIVE_UP_AFTER_QUERIES:
        return _finish(observation, conceded=True)
    if (
        knowledge.misread_sql is not None
        and rng.random() < min(0.9, 1.6 * behaviour.misread_prob)
    ):
        # The misreading persists: after coarse feedback the agent
        # re-convinces itself of the same tempting interpretation —
        # it is the same model family that misread the claim one-shot.
        return _render_action(
            "Re-reading the claim, the column I queried still looks like "
            "the best match; I will re-check it.",
            "database_querying",
            knowledge.misread_sql,
        )
    if (
        knowledge.claim_type == "numeric"
        and rng.random() < behaviour.feedback_fit_prob
    ):
        # Feedback fitting: instead of fixing the semantics, the agent
        # chases the greater/smaller signal until the tool reports a
        # match — a constant query that verifies nothing (the residual
        # cheat Section 5.3's coarse feedback cannot fully prevent).
        fitted = knowledge.claim_value_text.replace(",", "")
        return _render_action(
            "The feedback narrows the value down; I will test the exact "
            "figure directly.",
            "database_querying",
            f"SELECT {fitted}",
        )
    repair_probability = behaviour.agent_repair_skill * hard_claim_factor(
        knowledge
    )
    if rng.random() < repair_probability:
        if knowledge.lookup_trap is not None and not _knows_constant(
            knowledge, query_steps
        ):
            trap = knowledge.lookup_trap
            return _render_action(
                "Before revising the query I will check which constants "
                f"the '{trap.column}' column actually contains.",
                "unique_column_values",
                trap.column,
            )
        if len(knowledge.decomposition) >= 2:
            return _render_action(
                "I will decompose the problem and query for the inner "
                "value first.",
                "database_querying",
                knowledge.decomposition[0],
            )
        return _render_action(
            "The feedback suggests the previous query was wrong; I will "
            "revise it against the schema.",
            "database_querying",
            knowledge.reference_sql,
        )
    return _render_action(
        "I will try an alternative formulation of the query.",
        "database_querying",
        corrupt_query(knowledge, rng),
    )


def _corrected_query(knowledge: ClaimKnowledge) -> str:
    if len(knowledge.decomposition) >= 2:
        return knowledge.decomposition[0]
    return knowledge.reference_sql


# -- helpers -----------------------------------------------------------------


def _render_action(thought: str, action: str, action_input: str) -> str:
    return f"Thought: {thought}\nAction: {action}\nAction Input: {action_input}"


def _finish(observation: str, conceded: bool = False) -> str:
    value = _value_from_observation(observation)
    if conceded:
        thought = (
            "I cannot find a better query; I will report the best result."
        )
    else:
        thought = "I now know the final answer."
    return f"Thought: {thought}\nFinal Answer: {value}"


def _value_from_observation(observation: str) -> str:
    text = observation.strip()
    if text.startswith("[") and "," in text:
        return text[1:].split(",", 1)[0].strip()
    return text or "unknown"


def _is_error(observation: str) -> bool:
    lowered = observation.lower()
    return (
        "out of bounds" in lowered
        or lowered.startswith("error")
        or "no column" in lowered
        or "no table" in lowered
        or "expected" in lowered and "found" in lowered and "line" not in lowered
    )


def _after_lookup(steps: list[AgentStep]) -> bool:
    """True when the most recent completed step was a unique-values lookup."""
    for step in reversed(steps):
        if step.action:
            return step.action == "unique_column_values"
    return False


def _matches_reference(knowledge: ClaimKnowledge, sql: str) -> bool:
    reference = _normalise(knowledge.reference_sql)
    candidate = _normalise(sql)
    if candidate == reference:
        return True
    return any(
        _normalise(step) == candidate for step in knowledge.decomposition
    )


def _knows_constant(
    knowledge: ClaimKnowledge, query_steps: list[AgentStep]
) -> bool:
    trap = knowledge.lookup_trap
    if trap is None:
        return True
    needle = trap.right_constant.lower()
    return any(
        needle in (s.action_input or "").lower() for s in query_steps
    )


def _normalise(sql: str) -> str:
    return " ".join(sql.split()).rstrip(";").lower()
