"""ReAct agent framework for claim verification (paper Section 5.3)."""

from .policy import agent_success_probability, install_agent_policy
from .prompts import agent_prompt
from .react import MAX_ITERATIONS, ReActAgent, ReActResult, parse_scratchpad
from .tools import (
    DatabaseQueryingTool,
    Tool,
    UniqueColumnValuesTool,
    format_tool_error,
)
from .trace import AgentStep, AgentTrace

__all__ = [
    "AgentStep",
    "AgentTrace",
    "DatabaseQueryingTool",
    "MAX_ITERATIONS",
    "ReActAgent",
    "ReActResult",
    "Tool",
    "UniqueColumnValuesTool",
    "agent_prompt",
    "agent_success_probability",
    "format_tool_error",
    "install_agent_policy",
    "parse_scratchpad",
]
