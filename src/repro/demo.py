"""The demonstration front-end (the SIGMOD demo paper's artifact).

The demo walks the audience through CEDAR's pipeline on a chosen
document: the tunable accuracy threshold, the profiling-derived schedule,
per-claim verdicts with the SQL evidence, an agent trace for a claim that
needed escalation, and the money spent — the same storyline as the
on-site demonstration, rendered for a terminal.

Usage::

    python -m repro.demo --list
    python -m repro.demo --document 3 --threshold 0.9
    python -m repro.demo --dataset tabfact --document 0 --verbose
    python -m repro.demo --workers 4          # parallel executor
    python -m repro.demo serve --port 8000    # HTTP service front end
"""

from __future__ import annotations

import argparse
import sys

from repro.core import VerifierConfig, describe_schedule, optimal_schedule
from repro.datasets import (
    DatasetBundle,
    build_aggchecker,
    build_tabfact,
    build_wikitext,
)
from repro.experiments import build_cedar, profile_system, reset_claims
from repro.metrics import score_claims

_DATASETS = {
    "aggchecker": lambda: build_aggchecker(document_count=12,
                                           total_claims=72),
    "tabfact": lambda: build_tabfact(table_count=8, total_claims=28),
    "wikitext": lambda: build_wikitext(document_count=5, total_claims=18),
}

_RULE = "=" * 72


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.demo",
        description="Interactive-style CEDAR demonstration.",
    )
    parser.add_argument("--dataset", choices=sorted(_DATASETS),
                        default="aggchecker")
    parser.add_argument("--document", type=int, default=0,
                        help="index of the document to verify")
    parser.add_argument("--threshold", type=float, default=0.99,
                        help="accuracy threshold (the cost-quality dial)")
    parser.add_argument("--list", action="store_true",
                        help="list the dataset's documents and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="also print an agent trace when one exists")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="verifier threads (1 = sequential Algorithm 1)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the run "
                             "(load it in https://ui.perfetto.dev)")
    parser.add_argument("--trace-summary", action="store_true",
                        help="print a per-span self-time table (where the "
                             "run's wall-clock actually went)")
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # The service front end owns its own flags (--port, --queue-depth,
        # …); hand the rest of the command line straight to it.
        from repro.service.__main__ import main as serve_main
        return serve_main(argv[1:])
    arguments = build_parser().parse_args(argv)
    if arguments.workers < 1:
        print("workers must be at least 1", file=sys.stderr)
        return 2
    if not 0.0 < arguments.threshold <= 1.0:
        print("threshold must be in (0, 1]", file=sys.stderr)
        return 2
    bundle = _DATASETS[arguments.dataset]()
    if arguments.list:
        _list_documents(bundle)
        return 0
    if not 0 <= arguments.document < len(bundle.documents):
        print(
            f"document index out of range (0..{len(bundle.documents) - 1})",
            file=sys.stderr,
        )
        return 2
    _run_demo(bundle, arguments)
    return 0


def _list_documents(bundle: DatasetBundle) -> None:
    print(f"{bundle.name}: {len(bundle.documents)} documents")
    for index, document in enumerate(bundle.documents):
        incorrect = sum(
            1 for c in document.claims
            if not c.metadata.get("label_correct", True)
        )
        print(f"  [{index:2}] {document.title:45} "
              f"{len(document.claims)} claims ({incorrect} seeded errors)")


def _run_demo(bundle: DatasetBundle, arguments) -> None:
    from repro.obs import (
        NULL_TRACER,
        Tracer,
        self_time_table,
        write_chrome_trace,
    )

    tracer = (
        Tracer(trace_id=f"demo-{bundle.name}")
        if arguments.trace or arguments.trace_summary else NULL_TRACER
    )
    target = bundle.documents[arguments.document]
    profiling_docs = [
        d for i, d in enumerate(bundle.documents)
        if i != arguments.document
    ][:3]

    print(_RULE)
    print("CEDAR — cost-efficient data-driven claim verification")
    print(_RULE)
    print(f"dataset:   {bundle.name}")
    print(f"document:  {target.title}")
    print(f"threshold: {arguments.threshold:.0%} "
          "(lower = cheaper, less thorough)")

    system = build_cedar(
        bundle,
        seed=arguments.seed,
        config=VerifierConfig(workers=arguments.workers),
    )
    if arguments.workers > 1:
        print(f"executor:  {arguments.workers} worker threads")
    print(f"\n[1/3] profiling {len(profiling_docs)} labeled documents …")
    profiles = profile_system(system, profiling_docs)
    for name, profile in profiles.items():
        print(f"      {name:28} accuracy={profile.accuracy:4.2f} "
              f"${profile.cost:.5f}/claim")

    planned = optimal_schedule(profiles, arguments.threshold)
    print(f"\n[2/3] cost-optimal schedule: {describe_schedule(planned)}")

    reset_claims([target])
    checkpoint = system.ledger.checkpoint()
    run = system.verifier.verify_documents(
        [target], system.entries_for(planned), tracer=tracer
    )

    print(f"\n[3/3] verified {len(target.claims)} claims:")
    agent_trace_shown = not arguments.verbose
    for claim in target.claims:
        report = run.report_for(claim)
        marker = "  OK   " if claim.correct else "FLAGGED"
        print(f"\n  [{marker}] {claim.sentence}")
        print(f"          stage: {report.verified_by or 'fallback'}, "
              f"attempts: {report.attempts}")
        if claim.query:
            print(f"          query: {claim.query}")
        if not agent_trace_shown and report.verified_by \
                and "agent" in report.verified_by:
            agent_trace_shown = True
            print("          (agent-verified claim; escalation paid off)")

    counts = score_claims(target.claims)
    spent = system.ledger.totals_since(checkpoint)
    print()
    print(_RULE)
    print(f"detection vs seeded errors: precision {counts.precision:.0%}, "
          f"recall {counts.recall:.0%}")
    print(f"spend: ${spent.cost:.4f} / {spent.calls} LLM calls / "
          f"{spent.total_tokens} tokens")
    print(_RULE)
    if arguments.trace:
        write_chrome_trace(tracer, arguments.trace,
                           process_name=f"cedar:{bundle.name}")
        print(f"trace: {tracer.span_count()} spans -> {arguments.trace} "
              "(open in https://ui.perfetto.dev)")
    if arguments.trace_summary:
        _print_trace_summary(self_time_table(tracer.roots))


def _print_trace_summary(rows: list[dict]) -> None:
    """Per-span-name self-time table: where the wall-clock went."""
    if not rows:
        print("trace summary: no spans recorded")
        return
    print("\ntrace summary (self time = span minus its children):")
    name_width = max(len("span"), max(len(r["name"]) for r in rows))
    print(f"  {'span':{name_width}}  {'kind':10}  {'count':>5}  "
          f"{'self (s)':>9}  {'total (s)':>9}")
    for row in rows:
        print(f"  {row['name']:{name_width}}  {row['kind']:10}  "
              f"{row['count']:5d}  {row['self_seconds']:9.4f}  "
              f"{row['total_seconds']:9.4f}")


if __name__ == "__main__":
    sys.exit(main())
