"""Text embeddings for textual-claim similarity (MiniLM-L6 substitute)."""

from .minisim import (
    EMBEDDING_DIM,
    MiniSimLM,
    cosine_similarity,
    default_model,
    text_similarity,
)

__all__ = [
    "EMBEDDING_DIM",
    "MiniSimLM",
    "cosine_similarity",
    "default_model",
    "text_similarity",
]
