"""MiniSimLM: a deterministic stand-in for the MiniLM-L6 sentence encoder.

The paper uses MiniLM embeddings for exactly one job: scoring the semantic
similarity of two *short* strings (a textual claim value vs. a query
result), with thresholds of 0.7 (plausibility) and 0.8 (correctness), and
with tolerance for abbreviations and spelling mistakes.

Character n-gram hashing has the same similarity profile on short strings:
identical strings score 1.0, typo variants score high, unrelated strings
score near 0, and shared-word variants land in between. The embedding is a
bag of hashed character trigrams (plus word unigrams for a word-level
signal), L2-normalised, so cosine similarity is a direct overlap measure.
"""

from __future__ import annotations

import hashlib
import math

#: Dimensionality of the hashed embedding space. Large enough that hash
#: collisions are negligible for short strings.
EMBEDDING_DIM = 512

_NGRAM_SIZE = 3
_WORD_WEIGHT = 2.0


class MiniSimLM:
    """Hash-based character n-gram sentence encoder with a cosine API.

    The public surface mirrors a sentence-transformers model closely enough
    for CEDAR's needs: ``encode(text) -> list[float]`` plus a convenience
    ``similarity(a, b) -> float``.
    """

    def __init__(self, dimension: int = EMBEDDING_DIM) -> None:
        if dimension < 8:
            raise ValueError("embedding dimension must be at least 8")
        self.dimension = dimension
        self._cache: dict[str, list[float]] = {}

    def encode(self, text: str) -> list[float]:
        """Encode a string into a normalised dense vector."""
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        vector = [0.0] * self.dimension
        for feature, weight in self._features(text):
            index = self._hash_feature(feature)
            vector[index] += weight
        norm = math.sqrt(sum(v * v for v in vector))
        if norm > 0:
            vector = [v / norm for v in vector]
        if len(self._cache) > 50_000:
            self._cache.clear()
        self._cache[text] = vector
        return vector

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity of two strings in [0, 1]."""
        return cosine_similarity(self.encode(left), self.encode(right))

    def _features(self, text: str):
        normalised = _normalise(text)
        if not normalised:
            return
        padded = f"  {normalised}  "
        for i in range(len(padded) - _NGRAM_SIZE + 1):
            yield padded[i:i + _NGRAM_SIZE], 1.0
        for word in normalised.split():
            yield f"w:{word}", _WORD_WEIGHT

    def _hash_feature(self, feature: str) -> int:
        digest = hashlib.blake2s(feature.encode("utf-8"),
                                 digest_size=4).digest()
        return int.from_bytes(digest, "big") % self.dimension


def cosine_similarity(left: list[float], right: list[float]) -> float:
    """Cosine similarity of two equal-length vectors, clamped to [0, 1].

    Vectors from :class:`MiniSimLM` are non-negative, so the cosine is
    already in [0, 1]; clamping guards against float error.
    """
    if len(left) != len(right):
        raise ValueError("vectors must have equal dimension")
    dot = sum(a * b for a, b in zip(left, right))
    norm_left = math.sqrt(sum(a * a for a in left))
    norm_right = math.sqrt(sum(b * b for b in right))
    if norm_left == 0 or norm_right == 0:
        return 0.0
    return max(0.0, min(1.0, dot / (norm_left * norm_right)))


def _normalise(text: str) -> str:
    lowered = text.lower().strip()
    cleaned = "".join(ch if ch.isalnum() or ch.isspace() else " "
                      for ch in lowered)
    return " ".join(cleaned.split())


_DEFAULT_MODEL: MiniSimLM | None = None


def default_model() -> MiniSimLM:
    """Return the process-wide shared encoder (embeddings are cached)."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = MiniSimLM()
    return _DEFAULT_MODEL


def text_similarity(left: str, right: str) -> float:
    """Similarity of two strings using the shared default encoder."""
    return default_model().similarity(left, right)
