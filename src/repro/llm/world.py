"""The claim world: what the simulated LLM "understands" about claims.

A real LLM reads a masked claim plus a schema and produces SQL from its
language understanding. Offline, that understanding is supplied by a
:class:`ClaimWorld` — a registry mapping each claim's masked sentence to a
:class:`ClaimKnowledge` record holding the reference translation and the
claim's difficulty features. Dataset generators populate the world as they
generate claims; the simulated model consults it (with noise) when asked.

CEDAR's own verification code never touches this module: the world is part
of the LLM substitute, not of the system under test.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LookupTrap:
    """A constant-mismatch hazard (paper Figure 4's 'United States' vs 'USA').

    The natural phrasing of the claim suggests ``wrong_constant`` for
    ``column``, but the data actually stores ``right_constant``. One-shot
    models mostly fall into the trap; agents can escape it through the
    ``unique_column_values`` tool.
    """

    column: str
    wrong_constant: str
    right_constant: str


@dataclass
class ClaimKnowledge:
    """Everything the simulated LLM could know about one claim."""

    claim_id: str
    masked_sentence: str
    unmasked_sentence: str
    reference_sql: str
    claim_value_text: str
    claim_type: str  # "numeric" | "text"
    difficulty: float
    table_name: str
    columns: tuple[str, ...]
    lookup_trap: LookupTrap | None = None
    #: A specific wrong-but-tempting translation (e.g. a sibling column
    #: whose name also fits the claim's phrasing). When set, models tend
    #: to produce *this* query rather than an independent random error —
    #: retries are correlated, which is exactly the deviation from
    #: Assumption 1/2 the paper discusses in Section 6.4.
    misread_sql: str | None = None
    #: True for claims whose phrasing genuinely under-determines the query
    #: (the hard tail every real document contains). For these, failure is
    #: a property of the claim, not a coin flip retries can fix.
    ambiguous: bool = False
    decomposition: tuple[str, ...] = ()
    unit_factor: float = 1.0
    naive_unit_sql: str | None = None
    join_required: bool = False
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError(f"difficulty {self.difficulty} out of [0, 1]")
        if self.claim_type not in ("numeric", "text"):
            raise ValueError(f"unknown claim type {self.claim_type!r}")

    @property
    def needs_unit_conversion(self) -> bool:
        """True when claim units differ from data units (Section 7.3.1)."""
        return self.unit_factor != 1.0


_CLAIM_PATTERN = re.compile(r'the claim\s+"((?:[^"\\]|\\.)*)"', re.IGNORECASE)


class ClaimWorld:
    """Registry of claim knowledge keyed by (masked and unmasked) sentence."""

    def __init__(self) -> None:
        self._by_sentence: dict[str, ClaimKnowledge] = {}
        self._by_id: dict[str, ClaimKnowledge] = {}

    def register(self, knowledge: ClaimKnowledge) -> None:
        """Add one claim; masked and unmasked sentences both become keys."""
        if knowledge.claim_id in self._by_id:
            raise ValueError(f"duplicate claim id {knowledge.claim_id!r}")
        self._by_id[knowledge.claim_id] = knowledge
        self._by_sentence[knowledge.masked_sentence] = knowledge
        self._by_sentence[knowledge.unmasked_sentence] = knowledge

    def by_id(self, claim_id: str) -> ClaimKnowledge:
        return self._by_id[claim_id]

    def has_sentence(self, sentence: str) -> bool:
        """True when a claim with this (masked or unmasked) sentence exists.

        Dataset generators use this to keep sentences unique: the sentence
        is the key the simulated model recognises claims by, so two claims
        may never share one.
        """
        return sentence in self._by_sentence

    def __len__(self) -> int:
        return len(self._by_id)

    def recognise(self, prompt: str) -> tuple[ClaimKnowledge, bool] | None:
        """Find the claim a prompt is about.

        Returns ``(knowledge, value_visible)`` where ``value_visible`` is
        True when the prompt contains the *unmasked* sentence — i.e. the
        caller failed to obfuscate the claim value, which tempts the model
        into the Figure 2 cheat. Returns None for unrecognised prompts.

        Fast path: extract the quoted sentence after 'the claim "…"' (the
        Figure 3 phrasing); slow path: substring scan over all keys.
        """
        for match in _CLAIM_PATTERN.finditer(prompt):
            knowledge = self._by_sentence.get(match.group(1))
            if knowledge is not None:
                visible = knowledge.unmasked_sentence in prompt
                return knowledge, visible
        for sentence, knowledge in self._by_sentence.items():
            if sentence and sentence in prompt:
                visible = knowledge.unmasked_sentence in prompt
                return knowledge, visible
        return None
