"""Approximate token counting for cost accounting.

Real LLM billing is per BPE token. Offline we approximate with the standard
heuristic that one token is about four characters of English text, blended
with the word count so that code-heavy text (dense punctuation, long
identifiers) is not under-counted. The absolute scale matches OpenAI's
tokenizer within ~15 % on mixed prose/SQL, which is ample for reproducing
*relative* cost orderings.
"""

from __future__ import annotations

import math


def count_tokens(text: str) -> int:
    """Estimate the number of BPE tokens in a string."""
    if not text:
        return 0
    words = len(text.split())
    chars = len(text)
    # Prose averages ~4 chars/token; punctuation-heavy text tokenises
    # closer to one token per word-ish chunk. Take a weighted blend.
    estimate = 0.4 * words + 0.6 * (chars / 4.0)
    return max(1, math.ceil(estimate))


def truncate_to_tokens(text: str, max_tokens: int) -> str:
    """Truncate a string to approximately ``max_tokens`` tokens.

    Used by the TAPEX baseline to model its bounded input window.
    """
    if max_tokens <= 0:
        return ""
    if count_tokens(text) <= max_tokens:
        return text
    # Binary search on character length for the largest fitting prefix.
    low, high = 0, len(text)
    while low < high:
        mid = (low + high + 1) // 2
        if count_tokens(text[:mid]) <= max_tokens:
            low = mid
        else:
            high = mid - 1
    return text[:low]
