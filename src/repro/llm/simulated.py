"""The simulated GPT: an offline generative model of claim-to-SQL behaviour.

This is the repo's substitute for the paid OpenAI APIs the paper calls
(see DESIGN.md, Substitutions). The model:

* recognises which claim a prompt is about via the :class:`ClaimWorld`;
* draws success/failure from a seeded RNG whose distribution depends on
  the model tier (GPT-3.5 < GPT-4o < GPT-4-turbo), the claim difficulty,
  the presence of a few-shot sample, unit-conversion needs, and joins;
* on success emits the reference SQL, on failure a realistic corruption
  (:mod:`repro.llm.corruption`);
* cheats (emits the claim value as a constant, Figure 2) when the prompt
  leaked the unmasked sentence;
* is deterministic at temperature 0 for identical prompts and randomised
  across retries at temperature > 0 — matching the paper's Assumption 1
  that retries are independent draws.

Agent-style ReAct prompts are delegated to a pluggable policy installed by
:mod:`repro.agents`; this module only handles single-shot completions.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass
from typing import Callable

from .base import LLMClient
from .corruption import cheat_query, corrupt_query, trap_query
from .ledger import CostLedger
from .world import ClaimKnowledge, ClaimWorld

#: Marker the agent prompt template includes; prompts containing it are
#: routed to the installed agent policy.
AGENT_PROMPT_MARKER = "You have access to the following tools"

#: Marker present when the Figure 3 prompt carries a few-shot sample.
SAMPLE_MARKER = "For example, given the claim"

#: Marker of the question-generation step used by the P1/P2 baselines.
QUESTION_MARKER = "Rephrase the claim as a question"

#: Marker of the text-to-SQL step used by the P1/P2 baselines. Generic
#: text-to-SQL prompting lacks CEDAR's claim-specific structure (type
#: hints, query-format suggestions, claim context), which costs accuracy —
#: the penalty models that gap.
TEXT2SQL_MARKER = "Translate the question into a SQL query"
TEXT2SQL_PENALTY = 0.32


@dataclass(frozen=True)
class ModelBehaviour:
    """Skill parameters of one simulated model tier.

    Probabilities are calibrated so the reproduced experiments land in the
    paper's reported ranges; see EXPERIMENTS.md for the resulting numbers.
    """

    oneshot_skill: float        # success prob on a difficulty-0 claim
    difficulty_slope: float     # linear difficulty penalty
    sample_bonus: float         # few-shot sample uplift (Section 4)
    lookup_known_prob: float    # chance of guessing exact data constants
    unit_conversion_skill: float  # multiplier when units must convert
    join_penalty: float         # additive penalty for join queries
    agent_initial_skill: float  # agent's first-query success prob
    agent_repair_skill: float   # per-iteration repair prob after feedback
    cheat_prob: float = 0.85    # Figure 2 cheat rate on unmasked prompts
    #: Probability that, on a failed translation, the model instead emits a
    #: constant equal to the claimed value. Masking hides the value from
    #: the *prompt*, but a web-pretrained model sometimes simply knows the
    #: published figure and echoes it — the residual cheat the paper's
    #: masking cannot eliminate (and a reason its recall is below 100%).
    value_guess_prob: float = 0.0
    #: Probability of emitting the claim's ``misread_sql`` (when one
    #: exists) instead of translating correctly. Misreads persist across
    #: retries of the same model family — the correlated-failure mode that
    #: limits how much retrying can buy (Section 6.4).
    misread_prob: float = 0.0
    #: Agent-only: probability (per stuck iteration) of *fitting the
    #: feedback* instead of fixing the query — bisecting a constant via
    #: the greater/smaller signal until the tool reports a match. The
    #: resulting query returns the claimed value without representing the
    #: claim, exactly the residual cheat Section 5.3 warns the coarse
    #: feedback cannot fully prevent.
    feedback_fit_prob: float = 0.0


BEHAVIOURS: dict[str, ModelBehaviour] = {
    "gpt-3.5-turbo": ModelBehaviour(
        oneshot_skill=0.86,
        difficulty_slope=0.95,
        sample_bonus=0.12,
        lookup_known_prob=0.15,
        unit_conversion_skill=0.80,
        join_penalty=0.35,
        agent_initial_skill=0.84,
        agent_repair_skill=0.30,
        value_guess_prob=0.10,
        misread_prob=0.75,
        feedback_fit_prob=0.52,
    ),
    "gpt-4o-mini": ModelBehaviour(
        oneshot_skill=0.88,
        difficulty_slope=0.90,
        sample_bonus=0.12,
        lookup_known_prob=0.18,
        unit_conversion_skill=0.92,
        join_penalty=0.30,
        agent_initial_skill=0.89,
        agent_repair_skill=0.35,
        value_guess_prob=0.09,
        misread_prob=0.65,
        feedback_fit_prob=0.49,
    ),
    "gpt-4o": ModelBehaviour(
        oneshot_skill=0.94,
        difficulty_slope=0.72,
        sample_bonus=0.08,
        lookup_known_prob=0.25,
        unit_conversion_skill=0.92,
        join_penalty=0.18,
        agent_initial_skill=0.89,
        agent_repair_skill=0.48,
        value_guess_prob=0.07,
        misread_prob=0.50,
        feedback_fit_prob=0.45,
    ),
    "gpt-4-turbo": ModelBehaviour(
        oneshot_skill=0.95,
        difficulty_slope=0.62,
        sample_bonus=0.06,
        lookup_known_prob=0.28,
        unit_conversion_skill=0.95,
        join_penalty=0.14,
        agent_initial_skill=0.91,
        agent_repair_skill=0.58,
        value_guess_prob=0.06,
        misread_prob=0.48,
        feedback_fit_prob=0.40,
    ),
}

#: Signature of the agent policy installed by repro.agents: it receives
#: (knowledge, value_visible, behaviour, full_prompt, rng) and returns the
#: next ReAct-format completion text.
AgentPolicy = Callable[
    [ClaimKnowledge, bool, ModelBehaviour, str, random.Random], str
]


class SimulatedLLM(LLMClient):
    """An :class:`LLMClient` backed by the claim world instead of an API."""

    def __init__(
        self,
        model_name: str,
        world: ClaimWorld,
        ledger: CostLedger | None = None,
        seed: int = 0,
        behaviour: ModelBehaviour | None = None,
    ) -> None:
        super().__init__(model_name, ledger)
        if behaviour is None and model_name not in BEHAVIOURS:
            raise ValueError(
                f"no behaviour profile for {model_name!r}; pass one explicitly"
            )
        self.world = world
        self.seed = seed
        self.behaviour = behaviour or BEHAVIOURS[model_name]
        self.agent_policy: AgentPolicy | None = None
        # Per-claim attempt counters (see _rng). Guarded by a lock: one
        # client may serve several worker threads concurrently.
        self._claim_calls: dict[str, int] = {}
        self._counter_lock = threading.Lock()

    # -- generation ---------------------------------------------------------

    def _generate(self, prompt: str, temperature: float) -> str:
        recognised = self.world.recognise(prompt)
        if recognised is None:
            return (
                "I could not identify a verifiable claim in the provided "
                "text, so I cannot produce a SQL query."
            )
        knowledge, value_visible = recognised
        rng = self._rng(knowledge, temperature, prompt)
        if AGENT_PROMPT_MARKER in prompt:
            if self.agent_policy is None:
                raise RuntimeError(
                    "agent prompt received but no agent policy installed"
                )
            return self.agent_policy(
                knowledge, value_visible, self.behaviour, prompt, rng
            )
        if QUESTION_MARKER in prompt:
            return self._question_for(knowledge)
        return self._oneshot_completion(
            knowledge, value_visible, prompt, rng
        )

    def _oneshot_completion(
        self,
        knowledge: ClaimKnowledge,
        value_visible: bool,
        prompt: str,
        rng: random.Random,
    ) -> str:
        if value_visible and rng.random() < self.behaviour.cheat_prob:
            sql = cheat_query(knowledge)
            return self._render(knowledge, sql, cheated=True)
        has_sample = SAMPLE_MARKER in prompt
        penalty = TEXT2SQL_PENALTY if TEXT2SQL_MARKER in prompt else 0.0
        sql = self.draw_translation(knowledge, has_sample, rng, penalty)
        return self._render(knowledge, sql)

    def draw_translation(
        self,
        knowledge: ClaimKnowledge,
        has_sample: bool,
        rng: random.Random,
        penalty: float = 0.0,
    ) -> str:
        """Draw one-shot translation output: reference, trap, or corruption.

        Exposed for the agent policy, which reuses the same distribution
        for the agent's *initial* query proposal (with its own skill).
        """
        if (
            knowledge.misread_sql is not None
            and rng.random() < self.behaviour.misread_prob
        ):
            return knowledge.misread_sql
        probability = self.success_probability(knowledge, has_sample, penalty)
        if rng.random() >= probability:
            if (
                knowledge.claim_type == "numeric"
                and rng.random() < self.behaviour.value_guess_prob
            ):
                # The model "remembers" the published figure and selects it
                # as a constant — undetectable agreement with the claim.
                # (Echoing an exact entity string is far rarer, so textual
                # claims do not take this path.)
                return cheat_query(knowledge)
            if knowledge.needs_unit_conversion and knowledge.naive_unit_sql:
                # The most common unit failure: the right query without the
                # conversion — plausible-looking, subtly wrong.
                if rng.random() < 0.45:
                    return knowledge.naive_unit_sql
            return corrupt_query(knowledge, rng)
        if (
            knowledge.lookup_trap is not None
            and rng.random() >= self.behaviour.lookup_known_prob
        ):
            return trap_query(knowledge)
        return knowledge.reference_sql

    def success_probability(
        self,
        knowledge: ClaimKnowledge,
        has_sample: bool,
        penalty: float = 0.0,
    ) -> float:
        """The model's one-shot translation success probability."""
        behaviour = self.behaviour
        probability = (
            behaviour.oneshot_skill
            - penalty
            - behaviour.difficulty_slope * knowledge.difficulty
        )
        if has_sample:
            probability += behaviour.sample_bonus
        if knowledge.needs_unit_conversion:
            probability -= 1.0 - behaviour.unit_conversion_skill
        if knowledge.join_required:
            probability -= behaviour.join_penalty
        probability *= hard_claim_factor(knowledge)
        return min(0.98, max(0.02, probability))

    # -- helpers --------------------------------------------------------------

    def _rng(
        self, knowledge: ClaimKnowledge, temperature: float, prompt: str
    ) -> random.Random:
        """Seeded RNG: deterministic at temperature 0, fresh per retry above.

        At temperature 0 the seed depends only on (model, claim, prompt), so
        identical calls reproduce identical output — re-trying at zero
        temperature is pointless, exactly as with a real API. At positive
        temperatures a per-*claim* attempt counter enters the seed, making
        retries independent draws (paper Assumption 1). The counter is
        scoped to the claim, not the client, so a claim's draws do not
        depend on how many calls other claims made first — verdicts are a
        pure function of the seed regardless of document/claim
        interleaving, which is what lets the parallel executor reproduce a
        sequential run exactly.
        """
        parts = [str(self.seed), self.model_name, knowledge.claim_id]
        if temperature <= 0.0:
            parts += ["det", _digest(prompt)]
        else:
            with self._counter_lock:
                count = self._claim_calls.get(knowledge.claim_id, 0) + 1
                self._claim_calls[knowledge.claim_id] = count
            parts += [f"t{temperature}", str(count)]
        return random.Random(int(_digest("|".join(parts)), 16))

    def _render(
        self, knowledge: ClaimKnowledge, sql: str, cheated: bool = False
    ) -> str:
        """Wrap SQL in a Figure 3-compliant completion with short reasoning."""
        if cheated:
            reasoning = (
                "The claim states the value directly, so the query can "
                "select it for verification."
            )
        else:
            reasoning = (
                f'To find the value of "x" in the claim, we need to query '
                f'the {knowledge.table_name} data. The question to answer '
                f"is which value appears at the masked position; the schema "
                f"suggests the following translation."
            )
        return f"{reasoning}\n\n```sql\n{sql}\n```"

    def _question_for(self, knowledge: ClaimKnowledge) -> str:
        """Question-generation step of the P1/P2 baselines.

        The emitted question embeds the masked sentence verbatim so that
        the follow-up text-to-SQL prompt remains recognisable to the world.
        """
        return (
            f'What value should replace "x" in the claim '
            f'"{knowledge.masked_sentence}"?'
        )


def hard_claim_factor(knowledge: ClaimKnowledge) -> float:
    """Skill collapse on genuinely ambiguous claims.

    For an ambiguous claim the failure is not a coin flip the next retry
    can fix — the phrasing itself under-specifies the query. Success
    probability collapses towards zero instead of degrading linearly.
    Difficult-but-well-posed claims (joins, unit conversions) are NOT
    collapsed: enough skill or tooling solves them reliably.
    """
    if not knowledge.ambiguous:
        return 1.0
    return max(0.05, (0.95 - knowledge.difficulty) / 0.25)


def _digest(text: str) -> str:
    return hashlib.blake2s(text.encode("utf-8"), digest_size=8).hexdigest()
