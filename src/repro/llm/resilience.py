"""Retry/backoff around ``LLMClient.complete``.

The paper's cost model already treats each model invocation as an
independent trial (Assumption 1), so the orchestration layer is free to
re-issue a *failed* call without changing the statistics — a failed call
produced no completion at all, unlike a retry-at-temperature which is a
fresh draw the schedule accounts for. This module adds that resilience:

* failures are classified **transient** (network hiccups, rate limits,
  malformed transport responses) or **permanent** (programming errors,
  invalid requests) — only transient failures are retried;
* backoff is capped exponential with *deterministic seeded jitter*, so a
  run's retry timing is reproducible under a fixed seed;
* every retry decision is recorded in the :class:`~repro.llm.ledger.
  CostLedger` as a :class:`~repro.llm.ledger.RetryEvent`, tagged like the
  call it shadows, so flakiness is auditable per claim and method.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.logging import get_logger
from repro.obs.tracer import current_tracer

from .base import ChatResponse, DelegatingLLMClient, LLMClient
from .openai_client import TransportError

_log = get_logger("llm.resilience")


class TransientLLMError(RuntimeError):
    """A failure worth retrying: the next attempt may well succeed."""


class PermanentLLMError(RuntimeError):
    """A failure retrying cannot fix (bad request, contract violation)."""


#: Exception types treated as transient besides :class:`TransientLLMError`.
TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    TransportError,
    ConnectionError,
    TimeoutError,
    OSError,
)


def classify_failure(error: BaseException) -> bool:
    """True when ``error`` is transient (retryable), False when permanent.

    ``ValueError``/``TypeError`` and :class:`PermanentLLMError` mean the
    *request* is wrong and will be wrong again; transport-level trouble
    (:class:`TransportError`, socket errors, timeouts) is worth another
    attempt.
    """
    if isinstance(error, PermanentLLMError):
        return False
    if isinstance(error, TransientLLMError):
        return True
    return isinstance(error, TRANSIENT_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter."""

    max_attempts: int = 3
    base_delay: float = 0.05       # delay before the second attempt
    max_delay: float = 2.0         # cap on any single backoff
    multiplier: float = 2.0        # exponential growth factor
    jitter: float = 0.25           # +/- fraction of the nominal delay
    seed: int = 0                  # jitter RNG seed (reproducible runs)
    classify: Callable[[BaseException], bool] = classify_failure
    #: Injectable for tests and benchmarks; ``time.sleep`` in production.
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_for(self, attempt: int, token: str) -> float:
        """Backoff after the ``attempt``-th failure (1-based).

        Jitter is drawn from an RNG seeded on (policy seed, token,
        attempt) — with the prompt digest as the token, two runs with the
        same seed back off identically, while concurrent claims spread out
        instead of thundering in lockstep.
        """
        nominal = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 1),
        )
        if self.jitter == 0.0 or nominal == 0.0:
            return nominal
        digest = hashlib.blake2s(
            f"{self.seed}|{token}|{attempt}".encode("utf-8"), digest_size=8
        ).hexdigest()
        rng = random.Random(int(digest, 16))
        spread = self.jitter * nominal
        return max(0.0, nominal + rng.uniform(-spread, spread))


class RetriesExhaustedError(RuntimeError):
    """Raised when every attempt allowed by the policy failed."""

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"LLM call failed after {attempts} attempts: {last_error!r}"
        )
        self.attempts = attempts
        self.last_error = last_error


class ResilientLLMClient(DelegatingLLMClient):
    """Wrap a client so transient ``complete`` failures are retried.

    Permanent failures propagate immediately. Transient failures are
    retried up to ``policy.max_attempts`` total attempts with backoff;
    each retry (and the final surrender, if any) is recorded in the
    ledger as a :class:`~repro.llm.ledger.RetryEvent`.
    """

    def __init__(self, inner: LLMClient, policy: RetryPolicy | None = None):
        super().__init__(inner)
        self.policy = policy if policy is not None else RetryPolicy()

    def complete(self, prompt: str, temperature: float = 0.0) -> ChatResponse:
        policy = self.policy
        token = hashlib.blake2s(
            prompt.encode("utf-8"), digest_size=8
        ).hexdigest()
        last_error: BaseException | None = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return self.inner.complete(prompt, temperature)
            except BaseException as error:
                if not policy.classify(error):
                    raise
                last_error = error
                tracer = current_tracer()
                if attempt == policy.max_attempts:
                    self.ledger.record_retry(
                        model=self.model_name,
                        attempt=attempt,
                        delay_seconds=0.0,
                        error=repr(error),
                        gave_up=True,
                    )
                    _log.error(
                        "llm_retries_exhausted", model=self.model_name,
                        attempts=attempt, error=repr(error),
                    )
                    if tracer.enabled:
                        now = tracer.clock()
                        tracer.record(
                            f"retry:{self.model_name}", "retry", now, now,
                            status="error", attempt=attempt,
                            error=repr(error), gave_up=True,
                        )
                    raise RetriesExhaustedError(attempt, error) from error
                delay = policy.delay_for(attempt, token)
                self.ledger.record_retry(
                    model=self.model_name,
                    attempt=attempt,
                    delay_seconds=delay,
                    error=repr(error),
                )
                _log.warning(
                    "llm_retry", model=self.model_name, attempt=attempt,
                    delay_seconds=round(delay, 6), error=repr(error),
                )
                # The retry span covers the backoff sleep, so waterfalls
                # show waiting-out-a-failure as its own bar next to the
                # model-call latency it shadows.
                with tracer.span(
                    f"retry:{self.model_name}", "retry",
                    attempt=attempt, delay_seconds=delay, error=repr(error),
                ):
                    if delay > 0:
                        policy.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover
