"""Cost ledger: the accounting substrate for every experiment.

All LLM calls record an entry here. The ledger supports nested *tags*
(document, claim, verification method) via a context manager, so the
experiment harness can attribute spending to individual claims and methods
— which is what the profiling stage (Section 6) and the cost columns of the
evaluation (Section 7) consume.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded LLM call."""

    model: str
    prompt_tokens: int
    completion_tokens: int
    cost: float
    latency_seconds: float
    tags: tuple[str, ...] = ()

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass
class LedgerTotals:
    """Aggregated spending over a set of entries."""

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost: float = 0.0
    latency_seconds: float = 0.0

    def add(self, entry: LedgerEntry) -> None:
        self.calls += 1
        self.prompt_tokens += entry.prompt_tokens
        self.completion_tokens += entry.completion_tokens
        self.cost += entry.cost
        self.latency_seconds += entry.latency_seconds

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class CostLedger:
    """Append-only record of LLM spending with tag attribution."""

    def __init__(self) -> None:
        self.entries: list[LedgerEntry] = []
        self._tag_stack: list[str] = []

    def record(
        self,
        model: str,
        prompt_tokens: int,
        completion_tokens: int,
        cost: float,
        latency_seconds: float,
    ) -> None:
        """Record one call under the currently active tags."""
        self.entries.append(
            LedgerEntry(
                model=model,
                prompt_tokens=prompt_tokens,
                completion_tokens=completion_tokens,
                cost=cost,
                latency_seconds=latency_seconds,
                tags=tuple(self._tag_stack),
            )
        )

    @contextmanager
    def tagged(self, tag: str):
        """Attribute all calls inside the block to ``tag`` (nestable)."""
        self._tag_stack.append(tag)
        try:
            yield self
        finally:
            self._tag_stack.pop()

    def totals(self, tag: str | None = None) -> LedgerTotals:
        """Aggregate all entries, optionally restricted to one tag."""
        totals = LedgerTotals()
        for entry in self.entries:
            if tag is None or tag in entry.tags:
                totals.add(entry)
        return totals

    def totals_by_tag_prefix(self, prefix: str) -> dict[str, LedgerTotals]:
        """Aggregate entries per tag, over tags starting with ``prefix``.

        E.g. ``totals_by_tag_prefix("method:")`` returns per-method totals.
        """
        grouped: dict[str, LedgerTotals] = {}
        for entry in self.entries:
            for tag in entry.tags:
                if tag.startswith(prefix):
                    grouped.setdefault(tag, LedgerTotals()).add(entry)
        return grouped

    def checkpoint(self) -> int:
        """Return a marker for :meth:`totals_since`."""
        return len(self.entries)

    def totals_since(self, checkpoint: int) -> LedgerTotals:
        """Aggregate entries recorded after a checkpoint."""
        totals = LedgerTotals()
        for entry in self.entries[checkpoint:]:
            totals.add(entry)
        return totals

    @property
    def total_cost(self) -> float:
        return sum(e.cost for e in self.entries)

    @property
    def total_latency_seconds(self) -> float:
        return sum(e.latency_seconds for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)
