"""Cost ledger: the accounting substrate for every experiment.

All LLM calls record an entry here. The ledger supports nested *tags*
(document, claim, verification method) via a context manager, so the
experiment harness can attribute spending to individual claims and methods
— which is what the profiling stage (Section 6) and the cost columns of the
evaluation (Section 7) consume.

The ledger is safe to share across worker threads: the tag stack is
thread-local (each worker attributes its own calls), appends to the shared
entry list take a lock, and :meth:`capture`/:meth:`absorb` let an executor
route a worker's entries into a private sub-ledger that is merged back in
a deterministic order once the worker joins — so a parallel run produces
the same entry sequence (and therefore the same totals) as a sequential
one.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded LLM call."""

    model: str
    prompt_tokens: int
    completion_tokens: int
    cost: float
    latency_seconds: float
    tags: tuple[str, ...] = ()

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass(frozen=True)
class RetryEvent:
    """One retry decision taken by the resilience layer.

    Recorded *in addition to* the failed call's normal entry (if the
    failure happened after billing) so operators can audit how much of a
    run's latency went to backoff and which models were flaky.
    """

    model: str
    attempt: int            # 1-based attempt that just failed
    delay_seconds: float    # backoff applied before the next attempt
    error: str              # repr of the classified failure
    gave_up: bool = False   # True when the policy exhausted its attempts
    tags: tuple[str, ...] = ()


@dataclass
class LedgerTotals:
    """Aggregated spending over a set of entries."""

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost: float = 0.0
    latency_seconds: float = 0.0

    def add(self, entry: LedgerEntry) -> None:
        self.calls += 1
        self.prompt_tokens += entry.prompt_tokens
        self.completion_tokens += entry.completion_tokens
        self.cost += entry.cost
        self.latency_seconds += entry.latency_seconds

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass
class LedgerDelta:
    """A worker's private slice of ledger activity (see ``capture``)."""

    entries: list[LedgerEntry] = field(default_factory=list)
    events: list[RetryEvent] = field(default_factory=list)


class CostLedger:
    """Append-only record of LLM spending with tag attribution."""

    def __init__(self) -> None:
        self.entries: list[LedgerEntry] = []
        self.events: list[RetryEvent] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        # Data-side (SQL engine) latency, tracked as plain counters rather
        # than entries: it costs no tokens, and keeping it out of
        # ``entries`` leaves the capture/absorb determinism contract of
        # the parallel executor untouched.
        self._sql_seconds = 0.0
        self._sql_executions = 0

    # -- thread-local state --------------------------------------------------

    @property
    def _tag_stack(self) -> list[str]:
        stack = getattr(self._local, "tags", None)
        if stack is None:
            stack = []
            self._local.tags = stack
        return stack

    @property
    def _sink(self) -> LedgerDelta | None:
        return getattr(self._local, "sink", None)

    def record(
        self,
        model: str,
        prompt_tokens: int,
        completion_tokens: int,
        cost: float,
        latency_seconds: float,
    ) -> None:
        """Record one call under the currently active tags."""
        entry = LedgerEntry(
            model=model,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            cost=cost,
            latency_seconds=latency_seconds,
            tags=tuple(self._tag_stack),
        )
        sink = self._sink
        if sink is not None:
            sink.entries.append(entry)
        else:
            with self._lock:
                self.entries.append(entry)

    def record_retry(
        self,
        model: str,
        attempt: int,
        delay_seconds: float,
        error: str,
        gave_up: bool = False,
    ) -> None:
        """Record one retry/backoff decision under the active tags."""
        event = RetryEvent(
            model=model,
            attempt=attempt,
            delay_seconds=delay_seconds,
            error=error,
            gave_up=gave_up,
            tags=tuple(self._tag_stack),
        )
        sink = self._sink
        if sink is not None:
            sink.events.append(event)
        else:
            with self._lock:
                self.events.append(event)

    def record_sql(self, seconds: float, executions: int = 1) -> None:
        """Record time spent executing SQL for the verification data side.

        Shows up in latency accounting (``sql_seconds`` /
        ``sql_executions``) so the engine's share of wall-clock is visible
        next to model-call latency in ``/stats`` and reports.
        """
        with self._lock:
            self._sql_seconds += seconds
            self._sql_executions += executions

    @property
    def sql_seconds(self) -> float:
        with self._lock:
            return self._sql_seconds

    @property
    def sql_executions(self) -> int:
        with self._lock:
            return self._sql_executions

    @contextmanager
    def tagged(self, tag: str):
        """Attribute all calls inside the block to ``tag`` (nestable)."""
        stack = self._tag_stack
        stack.append(tag)
        try:
            yield self
        finally:
            stack.pop()

    def current_tags(self) -> tuple[str, ...]:
        """Snapshot of this thread's active tag stack."""
        return tuple(self._tag_stack)

    @contextmanager
    def scoped(self, tags: Sequence[str]):
        """Replay a tag snapshot on this thread (for handed-off work).

        A claim task running on a pool thread has an empty tag stack; the
        executor passes it the submitting thread's :meth:`current_tags` so
        its entries are attributed exactly as they would have been inline.
        """
        stack = self._tag_stack
        previous = list(stack)
        stack[:] = list(tags)
        try:
            yield self
        finally:
            stack[:] = previous

    @contextmanager
    def capture(self) -> Iterator[LedgerDelta]:
        """Buffer this thread's records into a private :class:`LedgerDelta`.

        Nothing reaches the shared entry list until the caller hands the
        delta to :meth:`absorb` — the per-worker sub-ledger half of the
        merge-on-join protocol.
        """
        delta = LedgerDelta()
        previous = self._sink
        self._local.sink = delta
        try:
            yield delta
        finally:
            self._local.sink = previous

    def absorb(self, delta: LedgerDelta) -> None:
        """Merge a captured delta into this thread's sink or the ledger."""
        sink = self._sink
        if sink is not None:
            sink.entries.extend(delta.entries)
            sink.events.extend(delta.events)
        else:
            with self._lock:
                self.entries.extend(delta.entries)
                self.events.extend(delta.events)

    # -- aggregation ---------------------------------------------------------

    def totals(self, tag: str | None = None) -> LedgerTotals:
        """Aggregate all entries, optionally restricted to one tag."""
        totals = LedgerTotals()
        for entry in self.entries:
            if tag is None or tag in entry.tags:
                totals.add(entry)
        return totals

    def totals_for_tags(
        self, tags: Sequence[str] | set[str], since: int = 0
    ) -> LedgerTotals:
        """Aggregate entries carrying *any* of ``tags``, in one pass.

        The service layer computes a job's spend this way: a job owns a
        set of ``doc:<id>`` tags, and ``since`` (a :meth:`checkpoint`
        taken when the job's batch started) keeps entries from earlier
        verifications of the same document ids out of the total.
        """
        wanted = set(tags)
        totals = LedgerTotals()
        for entry in self.entries[since:]:
            if wanted.intersection(entry.tags):
                totals.add(entry)
        return totals

    def totals_by_tag_prefix(self, prefix: str) -> dict[str, LedgerTotals]:
        """Aggregate entries per tag, over tags starting with ``prefix``.

        E.g. ``totals_by_tag_prefix("method:")`` returns per-method totals.
        """
        grouped: dict[str, LedgerTotals] = {}
        for entry in self.entries:
            for tag in entry.tags:
                if tag.startswith(prefix):
                    grouped.setdefault(tag, LedgerTotals()).add(entry)
        return grouped

    def checkpoint(self) -> int:
        """Return a marker for :meth:`totals_since`."""
        return len(self.entries)

    def totals_since(self, checkpoint: int) -> LedgerTotals:
        """Aggregate entries recorded after a checkpoint."""
        totals = LedgerTotals()
        for entry in self.entries[checkpoint:]:
            totals.add(entry)
        return totals

    @property
    def total_cost(self) -> float:
        return sum(e.cost for e in self.entries)

    @property
    def total_latency_seconds(self) -> float:
        return sum(e.latency_seconds for e in self.entries)

    @property
    def retry_count(self) -> int:
        return len(self.events)

    @property
    def retry_backoff_seconds(self) -> float:
        """Cumulative backoff sleep requested across all retry events.

        Each :class:`RetryEvent` records the delay applied before its
        next attempt; this sums them so ``/stats`` and reports can show
        how much of a run's wall-clock went to waiting out failures.
        """
        return sum(event.delay_seconds for event in self.events)

    def __len__(self) -> int:
        return len(self.entries)
