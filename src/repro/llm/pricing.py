"""Model price/latency table.

Prices are USD per one million tokens and match OpenAI's published list
prices for the models the paper evaluates (GPT-3.5-turbo, GPT-4o, and
"GPT-4.0" = GPT-4-turbo). Latency figures are representative generation
speeds used to compute simulated throughput (paper Figure 5b); only their
relative ordering matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tokenizer import count_tokens


@dataclass(frozen=True)
class ModelSpec:
    """Pricing and latency description of one hosted model."""

    name: str
    input_price_per_million: float
    output_price_per_million: float
    tokens_per_second: float
    request_overhead_seconds: float
    context_window: int

    def cost(self, prompt_tokens: int, completion_tokens: int) -> float:
        """Dollar cost of one call."""
        return (
            prompt_tokens * self.input_price_per_million
            + completion_tokens * self.output_price_per_million
        ) / 1_000_000.0

    def latency(self, prompt_tokens: int, completion_tokens: int) -> float:
        """Simulated wall-clock seconds for one call.

        Prompt ingestion is an order of magnitude faster than generation,
        so it contributes at 10x the generation speed.
        """
        ingest = prompt_tokens / (self.tokens_per_second * 10.0)
        generate = completion_tokens / self.tokens_per_second
        return self.request_overhead_seconds + ingest + generate


GPT_35_TURBO = ModelSpec(
    name="gpt-3.5-turbo",
    input_price_per_million=0.50,
    output_price_per_million=1.50,
    tokens_per_second=110.0,
    request_overhead_seconds=0.4,
    context_window=16_385,
)

GPT_4O = ModelSpec(
    name="gpt-4o",
    input_price_per_million=2.50,
    output_price_per_million=10.00,
    tokens_per_second=85.0,
    request_overhead_seconds=0.5,
    context_window=128_000,
)

GPT_4_TURBO = ModelSpec(
    name="gpt-4-turbo",
    input_price_per_million=10.00,
    output_price_per_million=30.00,
    tokens_per_second=30.0,
    request_overhead_seconds=0.7,
    context_window=128_000,
)

GPT_4O_MINI = ModelSpec(
    name="gpt-4o-mini",
    input_price_per_million=0.15,
    output_price_per_million=0.60,
    tokens_per_second=140.0,
    request_overhead_seconds=0.3,
    context_window=128_000,
)

MODEL_SPECS = {
    spec.name: spec
    for spec in (GPT_35_TURBO, GPT_4O, GPT_4_TURBO, GPT_4O_MINI)
}


def model_spec(name: str) -> ModelSpec:
    """Look up a model spec by name, raising KeyError with the known names."""
    try:
        return MODEL_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known models: "
            f"{', '.join(sorted(MODEL_SPECS))}"
        ) from None


def call_cost(model_name: str, prompt: str, completion: str) -> float:
    """Convenience: dollar cost of a call given raw strings."""
    spec = model_spec(model_name)
    return spec.cost(count_tokens(prompt), count_tokens(completion))
