"""Thread-safe LLM response cache with LRU eviction.

Identical temperature-0 calls are deterministic — for the offline
simulation by construction (the RNG seed is a pure function of model,
claim, and prompt) and for hosted APIs by convention — so re-issuing them
buys nothing but latency and spend. The cache memoises those calls keyed
on ``(model, prompt, temperature, seed)``.

Calls at temperature > 0 **bypass** the cache entirely. The paper's cost
model rests on Assumption 1: retries of a method are *independent* trials.
Serving a cached completion for a retry would collapse those trials into
one draw, silently breaking Theorems 6.1-6.2 (and the repro's simulated
retries, which must advance the per-claim RNG). Bypasses are counted so
the stats stay honest about how much traffic was cacheable at all.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs.tracer import current_tracer

from .base import ChatResponse, DelegatingLLMClient, LLMClient

#: Default number of responses an :class:`LLMCache` retains.
DEFAULT_CACHE_SIZE = 1024

#: Cache key: (model, prompt, temperature, client seed or None).
CacheKey = tuple[str, str, float, object]


@dataclass(frozen=True)
class CacheStats:
    """Counters describing one cache's traffic."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    evictions: int = 0
    size: int = 0
    max_size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over cacheable lookups (bypasses excluded)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __sub__(self, earlier: "CacheStats") -> "CacheStats":
        """Traffic between two snapshots of the *same* cache.

        ``later - earlier`` isolates one window's counters — e.g. the
        hits a single job or batch contributed. The size fields describe
        the cache itself, not traffic, so the later snapshot's values are
        kept as-is.
        """
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            bypasses=self.bypasses - earlier.bypasses,
            evictions=self.evictions - earlier.evictions,
            size=self.size,
            max_size=self.max_size,
        )

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Aggregate the traffic of two *different* caches."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            bypasses=self.bypasses + other.bypasses,
            evictions=self.evictions + other.evictions,
            size=self.size + other.size,
            max_size=self.max_size + other.max_size,
        )

    def to_dict(self) -> dict:
        """JSON-friendly rendering (reports, ``/stats`` endpoint)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
            "size": self.size,
            "max_size": self.max_size,
            "hit_rate": round(self.hit_rate, 4),
        }


class LLMCache:
    """An LRU map from prompts to :class:`ChatResponse` objects.

    Safe for concurrent use: one lock guards the map and the counters.
    Intended to be shared — across the methods of one verifier, and
    across repeated runs over the same documents (where the hit rate is
    highest).
    """

    def __init__(self, max_size: int = DEFAULT_CACHE_SIZE) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.max_size = max_size
        self._store: OrderedDict[CacheKey, ChatResponse] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._bypasses = 0
        self._evictions = 0

    def get(self, key: CacheKey) -> ChatResponse | None:
        """Look up a response, refreshing its recency on a hit."""
        with self._lock:
            response = self._store.get(key)
            if response is None:
                self._misses += 1
                return None
            self._store.move_to_end(key)
            self._hits += 1
            return response

    def put(self, key: CacheKey, response: ChatResponse) -> None:
        """Insert a response, evicting the least recently used on overflow."""
        with self._lock:
            self._store[key] = response
            self._store.move_to_end(key)
            while len(self._store) > self.max_size:
                self._store.popitem(last=False)
                self._evictions += 1

    def note_bypass(self) -> None:
        """Count a call that skipped the cache (temperature > 0)."""
        with self._lock:
            self._bypasses += 1

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                bypasses=self._bypasses,
                evictions=self._evictions,
                size=len(self._store),
                max_size=self.max_size,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)


class CachingLLMClient(DelegatingLLMClient):
    """Wrap a client so temperature-0 completions are served from a cache.

    A hit returns the stored response without touching the inner client —
    and therefore without recording a ledger entry: the whole point is
    that no tokens were spent. Calls at temperature > 0 pass straight
    through (see the module docstring for why).
    """

    def __init__(self, inner: LLMClient, cache: LLMCache) -> None:
        super().__init__(inner)
        self.cache = cache

    def complete(self, prompt: str, temperature: float = 0.0) -> ChatResponse:
        tracer = current_tracer()
        if temperature > 0.0:
            self.cache.note_bypass()
            response = self.inner.complete(prompt, temperature)
            # The inner client just closed the llm_call span; stamp how
            # the cache treated the call onto it.
            tracer.annotate_latest(cache="bypass")
            return response
        key = self._key(prompt, temperature)
        cached = self.cache.get(key)
        if cached is not None:
            if tracer.enabled:
                now = tracer.clock()
                tracer.record(
                    cached.model, "llm_call", now, now,
                    model=cached.model, temperature=temperature,
                    cache="hit",
                    prompt_tokens=cached.usage.prompt_tokens,
                    completion_tokens=cached.usage.completion_tokens,
                    cost_usd=0.0,
                )
            return cached
        response = self.inner.complete(prompt, temperature)
        tracer.annotate_latest(cache="miss")
        self.cache.put(key, response)
        return response

    def _key(self, prompt: str, temperature: float) -> CacheKey:
        # The simulated client's seed is part of its identity: two clients
        # with different seeds answer the same prompt differently. Hosted
        # clients have no seed; None keeps them in one namespace.
        return (
            self.model_name,
            prompt,
            temperature,
            getattr(self.inner, "seed", None),
        )
