"""Thread-safe LLM response cache with LRU eviction (now tiered).

Identical temperature-0 calls are deterministic — for the offline
simulation by construction (the RNG seed is a pure function of model,
claim, and prompt) and for hosted APIs by convention — so re-issuing them
buys nothing but latency and spend. The cache memoises those calls keyed
on ``(model, prompt, temperature, seed)``.

Calls at temperature > 0 **bypass** the cache entirely. The paper's cost
model rests on Assumption 1: retries of a method are *independent* trials.
Serving a cached completion for a retry would collapse those trials into
one draw, silently breaking Theorems 6.1-6.2 (and the repro's simulated
retries, which must advance the per-claim RNG). Bypasses are counted so
the stats stay honest about how much traffic was cacheable at all.

:class:`LLMCache` is a facade over :class:`repro.cache.TieredCache`:
pure in-memory by default, and backed by the persistent L2 tier when
constructed with an opened :class:`repro.cache.CacheStore` — responses
then survive restarts under the ``"llm"`` namespace, serialised through
:data:`CHAT_RESPONSE_CODEC` (an exact JSON round trip, so warm runs stay
byte-identical to cold ones). :class:`CacheStats` lives in
:mod:`repro.cache.api` now and is re-exported here for compatibility.
"""

from __future__ import annotations

import json

from repro.cache import CacheStats, CacheStore, TieredCache, stable_key
from repro.obs.tracer import current_tracer

from .base import ChatResponse, ChatUsage, DelegatingLLMClient, LLMClient

__all__ = [
    "CacheKey",
    "CacheStats",
    "CachingLLMClient",
    "CHAT_RESPONSE_CODEC",
    "DEFAULT_CACHE_SIZE",
    "LLMCache",
]

#: Default number of responses an :class:`LLMCache` retains.
DEFAULT_CACHE_SIZE = 1024

#: Cache key: (model, prompt, temperature, client seed or None).
CacheKey = tuple[str, str, float, object]


class _ChatResponseCodec:
    """Exact JSON round trip for :class:`ChatResponse` (the L2 codec).

    Every field is a str/int/float, and Python's JSON float rendering
    round-trips exactly, so ``decode(encode(r)) == r`` — the property the
    warm-start determinism contract rests on.
    """

    def encode(self, response: ChatResponse) -> str:
        return json.dumps({
            "text": response.text,
            "model": response.model,
            "prompt_tokens": response.usage.prompt_tokens,
            "completion_tokens": response.usage.completion_tokens,
            "cost": response.cost,
            "latency_seconds": response.latency_seconds,
        }, sort_keys=True)

    def decode(self, text: str) -> ChatResponse:
        data = json.loads(text)
        return ChatResponse(
            text=data["text"],
            model=data["model"],
            usage=ChatUsage(
                prompt_tokens=data["prompt_tokens"],
                completion_tokens=data["completion_tokens"],
            ),
            cost=data["cost"],
            latency_seconds=data["latency_seconds"],
        )


CHAT_RESPONSE_CODEC = _ChatResponseCodec()


class LLMCache:
    """An LRU map from prompts to :class:`ChatResponse` objects.

    Safe for concurrent use. Intended to be shared — across the methods
    of one verifier, and across repeated runs over the same documents
    (where the hit rate is highest). Pass ``store`` (an opened
    :class:`~repro.cache.CacheStore` persisting the ``"llm"`` namespace)
    to add a restart-surviving L2 tier behind the in-memory L1.
    """

    def __init__(
        self,
        max_size: int = DEFAULT_CACHE_SIZE,
        *,
        store: CacheStore | None = None,
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.max_size = max_size
        l2 = store.l2_for("llm") if store is not None else None
        self._tier = TieredCache(
            "llm", max_size, l2=l2, codec=CHAT_RESPONSE_CODEC,
        )

    def _stable_key(self, key: CacheKey) -> str | None:
        if not self._tier.has_l2:
            return None
        model, prompt, temperature, seed = key
        # The seed is config-derived (stable across restarts) for the
        # simulated clients and None for hosted ones; repr() folds both
        # into one deterministic string.
        return stable_key("llm", model, prompt, temperature, repr(seed))

    def get(self, key: CacheKey) -> ChatResponse | None:
        """Look up a response, refreshing its recency on a hit."""
        return self._tier.get(key, self._stable_key(key))

    def put(self, key: CacheKey, response: ChatResponse) -> None:
        """Insert a response, evicting the least recently used on overflow."""
        self._tier.put(key, response, self._stable_key(key))

    def note_bypass(self) -> None:
        """Count a call that skipped the cache (temperature > 0)."""
        self._tier.note_bypass()

    def clear(self) -> None:
        self._tier.clear()

    @property
    def stats(self) -> CacheStats:
        return self._tier.stats()

    def tier_stats(self) -> dict:
        """Per-tier stats (``{"l1": ..., "l2": ...}``) for metrics."""
        return self._tier.tier_stats()

    def __len__(self) -> int:
        return len(self._tier)


class CachingLLMClient(DelegatingLLMClient):
    """Wrap a client so temperature-0 completions are served from a cache.

    A hit returns the stored response without touching the inner client —
    and therefore without recording a ledger entry: the whole point is
    that no tokens were spent. Calls at temperature > 0 pass straight
    through (see the module docstring for why).
    """

    def __init__(self, inner: LLMClient, cache: LLMCache) -> None:
        super().__init__(inner)
        self.cache = cache

    def complete(self, prompt: str, temperature: float = 0.0) -> ChatResponse:
        tracer = current_tracer()
        if temperature > 0.0:
            self.cache.note_bypass()
            response = self.inner.complete(prompt, temperature)
            # The inner client just closed the llm_call span; stamp how
            # the cache treated the call onto it.
            tracer.annotate_latest(cache="bypass")
            return response
        key = self._key(prompt, temperature)
        cached = self.cache.get(key)
        if cached is not None:
            if tracer.enabled:
                now = tracer.clock()
                tracer.record(
                    cached.model, "llm_call", now, now,
                    model=cached.model, temperature=temperature,
                    cache="hit",
                    prompt_tokens=cached.usage.prompt_tokens,
                    completion_tokens=cached.usage.completion_tokens,
                    cost_usd=0.0,
                )
            return cached
        response = self.inner.complete(prompt, temperature)
        tracer.annotate_latest(cache="miss")
        self.cache.put(key, response)
        return response

    def _key(self, prompt: str, temperature: float) -> CacheKey:
        # The simulated client's seed is part of its identity: two clients
        # with different seeds answer the same prompt differently. Hosted
        # clients have no seed; None keeps them in one namespace.
        return (
            self.model_name,
            prompt,
            temperature,
            getattr(self.inner, "seed", None),
        )
