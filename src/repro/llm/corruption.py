"""Failure modes of simulated claim-to-SQL translation.

When the simulated model fails a success draw it must still answer — with a
*wrong* query, the way real models fail: a similar-but-wrong column, a
mangled constant, the wrong aggregate, a dropped filter, truncated SQL. The
corrupted queries are real SQL run by the real engine, so every downstream
code path (plausibility checks, retries, escalation, agent feedback)
operates on genuine wrong answers rather than sentinel values.
"""

from __future__ import annotations

import dataclasses
import random

from repro.sqlengine import parse_select
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlError

from .world import ClaimKnowledge


def corrupt_query(
    knowledge: ClaimKnowledge, rng: random.Random
) -> str:
    """Produce a wrong translation of the claim's reference query.

    The corruption kind is drawn at random from the modes applicable to the
    query's shape. Falls back to truncation when a mode cannot apply.
    """
    try:
        statement = parse_select(knowledge.reference_sql)
    except SqlError:
        return _truncate(knowledge.reference_sql)
    canonical = statement.to_sql()
    # Failure *kind* depends on how hard the claim is: a model that fails
    # on an easy claim usually fails at the surface (malformed SQL, a
    # mangled constant), whereas semantic confusions (wrong column, wrong
    # aggregate) arise when the claim's phrasing genuinely under-determines
    # the query. Surface failures are harmless to CEDAR (they never pass
    # the plausibility test); semantic ones are the dangerous kind.
    semantic = min(1.0, 0.55 * knowledge.difficulty)
    if knowledge.ambiguous:
        semantic = 1.0
    if knowledge.join_required:
        # Failed join translations break at the structure (wrong join
        # keys, missing bridge tables) and rarely produce a plausible
        # value; they surface as errors the escalation ladder catches.
        semantic *= 0.5
    modes: list[tuple[float, str]] = [(0.28 * semantic, "wrong_column")]
    if _aggregate_names(statement):
        modes.append((0.22 * semantic, "wrong_aggregate"))
    if _string_literals(statement):
        modes.append((0.20, "wrong_string_constant"))
    if _numeric_literals(statement):
        modes.append((0.10 * semantic, "wrong_numeric_constant"))
    if _droppable_predicate(statement):
        modes.append((0.12 * semantic, "drop_predicate"))
    modes.append((0.08 + 0.45 * (1.0 - semantic), "malformed"))
    mode = _weighted_choice(modes, rng)
    if mode == "wrong_column":
        return _wrong_column(canonical, statement, knowledge, rng)
    if mode == "wrong_aggregate":
        return _wrong_aggregate(canonical, statement, rng)
    if mode == "wrong_string_constant":
        return _wrong_string_constant(canonical, statement, rng)
    if mode == "wrong_numeric_constant":
        return _wrong_numeric_constant(canonical, statement, rng)
    if mode == "drop_predicate":
        return _drop_predicate(statement)
    return _truncate(canonical)


def trap_query(knowledge: ClaimKnowledge) -> str:
    """Render the reference query with the lookup trap's wrong constant.

    This is the natural mistake of a model that has never seen the data:
    using the claim's phrasing ('United States') instead of the stored
    constant ('USA'). The resulting query typically returns no rows, which
    is the error the agent observes in Figure 4.
    """
    trap = knowledge.lookup_trap
    if trap is None:
        raise ValueError("claim has no lookup trap")
    right = ast.quote_string(trap.right_constant)
    wrong = ast.quote_string(trap.wrong_constant)
    canonical = parse_select(knowledge.reference_sql).to_sql()
    if right not in canonical:
        return canonical
    return canonical.replace(right, wrong)


def cheat_query(knowledge: ClaimKnowledge) -> str:
    """Render the Figure 2 cheat: a query returning the claimed value.

    Emitted by the simulated model when the claim value was left visible in
    the prompt (the masking ablation). The query is trivially 'plausible'
    while verifying nothing.
    """
    if knowledge.claim_type == "numeric":
        return f"SELECT {knowledge.claim_value_text.replace(',', '')}"
    return f"SELECT {ast.quote_string(knowledge.claim_value_text)}"


# -- individual corruption modes ------------------------------------------


def _wrong_column(
    canonical: str,
    statement: ast.SelectStatement,
    knowledge: ClaimKnowledge,
    rng: random.Random,
) -> str:
    referenced = sorted(
        {
            node.name
            for node in _all_expressions(statement)
            if isinstance(node, ast.ColumnRef)
        }
    )
    if not referenced:
        return _truncate(canonical)
    victim = rng.choice(referenced)
    alternatives = [c for c in knowledge.columns if c.lower() != victim.lower()]
    if not alternatives:
        return _truncate(canonical)
    replacement = rng.choice(alternatives)
    return canonical.replace(
        ast.quote_identifier(victim), ast.quote_identifier(replacement), 1
    )


#: Plausible-sounding aggregate confusions. Swaps are biased towards
#: scale-changing mistakes (SUM vs AVG differs by the row count), because
#: a wrong aggregate in the same order of magnitude would silently pass
#: the plausibility test — which real models' errors rarely do.
_AGGREGATE_SWAPS = {
    "COUNT": ("SUM",),
    "SUM": ("COUNT", "AVG"),
    "AVG": ("SUM", "COUNT"),
    "MAX": ("SUM", "COUNT"),
    "MIN": ("SUM", "COUNT"),
}


def _wrong_aggregate(
    canonical: str, statement: ast.SelectStatement, rng: random.Random
) -> str:
    names = _aggregate_names(statement)
    victim = rng.choice(sorted(names))
    replacement = rng.choice(_AGGREGATE_SWAPS[victim])
    return canonical.replace(f"{victim}(", f"{replacement}(", 1)


def _wrong_string_constant(
    canonical: str, statement: ast.SelectStatement, rng: random.Random
) -> str:
    literals = _string_literals(statement)
    victim = rng.choice(sorted(literals))
    mangled = _mangle_string(victim, rng)
    return canonical.replace(
        ast.quote_string(victim), ast.quote_string(mangled), 1
    )


def _wrong_numeric_constant(
    canonical: str, statement: ast.SelectStatement, rng: random.Random
) -> str:
    literals = _numeric_literals(statement)
    victim = rng.choice(sorted(literals, key=repr))
    tweak = rng.choice(("scale", "offset"))
    if tweak == "scale":
        replacement = victim * 10
    else:
        replacement = victim + rng.choice((-1, 1))
    victim_text = ast.Literal(victim).to_sql()
    return canonical.replace(victim_text, ast.Literal(replacement).to_sql(), 1)


def _drop_predicate(statement: ast.SelectStatement) -> str:
    where = statement.where
    assert isinstance(where, ast.BinaryOp) and where.op == "AND"
    return dataclasses.replace(statement, where=where.left).to_sql()


def _truncate(sql: str) -> str:
    return sql[: max(8, len(sql) // 2)]


def _mangle_string(text: str, rng: random.Random) -> str:
    choices = []
    if " " in text:
        choices.append(text.split(" ", 1)[0])  # keep first word only
    choices.append(text + "s")
    choices.append(text.lower())
    if len(text) > 3:
        cut = rng.randrange(1, len(text) - 1)
        choices.append(text[:cut] + text[cut + 1:])  # drop a character
    return rng.choice(choices)


# -- query-shape inspection -------------------------------------------------


def _all_expressions(statement: ast.SelectStatement):
    yield from ast.walk_expressions(statement)
    for subquery in ast.walk_subqueries(statement):
        yield from ast.walk_expressions(subquery)


def _aggregate_names(statement: ast.SelectStatement) -> set[str]:
    return {
        node.name
        for node in _all_expressions(statement)
        if isinstance(node, ast.AggregateCall)
    }


def _string_literals(statement: ast.SelectStatement) -> set[str]:
    return {
        node.value
        for node in _all_expressions(statement)
        if isinstance(node, ast.Literal) and isinstance(node.value, str)
    }


def _numeric_literals(statement: ast.SelectStatement) -> set[float | int]:
    return {
        node.value
        for node in _all_expressions(statement)
        if isinstance(node, ast.Literal)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    }


def _droppable_predicate(statement: ast.SelectStatement) -> bool:
    return (
        isinstance(statement.where, ast.BinaryOp)
        and statement.where.op == "AND"
    )


def _weighted_choice(
    weighted: list[tuple[float, str]], rng: random.Random
) -> str:
    total = sum(weight for weight, _ in weighted)
    draw = rng.random() * total
    cumulative = 0.0
    for weight, value in weighted:
        cumulative += weight
        if draw <= cumulative:
            return value
    return weighted[-1][1]
