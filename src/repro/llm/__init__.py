"""LLM service layer: client abstraction, pricing, cost ledger, simulation."""

from .base import (
    ChatResponse,
    ChatUsage,
    DelegatingLLMClient,
    LLMClient,
    ScriptedLLM,
    extract_sql_block,
)
from .cache import CacheStats, CachingLLMClient, LLMCache
from .corruption import cheat_query, corrupt_query, trap_query
from .ledger import (
    CostLedger,
    LedgerDelta,
    LedgerEntry,
    LedgerTotals,
    RetryEvent,
)
from .openai_client import OpenAIChatClient, RecordingTransport, TransportError
from .resilience import (
    PermanentLLMError,
    ResilientLLMClient,
    RetriesExhaustedError,
    RetryPolicy,
    TransientLLMError,
    classify_failure,
)
from .pricing import (
    GPT_35_TURBO,
    GPT_4_TURBO,
    GPT_4O,
    GPT_4O_MINI,
    MODEL_SPECS,
    ModelSpec,
    model_spec,
)
from .simulated import (
    AGENT_PROMPT_MARKER,
    BEHAVIOURS,
    QUESTION_MARKER,
    SAMPLE_MARKER,
    ModelBehaviour,
    SimulatedLLM,
)
from .tokenizer import count_tokens, truncate_to_tokens
from .world import ClaimKnowledge, ClaimWorld, LookupTrap

__all__ = [
    "AGENT_PROMPT_MARKER",
    "BEHAVIOURS",
    "CacheStats",
    "CachingLLMClient",
    "ChatResponse",
    "ChatUsage",
    "ClaimKnowledge",
    "ClaimWorld",
    "CostLedger",
    "DelegatingLLMClient",
    "GPT_35_TURBO",
    "GPT_4O",
    "GPT_4O_MINI",
    "GPT_4_TURBO",
    "LLMCache",
    "LLMClient",
    "LedgerDelta",
    "LedgerEntry",
    "LedgerTotals",
    "LookupTrap",
    "MODEL_SPECS",
    "OpenAIChatClient",
    "PermanentLLMError",
    "RecordingTransport",
    "ResilientLLMClient",
    "RetriesExhaustedError",
    "RetryEvent",
    "RetryPolicy",
    "ModelBehaviour",
    "ModelSpec",
    "QUESTION_MARKER",
    "SAMPLE_MARKER",
    "ScriptedLLM",
    "SimulatedLLM",
    "TransientLLMError",
    "TransportError",
    "cheat_query",
    "classify_failure",
    "corrupt_query",
    "count_tokens",
    "extract_sql_block",
    "model_spec",
    "trap_query",
    "truncate_to_tokens",
]
