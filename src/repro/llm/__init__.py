"""LLM service layer: client abstraction, pricing, cost ledger, simulation."""

from .base import ChatResponse, ChatUsage, LLMClient, ScriptedLLM, extract_sql_block
from .corruption import cheat_query, corrupt_query, trap_query
from .ledger import CostLedger, LedgerEntry, LedgerTotals
from .openai_client import OpenAIChatClient, RecordingTransport, TransportError
from .pricing import (
    GPT_35_TURBO,
    GPT_4_TURBO,
    GPT_4O,
    GPT_4O_MINI,
    MODEL_SPECS,
    ModelSpec,
    model_spec,
)
from .simulated import (
    AGENT_PROMPT_MARKER,
    BEHAVIOURS,
    QUESTION_MARKER,
    SAMPLE_MARKER,
    ModelBehaviour,
    SimulatedLLM,
)
from .tokenizer import count_tokens, truncate_to_tokens
from .world import ClaimKnowledge, ClaimWorld, LookupTrap

__all__ = [
    "AGENT_PROMPT_MARKER",
    "BEHAVIOURS",
    "ChatResponse",
    "ChatUsage",
    "ClaimKnowledge",
    "ClaimWorld",
    "CostLedger",
    "GPT_35_TURBO",
    "GPT_4O",
    "GPT_4O_MINI",
    "GPT_4_TURBO",
    "LLMClient",
    "LedgerEntry",
    "LedgerTotals",
    "LookupTrap",
    "MODEL_SPECS",
    "OpenAIChatClient",
    "RecordingTransport",
    "ModelBehaviour",
    "ModelSpec",
    "QUESTION_MARKER",
    "SAMPLE_MARKER",
    "ScriptedLLM",
    "SimulatedLLM",
    "TransportError",
    "cheat_query",
    "corrupt_query",
    "count_tokens",
    "extract_sql_block",
    "model_spec",
    "trap_query",
    "truncate_to_tokens",
]
