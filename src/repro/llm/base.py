"""LLM client abstraction.

Everything above this layer (one-shot translation, agents, baselines) talks
to a :class:`LLMClient` and never knows whether the model behind it is a
hosted API or the offline simulation. Responses carry token usage, dollar
cost, and simulated latency so callers can account costs per claim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.obs.tracer import current_tracer

from .ledger import CostLedger
from .pricing import ModelSpec, model_spec
from .tokenizer import count_tokens


@dataclass(frozen=True)
class ChatUsage:
    """Token counts of one call."""

    prompt_tokens: int
    completion_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass(frozen=True)
class ChatResponse:
    """One model reply with its accounting metadata."""

    text: str
    model: str
    usage: ChatUsage
    cost: float
    latency_seconds: float


class LLMClient(ABC):
    """A chat-completion client bound to one model.

    Subclasses implement :meth:`_generate`; this base class handles token
    accounting, pricing, latency simulation, and ledger recording so every
    implementation bills identically.
    """

    def __init__(self, model_name: str, ledger: CostLedger | None = None):
        self.spec: ModelSpec = model_spec(model_name)
        self.ledger = ledger if ledger is not None else CostLedger()

    @property
    def model_name(self) -> str:
        return self.spec.name

    def complete(self, prompt: str, temperature: float = 0.0) -> ChatResponse:
        """Send a prompt and return the model's reply, recording costs.

        When a tracer is active the call is wrapped in an ``llm_call``
        span carrying model, temperature, token counts, cost, and the
        model's (simulated or real) latency; a raising ``_generate``
        marks the span ``error``. Tracing never alters the response or
        the ledger entry — reports stay byte-identical with it on.
        """
        if not 0.0 <= temperature <= 2.0:
            raise ValueError(f"temperature {temperature} out of range [0, 2]")
        tracer = current_tracer()
        if not tracer.enabled:
            return self._complete(prompt, temperature)
        with tracer.span(
            self.model_name, "llm_call",
            model=self.model_name, temperature=temperature,
        ) as span:
            response = self._complete(prompt, temperature)
            span.set(
                prompt_tokens=response.usage.prompt_tokens,
                completion_tokens=response.usage.completion_tokens,
                cost_usd=response.cost,
                model_latency_seconds=response.latency_seconds,
            )
            return response

    def _complete(self, prompt: str, temperature: float) -> ChatResponse:
        text = self._generate(prompt, temperature)
        usage = ChatUsage(count_tokens(prompt), count_tokens(text))
        cost = self.spec.cost(usage.prompt_tokens, usage.completion_tokens)
        latency = self.spec.latency(
            usage.prompt_tokens, usage.completion_tokens
        )
        response = ChatResponse(text, self.model_name, usage, cost, latency)
        self.ledger.record(
            model=self.model_name,
            prompt_tokens=usage.prompt_tokens,
            completion_tokens=usage.completion_tokens,
            cost=cost,
            latency_seconds=latency,
        )
        return response

    @abstractmethod
    def _generate(self, prompt: str, temperature: float) -> str:
        """Produce the raw completion text for a prompt."""


class DelegatingLLMClient(LLMClient):
    """Base class for clients that wrap another client.

    The cache and resilience layers stack on top of any concrete client
    (simulated or hosted) without re-billing: they override
    :meth:`complete` and forward to the inner client, whose own
    ``complete`` performs the single ledger recording. Unknown attributes
    (``seed``, ``world``, ``agent_policy``, ``calls``…) resolve against
    the innermost client so wrapped clients stay drop-in.
    """

    def __init__(self, inner: LLMClient) -> None:
        # Deliberately skip LLMClient.__init__: spec and ledger are shared
        # with (not duplicated from) the wrapped client.
        self.inner = inner
        self.spec = inner.spec
        self.ledger = inner.ledger

    def complete(self, prompt: str, temperature: float = 0.0) -> ChatResponse:
        return self.inner.complete(prompt, temperature)

    def _generate(self, prompt: str, temperature: float) -> str:
        return self.inner._generate(prompt, temperature)

    def unwrap(self) -> LLMClient:
        """The innermost concrete client under any stack of wrappers."""
        client: LLMClient = self.inner
        while isinstance(client, DelegatingLLMClient):
            client = client.inner
        return client

    def __getattr__(self, name: str):
        # Only reached for attributes not set on the wrapper itself.
        if name == "inner":  # guard against recursion before __init__ ran
            raise AttributeError(name)
        return getattr(self.inner, name)


class ScriptedLLM(LLMClient):
    """A client replaying canned responses, for tests.

    Responses are served in order; the last one repeats once the script is
    exhausted (so retry loops in code under test terminate deterministically).
    """

    def __init__(
        self,
        responses: list[str],
        model_name: str = "gpt-3.5-turbo",
        ledger: CostLedger | None = None,
    ) -> None:
        super().__init__(model_name, ledger)
        if not responses:
            raise ValueError("ScriptedLLM needs at least one response")
        self._responses = list(responses)
        self.calls: list[tuple[str, float]] = []

    def _generate(self, prompt: str, temperature: float) -> str:
        self.calls.append((prompt, temperature))
        index = min(len(self.calls) - 1, len(self._responses) - 1)
        return self._responses[index]


def extract_sql_block(text: str) -> str | None:
    """Extract the first SQL statement from a model reply.

    Primary format is a fenced block (```sql … ``` or ``` … ```), as the
    Figure 3 prompt instructs. Falls back to scanning for a line starting
    with SELECT, since weaker models sometimes ignore the fencing
    instruction. Returns None when no candidate is found.
    """
    lowered = text.lower()
    for fence in ("```sql", "```"):
        start = lowered.find(fence)
        if start < 0:
            continue
        body_start = start + len(fence)
        end = text.find("```", body_start)
        if end < 0:
            continue
        candidate = text[body_start:end].strip()
        if candidate:
            return candidate
    index = lowered.find("select ")
    if index >= 0:
        candidate = text[index:].split("\n\n", 1)[0].strip()
        return candidate or None
    return None
