"""Adapter for a real OpenAI-compatible chat API.

The rest of the library only sees :class:`~repro.llm.base.LLMClient`, so
swapping the offline simulation for a hosted model means constructing one
of these instead of a :class:`~repro.llm.simulated.SimulatedLLM`. The
HTTP transport is injected, which keeps the adapter testable offline and
lets callers plug in any client (``requests``, ``httpx``, a corporate
proxy) without this package importing one.

Example::

    import json
    import urllib.request

    def transport(payload: dict, api_key: str) -> dict:
        request = urllib.request.Request(
            "https://api.openai.com/v1/chat/completions",
            data=json.dumps(payload).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "Authorization": f"Bearer {api_key}",
            },
        )
        with urllib.request.urlopen(request) as response:
            return json.load(response)

    client = OpenAIChatClient("gpt-4o", transport, api_key="sk-...")
"""

from __future__ import annotations

from typing import Callable, Protocol

from .base import LLMClient
from .ledger import CostLedger

#: A transport takes the chat-completions payload and returns the parsed
#: JSON response body.
Transport = Callable[[dict, str], dict]


class TransportError(RuntimeError):
    """Raised when the transport response lacks the expected structure."""


class OpenAIChatClient(LLMClient):
    """An :class:`LLMClient` backed by an OpenAI-compatible endpoint."""

    def __init__(
        self,
        model_name: str,
        transport: Transport,
        api_key: str = "",
        ledger: CostLedger | None = None,
        system_prompt: str | None = None,
        max_retries: int = 2,
    ) -> None:
        super().__init__(model_name, ledger)
        self._transport = transport
        self._api_key = api_key
        self._system_prompt = system_prompt
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._max_retries = max_retries

    def _generate(self, prompt: str, temperature: float) -> str:
        messages = []
        if self._system_prompt:
            messages.append({"role": "system", "content": self._system_prompt})
        messages.append({"role": "user", "content": prompt})
        payload = {
            "model": self.model_name,
            "messages": messages,
            "temperature": temperature,
        }
        last_error: Exception | None = None
        for _ in range(self._max_retries + 1):
            try:
                body = self._transport(payload, self._api_key)
                return _extract_content(body)
            except TransportError:
                raise
            except Exception as error:  # transient transport failure
                last_error = error
        raise RuntimeError(
            f"transport failed after {self._max_retries + 1} attempts"
        ) from last_error


def _extract_content(body: dict) -> str:
    try:
        choices = body["choices"]
        message = choices[0]["message"]
        content = message["content"]
    except (KeyError, IndexError, TypeError) as error:
        raise TransportError(
            f"malformed chat-completions response: {body!r}"
        ) from error
    if not isinstance(content, str):
        raise TransportError(
            f"non-text completion content: {content!r}"
        )
    return content


class RecordingTransport:
    """A transport double for tests: replays canned responses.

    Records every payload it receives; serves responses in order, raising
    the configured exceptions in place (to exercise retry paths).
    """

    def __init__(self, responses: list[str | Exception]) -> None:
        self._responses = list(responses)
        self.payloads: list[dict] = []

    def __call__(self, payload: dict, api_key: str) -> dict:
        self.payloads.append(payload)
        if not self._responses:
            raise RuntimeError("transport script exhausted")
        item = self._responses.pop(0)
        if isinstance(item, Exception):
            raise item
        return {"choices": [{"message": {"content": item}}]}
