"""The opened form of a :class:`~repro.cache.api.CacheConfig`.

A :class:`CacheStore` owns (at most) one persistent backend and hands
out namespace-scoped views of it: ``l2_for(namespace)`` returns the
backend for namespaces the config persists (None otherwise — the facade
then runs L1-only), and ``profile_store()`` returns the warm-start
profile store when the config opted in.

``open_cache(path)`` is the one-liner public entry point; configs built
by hand reach the same place through ``CacheConfig.open()``, which
memoises so every cache wired from one config shares one store (and one
sqlite connection).
"""

from __future__ import annotations

from .api import (
    DEFAULT_MAX_BYTES,
    DEFAULT_PERSIST_NAMESPACES,
    CacheConfig,
)
from .persistent import SqliteCacheBackend
from .profiles import ProfileStore


class CacheStore:
    """One opened cache configuration: L2 backend plus profile store."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._backend: SqliteCacheBackend | None = None
        if config.path is not None:
            self._backend = SqliteCacheBackend(
                config.path,
                ttl_seconds=config.ttl_seconds,
                max_bytes=config.max_bytes,
            )

    @property
    def backend(self) -> SqliteCacheBackend | None:
        return self._backend

    @property
    def persistent(self) -> bool:
        return self._backend is not None and self._backend.enabled

    def l2_for(self, namespace: str) -> SqliteCacheBackend | None:
        """The persistent tier for one namespace, or None.

        None means the namespace runs L1-only: the config has no path,
        the backend failed open (never crash — degrade to in-memory), or
        the namespace is not in ``persist_namespaces``.
        """
        if not self.persistent:
            return None
        if namespace not in self.config.persist_namespaces:
            return None
        return self._backend

    def profile_store(self) -> ProfileStore | None:
        """The warm-start profile store, when the config opted in."""
        if not self.persistent or not self.config.profiles:
            return None
        return ProfileStore(self._backend)

    def stats(self) -> dict:
        """Per-namespace L2 stats (JSON-ready), for ``/stats`` renderings."""
        if self._backend is None:
            return {}
        return {
            namespace: self._backend.stats(namespace).to_dict()
            for namespace in self._backend.namespaces()
        }

    def close(self) -> None:
        if self._backend is not None:
            self._backend.close()


def open_cache(
    path: str | None = None,
    *,
    ttl_seconds: float | None = None,
    max_bytes: int = DEFAULT_MAX_BYTES,
    persist_namespaces: tuple[str, ...] = DEFAULT_PERSIST_NAMESPACES,
    profiles: bool = False,
) -> CacheStore:
    """Open a cache store directly (sugar over ``CacheConfig(...).open()``)."""
    return CacheConfig(
        path=path,
        ttl_seconds=ttl_seconds,
        max_bytes=max_bytes,
        persist_namespaces=persist_namespaces,
        profiles=profiles,
    ).open()
