"""Unified pluggable caching: one protocol, two tiers, one stats shape.

See :mod:`repro.cache.api` for the design. The short version:

* :class:`CacheBackend` — the protocol every tier speaks
  (``get``/``put``/``evict``/``stats``, namespace-scoped keys);
* :class:`MemoryCacheBackend` (L1) and :class:`SqliteCacheBackend`
  (persistent L2) — the two shipped backends;
* :class:`TieredCache` — composes them behind each public cache facade;
* :class:`CacheConfig` / :func:`open_cache` — declarative wiring,
  threaded through ``VerifierConfig`` and ``ServiceConfig``;
* :class:`ProfileStore` / :func:`warm_profiles` — the opt-in warm-start
  store feeding the Algorithm-10 scheduler from real traffic.
"""

from .api import (
    DEFAULT_MAX_BYTES,
    DEFAULT_PERSIST_NAMESPACES,
    CacheBackend,
    CacheConfig,
    CacheStats,
    Codec,
    stable_key,
)
from .memory import MemoryCacheBackend
from .persistent import SqliteCacheBackend
from .profiles import (
    MethodObservation,
    ProfileStore,
    record_run_profiles,
    warm_profiles,
)
from .store import CacheStore, open_cache
from .tiered import TieredCache

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_PERSIST_NAMESPACES",
    "CacheBackend",
    "CacheConfig",
    "CacheStats",
    "CacheStore",
    "Codec",
    "MemoryCacheBackend",
    "MethodObservation",
    "ProfileStore",
    "SqliteCacheBackend",
    "TieredCache",
    "open_cache",
    "record_run_profiles",
    "stable_key",
    "warm_profiles",
]
