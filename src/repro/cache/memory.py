"""The in-memory L1 backend: one thread-safe LRU for all namespaces.

This is the LRU skeleton the three pre-unification caches each
reimplemented, now written once against the
:class:`~repro.cache.api.CacheBackend` protocol. Entries are keyed
``(namespace, key)`` and share a single recency list, but stats are
tracked per namespace so each facade reports its own traffic.

Values are stored live (no serialisation); callers that hand out
mutable values keep their own defensive-copy discipline, exactly as the
old ``QueryResultCache`` did.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from .api import CacheStats

_COUNTER_NAMES = ("hits", "misses", "evictions")


class MemoryCacheBackend:
    """Thread-safe LRU over ``(namespace, key)`` with per-namespace stats."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, Hashable], object] = (
            OrderedDict()
        )
        self._counters: dict[str, dict[str, int]] = {}
        self._sizes: dict[str, int] = {}

    def _counter(self, namespace: str) -> dict[str, int]:
        counter = self._counters.get(namespace)
        if counter is None:
            counter = dict.fromkeys(_COUNTER_NAMES, 0)
            self._counters[namespace] = counter
        return counter

    def get(self, namespace: str, key: Hashable) -> object | None:
        full = (namespace, key)
        with self._lock:
            counter = self._counter(namespace)
            try:
                value = self._entries[full]
            except KeyError:
                counter["misses"] += 1
                return None
            self._entries.move_to_end(full)
            counter["hits"] += 1
            return value

    def put(self, namespace: str, key: Hashable, value: object) -> None:
        full = (namespace, key)
        with self._lock:
            if full not in self._entries:
                self._sizes[namespace] = self._sizes.get(namespace, 0) + 1
            self._entries[full] = value
            self._entries.move_to_end(full)
            while len(self._entries) > self.max_entries:
                (evicted_ns, _), _ = self._entries.popitem(last=False)
                self._sizes[evicted_ns] -= 1
                self._counter(evicted_ns)["evictions"] += 1

    def evict(self, namespace: str | None = None) -> None:
        """Drop entries (one namespace, or everything). Stats survive."""
        with self._lock:
            if namespace is None:
                self._entries.clear()
                self._sizes.clear()
                return
            doomed = [f for f in self._entries if f[0] == namespace]
            for full in doomed:
                del self._entries[full]
            self._sizes[namespace] = 0

    def stats(self, namespace: str | None = None) -> CacheStats:
        with self._lock:
            if namespace is not None:
                counter = self._counter(namespace)
                return CacheStats(
                    hits=counter["hits"],
                    misses=counter["misses"],
                    evictions=counter["evictions"],
                    size=self._sizes.get(namespace, 0),
                    max_size=self.max_entries,
                )
            totals = dict.fromkeys(_COUNTER_NAMES, 0)
            for counter in self._counters.values():
                for name in _COUNTER_NAMES:
                    totals[name] += counter[name]
            return CacheStats(
                hits=totals["hits"],
                misses=totals["misses"],
                evictions=totals["evictions"],
                size=len(self._entries),
                max_size=self.max_entries,
            )

    def reset_stats(self, namespace: str | None = None) -> None:
        with self._lock:
            if namespace is None:
                self._counters.clear()
            else:
                self._counters.pop(namespace, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
