"""The tier composer: L1 in front, optional persistent L2 behind.

Every public cache facade (``LLMCache``, ``PlanCache``,
``QueryResultCache``, the analyzer memo) owns one :class:`TieredCache`.
Lookups probe the in-process L1 first; on an L1 miss with a persistent
tier attached, the L2 is probed by *stable* key, a hit is decoded and
promoted into L1, and the caller never learns which tier answered —
except through the stats.

Facade-level counters (hits/misses/bypasses) describe what the caller
experienced; :meth:`tier_stats` exposes each tier's own accounting for
the metrics collectors (an L2 hit counts as a facade hit *and* an L1
miss — the promotion is visible, not hidden).

L2 participation is per call: callers pass ``stable_key=`` only when
they can derive a process-independent key (see
:func:`repro.cache.api.stable_key`). Without one, the entry stays
L1-only — which is how the plan cache and analyzer memo opt out
wholesale.
"""

from __future__ import annotations

import threading
from typing import Hashable

from .api import CacheStats, Codec
from .memory import MemoryCacheBackend
from .persistent import SqliteCacheBackend


class TieredCache:
    """One namespace's cache: a private L1 plus a shared, optional L2."""

    def __init__(
        self,
        namespace: str,
        max_entries: int,
        *,
        l2: SqliteCacheBackend | None = None,
        codec: Codec | None = None,
    ) -> None:
        if l2 is not None and codec is None:
            raise ValueError("a persistent tier requires a codec")
        self.namespace = namespace
        self.max_size = max_entries
        self._l1 = MemoryCacheBackend(max_entries)
        self._l2 = l2
        self._codec = codec
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._bypasses = 0
        self._l2_promotions = 0

    @property
    def has_l2(self) -> bool:
        return self._l2 is not None and self._l2.enabled

    def get(
        self, key: Hashable, stable_key: str | None = None
    ) -> object | None:
        value = self._l1.get(self.namespace, key)
        if value is not None:
            with self._lock:
                self._hits += 1
            return value
        if self._l2 is not None and stable_key is not None:
            encoded = self._l2.get(self.namespace, stable_key)
            if encoded is not None:
                try:
                    value = self._codec.decode(encoded)
                except (ValueError, KeyError, TypeError):
                    # Undecodable payload (foreign writer, schema drift):
                    # a miss, never a crash.
                    value = None
                if value is not None:
                    self._l1.put(self.namespace, key, value)
                    with self._lock:
                        self._hits += 1
                        self._l2_promotions += 1
                    return value
        with self._lock:
            self._misses += 1
        return None

    def put(
        self, key: Hashable, value: object, stable_key: str | None = None
    ) -> None:
        self._l1.put(self.namespace, key, value)
        if self._l2 is not None and stable_key is not None:
            try:
                encoded = self._codec.encode(value)
            except (ValueError, TypeError):
                return
            self._l2.put(self.namespace, stable_key, encoded)

    def note_bypass(self) -> None:
        with self._lock:
            self._bypasses += 1

    def clear(self) -> None:
        """Drop L1 entries. The persistent tier is shared state and is
        left alone — evict it through the owning store explicitly."""
        self._l1.evict(self.namespace)

    def stats(self) -> CacheStats:
        """What the caller experienced: hits from any tier, L1 pressure."""
        l1 = self._l1.stats(self.namespace)
        expirations = (
            self._l2.stats(self.namespace).expirations
            if self._l2 is not None else 0
        )
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                bypasses=self._bypasses,
                evictions=l1.evictions,
                expirations=expirations,
                size=l1.size,
                max_size=self.max_size,
            )

    def tier_stats(self) -> dict:
        """Per-tier accounting for metrics: ``{"l1": ..., "l2": ...}``."""
        tiers = {"l1": self._l1.stats(self.namespace).to_dict()}
        if self._l2 is not None:
            tiers["l2"] = self._l2.stats(self.namespace).to_dict()
        return tiers

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._bypasses = 0
            self._l2_promotions = 0
        self._l1.reset_stats(self.namespace)
        if self._l2 is not None:
            self._l2.reset_stats(self.namespace)

    def __len__(self) -> int:
        return self._l1.stats(self.namespace).size
