"""The warm-start profile store: learned method profiles that persist.

The Algorithm-10 DP scheduler plans over
:class:`~repro.core.cost_model.MethodProfile` triples — per-try accuracy,
cost, and latency. Out of the box those come from a profiling phase over
held-out documents (:func:`repro.core.profiling.profile_methods`): static
priors, re-paid on every restart. Scrutinizer's lesson (PAPERS.md) is
that *learned* cost/accuracy models beat priors once real traffic exists;
this module persists that traffic.

Observations land in the ``method_profiles`` table of the same sqlite
file as the L2 cache, one row per (run, method): how many tries the
method consumed, how many claims it verified, and the ledger-metered
dollars/latency those tries cost. :func:`warm_profiles` then folds the
accumulated observations over a prior profile list — methods with enough
recorded trials get their observed rates, the rest keep their priors.

Recording is opt-in (``CacheConfig(profiles=True)``) and reading is an
explicit call, so default runs neither write this table nor change
behaviour because of it — reports stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from .persistent import SqliteCacheBackend


@dataclass(frozen=True)
class MethodObservation:
    """Accumulated traffic of one method across recorded runs."""

    method: str
    trials: int
    successes: int
    cost: float
    latency_seconds: float

    @property
    def accuracy(self) -> float:
        """Observed per-try success rate."""
        if self.trials <= 0:
            return 0.0
        return min(1.0, self.successes / self.trials)

    @property
    def cost_per_try(self) -> float:
        return self.cost / self.trials if self.trials > 0 else 0.0

    @property
    def latency_per_try(self) -> float:
        return self.latency_seconds / self.trials if self.trials > 0 else 0.0


class ProfileStore:
    """Reads and writes ``method_profiles`` rows on a shared L2 file."""

    def __init__(self, backend: SqliteCacheBackend) -> None:
        self._backend = backend

    def record(
        self,
        method: str,
        *,
        trials: int,
        successes: int,
        cost: float,
        latency_seconds: float,
    ) -> None:
        """Append one observation row (a no-op when nothing was tried)."""
        if trials <= 0:
            return
        self._backend.run(
            "INSERT INTO method_profiles "
            "(method, recorded_at, trials, successes, cost, latency_seconds) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (method, self._backend.now(), trials, successes,
             cost, latency_seconds),
        )

    def observations(self) -> dict[str, MethodObservation]:
        """Per-method aggregates over every recorded run."""
        rows = self._backend.run(
            "SELECT method, SUM(trials), SUM(successes), SUM(cost), "
            "SUM(latency_seconds) FROM method_profiles "
            "GROUP BY method ORDER BY method"
        )
        return {
            method: MethodObservation(
                method=method,
                trials=int(trials),
                successes=int(successes),
                cost=float(cost),
                latency_seconds=float(latency),
            )
            for method, trials, successes, cost, latency in rows
        }

    def clear(self) -> None:
        self._backend.run("DELETE FROM method_profiles")


def record_run_profiles(
    store: ProfileStore, run, ledger, since: int = 0
) -> None:
    """Derive one run's per-method observations and append them.

    ``run`` is a :class:`~repro.core.pipeline.VerificationRun`: its
    claim reports carry per-method try counts and which method verified
    each claim. Costs come from the ledger's ``method:<name>`` tags,
    restricted to entries recorded after ``since`` (a
    :meth:`~repro.llm.ledger.CostLedger.checkpoint` taken when the run
    started) so earlier runs on a shared ledger are not double-counted.
    Cache-served calls record no ledger entry, so observed costs are
    what the run *actually spent* — exactly the number the scheduler
    should plan with.
    """
    trials: dict[str, int] = {}
    successes: dict[str, int] = {}
    for report in run.reports.values():
        for name, count in report.method_attempts.items():
            trials[name] = trials.get(name, 0) + count
        if report.verified_by is not None:
            successes[report.verified_by] = (
                successes.get(report.verified_by, 0) + 1
            )
    for name in sorted(trials):
        totals = ledger.totals_for_tags((f"method:{name}",), since=since)
        store.record(
            name,
            trials=trials[name],
            successes=successes.get(name, 0),
            cost=totals.cost,
            latency_seconds=totals.latency_seconds,
        )


def warm_profiles(
    store: ProfileStore, priors, min_trials: int = 20
):
    """Blend stored observations over prior profiles (Algorithm-10 input).

    Returns a new profile list in prior order: methods with at least
    ``min_trials`` recorded tries get their observed accuracy/cost/
    latency, the rest keep their priors (small samples would otherwise
    swing the DP's schedule on noise). The result feeds
    :func:`repro.core.scheduling.optimal_schedule` unchanged.
    """
    # Imported lazily: repro.core imports repro.cache (via the LLM cache
    # facade), so a module-level import here would be a cycle.
    from repro.core.cost_model import MethodProfile

    observed = store.observations()
    profiles = []
    for prior in priors:
        observation = observed.get(prior.name)
        if observation is None or observation.trials < min_trials:
            profiles.append(prior)
            continue
        profiles.append(MethodProfile(
            name=prior.name,
            accuracy=observation.accuracy,
            cost=observation.cost_per_try,
            latency_seconds=observation.latency_per_try,
        ))
    return profiles
