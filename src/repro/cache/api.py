"""The unified cache API: one stats shape, one backend protocol, one config.

Before this module existed the repo kept three near-identical ad-hoc LRU
implementations — ``llm/cache.py::LLMCache``, the planner's ``_LruCache``
behind ``PlanCache``/``QueryResultCache``, and the analyzer's memo dict —
each with its own counter names and its own stats accessor. They are now
thin facades over one :class:`~repro.cache.tiered.TieredCache` apiece,
which composes backends speaking the :class:`CacheBackend` protocol:

* **L1** — :class:`~repro.cache.memory.MemoryCacheBackend`, the familiar
  thread-safe in-process LRU holding live objects;
* **L2** — :class:`~repro.cache.persistent.SqliteCacheBackend`, a
  persistent store that survives restarts and is shareable across
  workers. Values cross the L2 boundary as text through a
  :class:`Codec`, so only types with an exact serialised round trip
  (``ChatResponse``, ``QueryResult``) are persisted.

Keys are namespace-scoped. L1 keys stay whatever the facade always used
(the tuples are only meaningful within one process); L2 keys must be
*stable* across processes, which :func:`stable_key` provides by hashing
the JSON rendering of the key parts. The SQL result namespace therefore
keys on :meth:`Database.content_fingerprint` — a content hash — rather
than the process-local ``(token, version)`` fingerprint.

Determinism contract: a cache hit (either tier) returns a value equal to
what the original computation produced, so cold-cache and warm-cache
runs render byte-identical reports. The tests in
``tests/integration/test_engine_cache_determinism.py`` enforce this.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Hashable, Protocol, runtime_checkable

#: Default byte budget of the persistent L2 tier.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Namespaces persisted to L2 by default. Plan and analysis namespaces
#: stay L1-only: their values are live AST/analysis objects whose
#: recomputation (a parse) is cheaper than a faithful serialisation.
DEFAULT_PERSIST_NAMESPACES = ("llm", "sql_result")


@dataclass(frozen=True)
class CacheStats:
    """Counters describing one cache's traffic (every cache, one shape)."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    evictions: int = 0
    expirations: int = 0
    size: int = 0
    max_size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over cacheable lookups (bypasses excluded)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __sub__(self, earlier: "CacheStats") -> "CacheStats":
        """Traffic between two snapshots of the *same* cache.

        ``later - earlier`` isolates one window's counters — e.g. the
        hits a single job or batch contributed. The size fields describe
        the cache itself, not traffic, so the later snapshot's values are
        kept as-is.
        """
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            bypasses=self.bypasses - earlier.bypasses,
            evictions=self.evictions - earlier.evictions,
            expirations=self.expirations - earlier.expirations,
            size=self.size,
            max_size=self.max_size,
        )

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Aggregate the traffic of two *different* caches."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            bypasses=self.bypasses + other.bypasses,
            evictions=self.evictions + other.evictions,
            expirations=self.expirations + other.expirations,
            size=self.size + other.size,
            max_size=self.max_size + other.max_size,
        )

    def to_dict(self) -> dict:
        """JSON-friendly rendering (reports, ``/stats`` endpoint)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "size": self.size,
            "max_size": self.max_size,
            "hit_rate": round(self.hit_rate, 4),
        }


@runtime_checkable
class CacheBackend(Protocol):
    """One storage tier: namespace-scoped get/put/evict/stats.

    ``get`` returns None on a miss (caches never store None — the
    sentinel convention every existing cache already followed). ``key``
    is any hashable for in-memory backends; persistent backends receive
    :func:`stable_key` strings and text-encoded values only.
    """

    def get(self, namespace: str, key: Hashable) -> object | None: ...

    def put(self, namespace: str, key: Hashable, value: object) -> None: ...

    def evict(self, namespace: str | None = None) -> None: ...

    def stats(self, namespace: str | None = None) -> CacheStats: ...

    def reset_stats(self, namespace: str | None = None) -> None: ...


class Codec(Protocol):
    """Exact text round trip for values crossing the persistent boundary.

    ``decode(encode(value))`` must be *equal* to ``value`` in every field
    the rest of the system can observe — the determinism contract rides
    on it. Python's JSON float rendering round-trips exactly, which is
    why the shipped codecs are plain ``json`` over dataclass fields.
    """

    def encode(self, value: object) -> str: ...

    def decode(self, text: str) -> object: ...


def stable_key(namespace: str, *parts: object) -> str:
    """A process-independent cache key: sha256 over the JSON'd parts.

    Every part must render deterministically — strings, numbers, bools,
    None, or nested lists thereof. Callers hash whatever identified the
    entry in their L1 key *minus* anything process-local (object tokens,
    ids), substituting content-derived equivalents.
    """
    payload = json.dumps(
        [namespace, *parts], separators=(",", ":"), ensure_ascii=False,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheConfig:
    """Declarative cache setup, threaded through Verifier/Service configs.

    ``path=None`` (the default) means no persistent tier: every facade
    behaves exactly as before, pure in-memory L1. With a path, an
    sqlite-backed L2 is opened lazily (and at most once per config
    object — :meth:`open` memoises) and shared by every cache the config
    reaches.

    ``profiles=True`` additionally opts in to the warm-start profile
    store: verification runs append ledger-derived per-method
    cost/accuracy observations to the same file, and
    :func:`repro.cache.warm_profiles` blends them into the
    Algorithm-10 scheduler's priors. Off by default so default runs
    stay byte-identical and side-effect free.
    """

    path: str | None = None
    ttl_seconds: float | None = None
    max_bytes: int = DEFAULT_MAX_BYTES
    persist_namespaces: tuple[str, ...] = DEFAULT_PERSIST_NAMESPACES
    profiles: bool = False
    _store: object = field(default=None, repr=False, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False,
    )

    def __post_init__(self) -> None:
        if self.max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")

    def open(self):
        """The opened :class:`~repro.cache.store.CacheStore` (memoised)."""
        from .store import CacheStore

        with self._lock:
            if self._store is None:
                self._store = CacheStore(self)
            return self._store
