"""The persistent L2 backend: an sqlite file that survives restarts.

One file holds every persisted namespace (plus the method-profile
observations of :mod:`repro.cache.profiles`), so a restarted worker — or
a future shard worker pointed at the same path — warms up from the whole
fleet's traffic. WAL journalling keeps concurrent readers cheap; one
process-level lock serialises this process's statements.

Failure policy: **a cache must never take the service down.** A corrupt
file is quarantined (renamed ``<path>.corrupt``) at open and a fresh
store is created in its place; an sqlite error mid-flight disables the
backend for the rest of the process, turning every subsequent ``get``
into a miss and every ``put`` into a no-op. Both paths are exercised by
``tests/integration/test_engine_cache_determinism.py``.

Values arrive already text-encoded (see :class:`~repro.cache.api.Codec`)
and are budgeted by encoded size: when the file's payload exceeds
``max_bytes``, oldest-created entries are dropped first. ``ttl_seconds``
expires entries lazily on read; expirations are counted separately from
evictions so the stats distinguish "aged out" from "squeezed out".

This module is the one place in the repo allowed to import ``sqlite3``
(enforced by ``tools/check_invariants.py``).
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from typing import Callable, Iterable

from .api import DEFAULT_MAX_BYTES, CacheStats

_COUNTER_NAMES = ("hits", "misses", "evictions", "expirations")

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS cache (
        namespace  TEXT NOT NULL,
        key        TEXT NOT NULL,
        value      TEXT NOT NULL,
        created_at REAL NOT NULL,
        expires_at REAL,
        size_bytes INTEGER NOT NULL,
        PRIMARY KEY (namespace, key)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS method_profiles (
        method          TEXT NOT NULL,
        recorded_at     REAL NOT NULL,
        trials          INTEGER NOT NULL,
        successes       INTEGER NOT NULL,
        cost            REAL NOT NULL,
        latency_seconds REAL NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS cache_age ON cache (created_at)",
)


class SqliteCacheBackend:
    """A :class:`~repro.cache.api.CacheBackend` over one sqlite file."""

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        ttl_seconds: float | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = str(path)
        self.ttl_seconds = ttl_seconds
        self.max_bytes = max_bytes
        self._clock = clock
        self._lock = threading.RLock()
        self._counters: dict[str, dict[str, int]] = {}
        self._conn: sqlite3.Connection | None = None
        try:
            self._conn = self._connect()
        except sqlite3.Error:
            # Unreadable/corrupt file: move it aside and start fresh. If
            # even a fresh file will not open (unwritable directory, ...)
            # the backend stays disabled — misses, not crashes.
            self._quarantine()
            try:
                self._conn = self._connect()
            except sqlite3.Error:
                self._conn = None

    # -- connection lifecycle ------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, check_same_thread=False)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=5000")
            for statement in _SCHEMA:
                conn.execute(statement)
            conn.commit()
            # Corrupt files often connect fine and fail on first real
            # read; probe now so corruption is handled at open, once.
            conn.execute("SELECT COUNT(*) FROM cache").fetchone()
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def _quarantine(self) -> None:
        try:
            os.replace(self.path, self.path + ".corrupt")
        except OSError:
            try:
                os.remove(self.path)
            except OSError:
                pass

    def _disable(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    @property
    def enabled(self) -> bool:
        return self._conn is not None

    def close(self) -> None:
        with self._lock:
            self._disable()

    # -- the backend protocol ------------------------------------------------

    def _counter(self, namespace: str) -> dict[str, int]:
        counter = self._counters.get(namespace)
        if counter is None:
            counter = dict.fromkeys(_COUNTER_NAMES, 0)
            self._counters[namespace] = counter
        return counter

    def get(self, namespace: str, key: str) -> str | None:
        with self._lock:
            counter = self._counter(namespace)
            if self._conn is None:
                counter["misses"] += 1
                return None
            try:
                row = self._conn.execute(
                    "SELECT value, expires_at FROM cache "
                    "WHERE namespace = ? AND key = ?",
                    (namespace, key),
                ).fetchone()
                if row is None:
                    counter["misses"] += 1
                    return None
                value, expires_at = row
                if expires_at is not None and expires_at <= self._clock():
                    self._conn.execute(
                        "DELETE FROM cache WHERE namespace = ? AND key = ?",
                        (namespace, key),
                    )
                    self._conn.commit()
                    counter["expirations"] += 1
                    counter["misses"] += 1
                    return None
                counter["hits"] += 1
                return value
            except sqlite3.Error:
                self._disable()
                counter["misses"] += 1
                return None

    def put(self, namespace: str, key: str, value: str) -> None:
        with self._lock:
            if self._conn is None:
                return
            now = self._clock()
            expires_at = (
                now + self.ttl_seconds if self.ttl_seconds is not None
                else None
            )
            size = len(value.encode("utf-8"))
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO cache "
                    "(namespace, key, value, created_at, expires_at, "
                    "size_bytes) VALUES (?, ?, ?, ?, ?, ?)",
                    (namespace, key, value, now, expires_at, size),
                )
                self._evict_over_budget()
                self._conn.commit()
            except sqlite3.Error:
                self._disable()

    def _evict_over_budget(self) -> None:
        total = self._conn.execute(
            "SELECT COALESCE(SUM(size_bytes), 0) FROM cache"
        ).fetchone()[0]
        while total > self.max_bytes:
            row = self._conn.execute(
                "SELECT namespace, key, size_bytes FROM cache "
                "ORDER BY created_at ASC, namespace ASC, key ASC LIMIT 1"
            ).fetchone()
            if row is None:
                break
            namespace, key, size = row
            self._conn.execute(
                "DELETE FROM cache WHERE namespace = ? AND key = ?",
                (namespace, key),
            )
            total -= size
            self._counter(namespace)["evictions"] += 1

    def evict(self, namespace: str | None = None) -> None:
        with self._lock:
            if self._conn is None:
                return
            try:
                if namespace is None:
                    self._conn.execute("DELETE FROM cache")
                else:
                    self._conn.execute(
                        "DELETE FROM cache WHERE namespace = ?", (namespace,)
                    )
                self._conn.commit()
            except sqlite3.Error:
                self._disable()

    def _entry_count(self, namespace: str | None) -> int:
        if self._conn is None:
            return 0
        try:
            if namespace is None:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM cache"
                ).fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM cache WHERE namespace = ?",
                    (namespace,),
                ).fetchone()
            return int(row[0])
        except sqlite3.Error:
            self._disable()
            return 0

    def stats(self, namespace: str | None = None) -> CacheStats:
        """Traffic counters plus the live entry count. ``max_size`` is 0:
        this tier is budgeted in bytes, not entries."""
        with self._lock:
            if namespace is not None:
                counters = dict(self._counter(namespace))
            else:
                counters = dict.fromkeys(_COUNTER_NAMES, 0)
                for counter in self._counters.values():
                    for name in _COUNTER_NAMES:
                        counters[name] += counter[name]
            return CacheStats(
                hits=counters["hits"],
                misses=counters["misses"],
                evictions=counters["evictions"],
                expirations=counters["expirations"],
                size=self._entry_count(namespace),
            )

    def reset_stats(self, namespace: str | None = None) -> None:
        with self._lock:
            if namespace is None:
                self._counters.clear()
            else:
                self._counters.pop(namespace, None)

    def namespaces(self) -> list[str]:
        """Namespaces present in the file (for ``/stats`` renderings)."""
        with self._lock:
            if self._conn is None:
                return []
            try:
                rows = self._conn.execute(
                    "SELECT DISTINCT namespace FROM cache ORDER BY namespace"
                ).fetchall()
            except sqlite3.Error:
                self._disable()
                return []
            return [row[0] for row in rows]

    # -- shared-file helpers (profile store) ---------------------------------

    def run(self, sql: str, params: Iterable = ()) -> list[tuple]:
        """Execute one statement on the shared file, error-safe.

        Used by :class:`~repro.cache.profiles.ProfileStore`, which lives
        in the same file. Returns fetched rows (empty for writes); any
        sqlite error disables the backend and returns nothing, matching
        the never-crash policy of the cache side.
        """
        with self._lock:
            if self._conn is None:
                return []
            try:
                cursor = self._conn.execute(sql, tuple(params))
                rows = cursor.fetchall()
                self._conn.commit()
                return rows
            except sqlite3.Error:
                self._disable()
                return []

    def now(self) -> float:
        return self._clock()
