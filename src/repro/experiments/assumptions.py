"""Extended-report experiment — the cost of the independence assumptions.

Section 6.1 makes two simplifying assumptions: retries of one method are
independent draws (Assumption 1) and different methods succeed
independently (Assumption 2). The extended technical report the paper
cites ([11]) assesses what those assumptions cost. This experiment
reproduces that assessment: for a range of schedules, the closed-form
estimates of Theorems 6.1/6.2 are compared with the *realized* success
rate and cost measured by actually running the schedule.

The expected picture (and the paper's conclusion): estimated accuracy is
*optimistic* — correlated failures (a claim whose phrasing defeats every
model, a misreading every retry repeats) mean real schedules plateau
below the independence prediction — while the cost estimates stay close,
and the optimistic bias does not change which schedule the optimizer
prefers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    PlannedSchedule,
    PlannedStage,
    describe_schedule,
    schedule_accuracy,
    schedule_cost,
)
from repro.core import MultiStageVerifier, VerifierConfig
from repro.datasets import build_aggchecker

from .common import build_cedar, format_table, profile_system, reset_claims


@dataclass
class AssumptionPoint:
    """Estimated vs realized metrics for one schedule."""

    schedule: str
    estimated_accuracy: float
    realized_accuracy: float
    estimated_cost_per_claim: float
    realized_cost_per_claim: float

    @property
    def accuracy_gap(self) -> float:
        """Positive when the independence model is optimistic."""
        return self.estimated_accuracy - self.realized_accuracy


@dataclass
class AssumptionsResult:
    points: list[AssumptionPoint]

    @property
    def mean_accuracy_gap(self) -> float:
        return sum(p.accuracy_gap for p in self.points) / len(self.points)


#: Schedules probed: deeper and deeper retry ladders — exactly where
#: Assumption 1 bites (retrying a correlated failure buys nothing).
_PROBE_SCHEDULES: tuple[PlannedSchedule, ...] = (
    (PlannedStage("one_shot[gpt-3.5-turbo]", 1),),
    (PlannedStage("one_shot[gpt-3.5-turbo]", 3),),
    (PlannedStage("one_shot[gpt-3.5-turbo]", 3),
     PlannedStage("one_shot[gpt-4o]", 3)),
    (PlannedStage("one_shot[gpt-3.5-turbo]", 3),
     PlannedStage("one_shot[gpt-4o]", 3),
     PlannedStage("agent[gpt-4o]", 2)),
)


def run_assumptions(fast: bool = False, seed: int = 0) -> AssumptionsResult:
    """Compare Theorem 6.1/6.2 estimates with realized measurements."""
    if fast:
        bundle = build_aggchecker(document_count=10, total_claims=60)
    else:
        bundle = build_aggchecker(document_count=28, total_claims=190)
    points = []
    for planned in _PROBE_SCHEDULES:
        system = build_cedar(bundle, seed=seed)
        profiles = profile_system(system, bundle.documents[:3])
        estimated_accuracy = schedule_accuracy(planned, profiles)
        estimated_cost = schedule_cost(planned, profiles)
        entries = system.entries_for(planned)
        reset_claims(bundle.documents)
        checkpoint = system.ledger.checkpoint()
        # Same success definition as profiling (a plausible query whose
        # verdict matches the label), and no few-shot samples — profiling
        # measures sample-free tries, so the comparison must too.
        verifier = MultiStageVerifier(config=VerifierConfig(
            ledger=system.ledger, use_samples=False
        ))
        run = verifier.verify_documents(bundle.documents, entries)
        claims = bundle.claims
        verified = sum(
            1 for claim in claims
            if run.reports[claim.claim_id].verified_by is not None
            and claim.correct == bool(claim.metadata["label_correct"])
        )
        realized_accuracy = verified / len(claims)
        realized_cost = (
            system.ledger.totals_since(checkpoint).cost / len(claims)
        )
        points.append(AssumptionPoint(
            schedule=describe_schedule(planned),
            estimated_accuracy=estimated_accuracy,
            realized_accuracy=realized_accuracy,
            estimated_cost_per_claim=estimated_cost,
            realized_cost_per_claim=realized_cost,
        ))
    return AssumptionsResult(points)


def format_assumptions(result: AssumptionsResult) -> str:
    lines = [
        "Extended report — cost of the independence assumptions "
        "(Section 6.1)",
        "",
        "Per-claim verification success and cost: the Theorem 6.1/6.2",
        "closed forms (computed from profiles) vs the realized values.",
        "",
    ]
    rows = [
        [
            point.schedule,
            f"{point.estimated_accuracy:.3f}",
            f"{point.realized_accuracy:.3f}",
            f"{point.accuracy_gap:+.3f}",
            f"${point.estimated_cost_per_claim:.5f}",
            f"${point.realized_cost_per_claim:.5f}",
        ]
        for point in result.points
    ]
    lines.append(format_table(
        ["schedule", "est. A", "real A", "gap", "est. $/claim",
         "real $/claim"],
        rows,
    ))
    lines.append("")
    lines.append(
        f"mean optimism of the independence model: "
        f"{result.mean_accuracy_gap:+.3f} "
        "(positive = estimates too optimistic, as expected: retries of "
        "correlated failures buy less than independence predicts)"
    )
    return "\n".join(lines)


def main(fast: bool = False) -> str:
    report = format_assumptions(run_assumptions(fast=fast))
    print(report)
    return report


if __name__ == "__main__":
    main()
