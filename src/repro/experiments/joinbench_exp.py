"""Experiment E6 — paper Section 7.3.2 (JoinBench).

CEDAR is run on the same claims over the original flat schemas and over
the normalised 23-table schemas. The paper reports identical F1 (100 % on
both variants) with the verification cost rising from $1.2 to $3.7
(≈ 3x): join queries defeat cheap one-shot translation more often, so more
claims escalate to the expensive agents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import build_joinbench
from repro.metrics import percentage

from .common import run_cedar


@dataclass
class JoinBenchResult:
    flat_f1: float
    joined_f1: float
    flat_cost: float
    joined_cost: float
    table_total: int

    @property
    def cost_ratio(self) -> float:
        if self.flat_cost == 0:
            return 0.0
        return self.joined_cost / self.flat_cost


def run_joinbench(fast: bool = False, seed: int = 0) -> JoinBenchResult:
    bundles = build_joinbench()
    flat = run_cedar(bundles["flat"], seed=seed)
    joined = run_cedar(bundles["joined"], seed=seed)
    return JoinBenchResult(
        flat_f1=percentage(flat.counts.f1),
        joined_f1=percentage(joined.counts.f1),
        flat_cost=flat.economics.cost,
        joined_cost=joined.economics.cost,
        table_total=bundles["joined"].extras["table_total"],
    )


def format_joinbench(result: JoinBenchResult) -> str:
    return "\n".join([
        "Section 7.3.2 — JoinBench (claims requiring joins)",
        "",
        f"normalised schema tables: {result.table_total} (paper: 23)",
        f"F1 flat schemas:   {result.flat_f1:.1f} (paper: 100)",
        f"F1 joined schemas: {result.joined_f1:.1f} (paper: 100)",
        f"cost flat:   ${result.flat_cost:.4f}",
        f"cost joined: ${result.joined_cost:.4f}",
        f"cost ratio joined/flat: {result.cost_ratio:.2f}x "
        "(paper: $3.7/$1.2 = 3.1x)",
    ])


def main(fast: bool = False) -> str:
    report = format_joinbench(run_joinbench(fast=fast))
    print(report)
    return report


if __name__ == "__main__":
    main()
