"""Experiment E5 — paper Table 3.

Query complexity statistics (per-query average / maximum) of the claims'
ground-truth queries across the four benchmarks, computed by parsing each
reference query and walking its AST.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import (
    build_aggchecker,
    build_joinbench,
    build_tabfact,
    build_wikitext,
)
from repro.metrics import ComplexityStats, analyse_claims

from .common import format_table

#: Paper Table 3, for side-by-side comparison: (avg, max) per metric.
PAPER_TABLE3 = {
    "AggChecker": {"joins": (0, 0), "group_by": (0.01, 1),
                   "subqueries": (0.54, 2), "aggregates": (0.99, 12),
                   "columns": (1.3, 2)},
    "TabFact": {"joins": (0, 0), "group_by": (0, 0),
                "subqueries": (0.09, 2), "aggregates": (0.63, 1),
                "columns": (1.05, 2)},
    "WikiText": {"joins": (0, 0), "group_by": (0.22, 1),
                 "subqueries": (0.33, 3), "aggregates": (0.51, 3),
                 "columns": (1.33, 4)},
    "JoinBench": {"joins": (0.62, 3), "group_by": (0, 0),
                  "subqueries": (0.52, 2), "aggregates": (0.76, 2),
                  "columns": (1.5, 2)},
}


@dataclass
class Table3Result:
    stats: dict[str, ComplexityStats]


def run_table3(fast: bool = False) -> Table3Result:
    """Analyse the ground-truth queries of every benchmark."""
    if fast:
        bundles = {
            "AggChecker": build_aggchecker(document_count=10,
                                           total_claims=60),
            "TabFact": build_tabfact(table_count=10, total_claims=36),
            "WikiText": build_wikitext(document_count=6, total_claims=20),
            "JoinBench": build_joinbench()["joined"],
        }
    else:
        bundles = {
            "AggChecker": build_aggchecker(),
            "TabFact": build_tabfact(),
            "WikiText": build_wikitext(),
            "JoinBench": build_joinbench()["joined"],
        }
    return Table3Result(
        stats={
            name: analyse_claims(bundle.claims)
            for name, bundle in bundles.items()
        }
    )


def format_table3(result: Table3Result) -> str:
    lines = ["Table 3 — query complexity statistics (avg/max per query)",
             "(measured, with the paper's values in parentheses)", ""]
    rows = []
    for name, stats in result.stats.items():
        paper = PAPER_TABLE3[name]
        rows.append([
            name,
            _cell(stats.avg_joins, stats.max_joins, paper["joins"]),
            _cell(stats.avg_group_by, stats.max_group_by, paper["group_by"]),
            _cell(stats.avg_subqueries, stats.max_subqueries,
                  paper["subqueries"]),
            _cell(stats.avg_aggregates, stats.max_aggregates,
                  paper["aggregates"]),
            _cell(stats.avg_columns, stats.max_columns, paper["columns"]),
        ])
    lines.append(
        format_table(
            ["Data set", "Joins", "GroupBy", "SubQ", "Agg", "Cols"], rows
        )
    )
    return "\n".join(lines)


def _cell(avg: float, maximum: int, paper: tuple[float, float]) -> str:
    return f"{avg:.2f}/{maximum} ({paper[0]}/{paper[1]})"


def main(fast: bool = False) -> str:
    report = format_table3(run_table3(fast=fast))
    print(report)
    return report


if __name__ == "__main__":
    main()
