"""Experiment E1 — paper Table 2.

Result quality (precision / recall / F1) of CEDAR versus the AggChecker
system, TAPEX, and the P1/P2 text-to-SQL baselines on the AggChecker,
TabFact, and WikiText benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import AggCheckerSystem, TapexBaseline, TextToSqlBaseline
from repro.datasets import (
    DatasetBundle,
    build_aggchecker,
    build_tabfact,
    build_wikitext,
)
from repro.llm import CostLedger, SimulatedLLM
from repro.metrics import ConfusionCounts, percentage, score_claims

from .common import CedarRunResult, format_table, reset_claims, run_cedar


@dataclass
class Table2Cell:
    """One system's scores on one dataset."""

    precision: float
    recall: float
    f1: float
    cost: float = 0.0
    supported: bool = True


@dataclass
class Table2Result:
    """All cells of Table 2, plus the CEDAR run details."""

    datasets: list[str]
    systems: list[str]
    cells: dict[tuple[str, str], Table2Cell] = field(default_factory=dict)
    cedar_runs: dict[str, CedarRunResult] = field(default_factory=dict)


def dataset_builders(fast: bool = False):
    """The three Table 2 benchmarks (smaller AggChecker in fast mode)."""
    if fast:
        return {
            "AggChecker": lambda: build_aggchecker(
                document_count=10, total_claims=60
            ),
            "TabFact": lambda: build_tabfact(table_count=10, total_claims=36),
            "WikiText": lambda: build_wikitext(
                document_count=6, total_claims=20
            ),
        }
    return {
        "AggChecker": build_aggchecker,
        "TabFact": build_tabfact,
        "WikiText": build_wikitext,
    }


def run_table2(fast: bool = False, seed: int = 0) -> Table2Result:
    """Run every system on every dataset."""
    builders = dataset_builders(fast)
    systems = ["CEDAR", "AggC", "TAPEX", "P1", "P2"]
    result = Table2Result(datasets=list(builders), systems=systems)
    for dataset_name, builder in builders.items():
        bundle: DatasetBundle = builder()
        cedar = run_cedar(bundle, seed=seed)
        result.cedar_runs[dataset_name] = cedar
        result.cells[(dataset_name, "CEDAR")] = _cell(
            cedar.counts, cedar.economics.cost
        )
        result.cells[(dataset_name, "AggC")] = _run_baseline(
            AggCheckerSystem(), bundle, textual=dataset_name == "WikiText"
        )
        result.cells[(dataset_name, "TAPEX")] = _run_baseline(
            TapexBaseline(bundle.world, seed=seed), bundle
        )
        for template in ("P1", "P2"):
            ledger = CostLedger()
            client = SimulatedLLM(
                "gpt-3.5-turbo", bundle.world, ledger, seed=seed + 7
            )
            baseline = TextToSqlBaseline(client, template)
            cell = _run_baseline(baseline, bundle)
            cell.cost = ledger.total_cost
            result.cells[(dataset_name, template)] = cell
    return result


def _run_baseline(baseline, bundle: DatasetBundle,
                  textual: bool = False) -> Table2Cell:
    if textual and not baseline.supports_textual:
        return Table2Cell(0.0, 0.0, 0.0, supported=False)
    reset_claims(bundle.documents)
    baseline.verify_documents(bundle.documents)
    counts = score_claims(bundle.claims)
    return _cell(counts)


def _cell(counts: ConfusionCounts, cost: float = 0.0) -> Table2Cell:
    return Table2Cell(
        precision=percentage(counts.precision),
        recall=percentage(counts.recall),
        f1=percentage(counts.f1),
        cost=cost,
    )


#: What the paper reports (Table 2), for side-by-side comparison.
PAPER_TABLE2 = {
    ("AggChecker", "CEDAR"): (59.7, 89.6, 71.7),
    ("AggChecker", "AggC"): (36.2, 70.8, 47.9),
    ("AggChecker", "TAPEX"): (0.0, 0.0, 0.0),
    ("AggChecker", "P1"): (15.0, 64.0, 24.0),
    ("AggChecker", "P2"): (15.0, 70.0, 24.0),
    ("TabFact", "CEDAR"): (87.9, 85.3, 86.6),
    ("TabFact", "AggC"): (50.0, 34.6, 40.9),
    ("TabFact", "TAPEX"): (88.5, 71.9, 79.3),
    ("TabFact", "P1"): (45.4, 88.2, 60.0),
    ("TabFact", "P2"): (41.9, 91.2, 57.4),
    ("WikiText", "CEDAR"): (33.3, 100.0, 50.0),
    ("WikiText", "AggC"): (None, None, None),  # unsupported
    ("WikiText", "TAPEX"): (100.0, 18.0, 30.5),
    ("WikiText", "P1"): (0.0, 0.0, 0.0),
    ("WikiText", "P2"): (4.5, 100.0, 28.6),
}


def format_table2(result: Table2Result) -> str:
    """Render the measured Table 2 with the paper's numbers alongside."""
    lines = ["Table 2 — result quality of CEDAR and baselines",
             "(each cell: measured, with the paper's value in parentheses)",
             ""]
    for metric_index, metric in enumerate(("Precision", "Recall", "F1")):
        rows = []
        for dataset in result.datasets:
            row = [dataset, metric]
            for system in result.systems:
                cell = result.cells[(dataset, system)]
                paper = PAPER_TABLE2.get((dataset, system))
                if not cell.supported:
                    row.append("-")
                    continue
                measured = (cell.precision, cell.recall, cell.f1)[metric_index]
                if paper is None or paper[metric_index] is None:
                    row.append(f"{measured:.1f}")
                else:
                    row.append(f"{measured:.1f} ({paper[metric_index]:.1f})")
            rows.append(row)
        lines.append(
            format_table(["Dataset", "Metric"] + result.systems, rows)
        )
        lines.append("")
    return "\n".join(lines)


def main(fast: bool = False) -> str:
    report = format_table2(run_table2(fast=fast))
    print(report)
    return report


if __name__ == "__main__":
    main()
