"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments <experiment> [--fast]
    python -m repro.experiments all [--fast]

Experiments: table2, costs, figure5, figure6, table3, joinbench,
figure7, assumptions, parallel, service, sqlengine, analyzer, obs,
cache, cluster.

``--trace FILE`` installs a process-wide tracer for the run and writes
the resulting span forest as Chrome trace-event JSON (load it in
https://ui.perfetto.dev) — handy for seeing where an experiment's time
actually goes.
"""

from __future__ import annotations

import argparse
import sys

from . import (analyzer_bench, assumptions, cache_bench, cluster_bench,
               costs, figure5, figure6, figure7, joinbench_exp, obs_bench,
               parallel_bench, service_bench, sqlengine_bench, table2,
               table3)

EXPERIMENTS = {
    "analyzer": analyzer_bench.main,
    "cache": cache_bench.main,
    "cluster": cluster_bench.main,
    "obs": obs_bench.main,
    "assumptions": assumptions.main,
    "parallel": parallel_bench.main,
    "service": service_bench.main,
    "sqlengine": sqlengine_bench.main,
    "table2": table2.main,
    "costs": costs.main,
    "figure5": figure5.main,
    "figure6": figure6.main,
    "table3": table3.main,
    "joinbench": joinbench_exp.main,
    "figure7": figure7.main,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="run on reduced datasets (for smoke testing)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON of the run "
             "(load it in https://ui.perfetto.dev)",
    )
    arguments = parser.parse_args(argv)
    tracer = None
    previous = None
    if arguments.trace:
        from repro.obs import Tracer, set_default_tracer

        tracer = Tracer(trace_id=f"experiments-{arguments.experiment}")
        previous = set_default_tracer(tracer)
    try:
        if arguments.experiment == "all":
            for name in sorted(EXPERIMENTS):
                print(f"{'=' * 72}\n{name}\n{'=' * 72}")
                EXPERIMENTS[name](fast=arguments.fast)
                print()
        else:
            EXPERIMENTS[arguments.experiment](fast=arguments.fast)
    finally:
        if tracer is not None:
            from repro.obs import set_default_tracer, write_chrome_trace

            set_default_tracer(previous)
            write_chrome_trace(
                tracer, arguments.trace,
                process_name=f"experiments:{arguments.experiment}",
            )
            print(f"trace: {tracer.span_count()} spans -> "
                  f"{arguments.trace} (open in https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
