"""Cluster saturation benchmark — 1 process vs N sharded workers.

Drives the same mixed-priority, many-client closed-loop workload against
two deployments of the verification service:

* **single** — today's ``python -m repro.service`` shape: one process,
  one dispatcher, the stdlib threaded HTTP front end;
* **cluster** — ``python -m repro.cluster``: the asyncio router
  consistent-hashing the same jobs onto N worker processes.

The workload is the regime the cluster exists for: every job verifies a
*distinct* document (the "bench" dataset profile's 16 hot documents),
so nothing is answered from a warm response cache and every claim pays
its simulated model latency (:class:`LatencySimulatingClient`, the same
scaled-sleep wrapper the parallel and cache benchmarks use). A single
process runs one micro-batch at a time — its saturation throughput is
capped by one dispatcher's worth of concurrent model calls — while the
cluster runs one batch *per shard*: the speedup measures genuine
process-level scale-out of latency-bound work, not CPU parallelism
(record ``cpu_count`` honestly: this box may well have one core).

Each client thread loops submit → follow the ndjson event stream to the
terminal event → next job, so offered load tracks capacity (closed
loop) and per-job latency includes queueing. Reported per arm:
saturation throughput (jobs/s), p50/p99 job latency, and verdict
digests — the cluster must produce byte-identical verdicts to the
single process for the same documents and seed.

Run with::

    python -m repro.experiments cluster --fast

Writes ``BENCH_cluster.json`` so the scale-out factor is
machine-checkable. Acceptance: >= 2.5x saturation throughput at 4
workers with p99 latency no worse.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from .common import format_table

#: Acceptance bar at the full (4-worker) configuration.
MIN_SPEEDUP = 2.5

OUTPUT_FILE = "BENCH_cluster.json"

#: (worker counts, client threads, jobs) for the two modes. Jobs never
#: exceed the bench profile's document count: every measured job is a
#: *distinct* document, so none is a warm-cache replay and each pays
#: its simulated model latency (the regime the cluster scales).
FULL = ((1, 4), 16, 32)
FAST = ((1, 2), 6, 8)

#: Scaled simulated model latency. Deliberately 10x the parallel
#: bench's scale: the cluster's claim is scale-out of *latency-bound*
#: capacity, so model latency must dominate per-claim compute the way
#: it does against hosted APIs — at 0.01 on a small box, Python-side
#: compute swamps the sleeps and every deployment converges on the
#: single core's ceiling.
LATENCY_SCALE = 0.1

_TAG = re.compile(r"^r\d+/")


@dataclass
class ArmResult:
    """One deployment's saturation numbers."""

    label: str
    workers: int
    jobs: int
    wall_seconds: float
    throughput: float            # jobs per second at saturation
    p50_seconds: float
    p99_seconds: float
    rejected: int                # admission rejections seen by clients
    verdicts: dict = field(default_factory=dict)  # doc -> verdict digest

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "workers": self.workers,
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 3),
            "throughput_jobs_per_second": round(self.throughput, 3),
            "p50_seconds": round(self.p50_seconds, 3),
            "p99_seconds": round(self.p99_seconds, 3),
            "rejected": self.rejected,
        }


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return (sorted_values[low] * (1 - fraction)
            + sorted_values[high] * fraction)


def _verdict_digest(events: list[dict]) -> list:
    """Order/tag-independent verdict record for one job's event stream."""
    return sorted(
        (_TAG.sub("", event["claim_id"]), event["verdict"])
        for event in events
        if event.get("event") == "claim_verdict"
    )


class _LoadGenerator:
    """Closed-loop mixed-priority clients against one HTTP base URL."""

    def __init__(self, base_url: str, clients: int, jobs: int,
                 documents: int) -> None:
        self.base_url = base_url
        self.clients = clients
        self.latencies: list[float] = []
        self.verdicts: dict[int, list] = {}
        self.rejected = 0
        self._lock = threading.Lock()
        # One shared queue of (document, priority) jobs — identical for
        # both arms: distinct documents round-robin, priorities
        # alternating high/low. Clients pull from it work-stealing
        # style, so a slow shard delays only its own jobs and never
        # idles a client that could be driving another shard.
        self.work: list[tuple[int, int]] = [
            (index % documents, index % 2) for index in range(jobs)
        ]

    def _post(self, payload: dict) -> tuple[int, dict]:
        request = urllib.request.Request(
            f"{self.base_url}/v1/verify",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=300) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def _next_job(self) -> tuple[int, int] | None:
        with self._lock:
            return self.work.pop(0) if self.work else None

    def _run_client(self, client_index: int) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            document, priority = job
            started = time.monotonic()
            while True:
                status, body = self._post({
                    "dataset": "aggchecker",
                    "document": document,
                    "priority": priority,
                    "client_id": f"load-{client_index}",
                })
                if status == 202:
                    break
                # Back off as instructed and retry: a closed-loop
                # client never abandons its job.
                with self._lock:
                    self.rejected += 1
                time.sleep(min(1.0, body.get("retry_after_seconds", 1) / 4))
            with urllib.request.urlopen(
                f"{self.base_url}{body['events_url']}?wait=1&timeout=300",
                timeout=300,
            ) as response:
                events = [json.loads(line) for line in response
                          if line.strip()]
            assert events[-1]["event"] == "job_done", events[-1]
            elapsed = time.monotonic() - started
            with self._lock:
                self.latencies.append(elapsed)
                self.verdicts.setdefault(document, _verdict_digest(events))

    def run(self) -> float:
        threads = [
            threading.Thread(target=self._run_client, args=(index,))
            for index in range(self.clients)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.monotonic() - started


def _measure(base_url: str, label: str, workers: int, clients: int,
             jobs: int, documents: int) -> ArmResult:
    generator = _LoadGenerator(base_url, clients, jobs, documents)
    wall = generator.run()
    latencies = sorted(generator.latencies)
    return ArmResult(
        label=label,
        workers=workers,
        jobs=len(latencies),
        wall_seconds=wall,
        throughput=len(latencies) / wall if wall > 0 else 0.0,
        p50_seconds=_quantile(latencies, 0.50),
        p99_seconds=_quantile(latencies, 0.99),
        rejected=generator.rejected,
        verdicts=generator.verdicts,
    )


def _run_single_arm(clients: int, jobs: int, documents: int) -> ArmResult:
    """Today's one-process deployment, warmed up like the workers are."""
    from repro.service import ServiceConfig, VerificationService
    from repro.service.http import ServiceApp, make_server

    from .parallel_bench import LatencySimulatingClient

    from repro.cluster.worker import dataset_builders

    service = VerificationService(ServiceConfig(
        max_queue_depth=256, per_client_limit=1_000_000, use_samples=True,
    )).start()
    app = ServiceApp(
        service,
        datasets=dataset_builders("bench"),
        seed=0,
        client_wrapper=lambda client: LatencySimulatingClient(
            client, LATENCY_SCALE,
        ),
    )
    app.warm("aggchecker")  # dataset build happens off the clock
    http_server = make_server(port=0, app=app)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    host, port = http_server.server_address[:2]
    try:
        return _measure(f"http://{host}:{port}", "single-process", 1,
                        clients, jobs, documents)
    finally:
        http_server.shutdown()
        http_server.server_close()
        service.shutdown(drain=True)
        thread.join(timeout=10)


def _run_cluster_arm(workers: int, clients: int, jobs: int,
                     documents: int) -> ArmResult:
    """The router + N worker processes on the same workload."""
    from repro.cluster import ClusterConfig, ClusterRouter

    loop = asyncio.new_event_loop()
    loop_thread = threading.Thread(target=loop.run_forever, daemon=True)
    loop_thread.start()

    def run(coroutine, timeout=600):
        return asyncio.run_coroutine_threadsafe(
            coroutine, loop,
        ).result(timeout)

    async def _start():
        router = ClusterRouter(ClusterConfig(
            workers=workers,
            profile="bench",
            per_client_limit=1_000_000,
            latency_scale=LATENCY_SCALE,
            spawn_timeout=180.0,
        ))
        await router.start()
        host, port = await router.serve_http(port=0)
        return router, host, port

    router, host, port = run(_start())
    # Every worker builds the dataset bundle off the clock, one at a
    # time (concurrent builds just contend for the same core).
    for worker_id in sorted(router.supervisor.slots):
        link = router.supervisor.link(worker_id)
        if link is not None:
            run(link.request("warm", timeout=600, dataset="aggchecker"))
    try:
        return _measure(f"http://{host}:{port}",
                        f"cluster-{workers}", workers,
                        clients, jobs, documents)
    finally:
        run(router.drain(timeout=120))
        run(router.stop())
        loop.call_soon_threadsafe(loop.stop)
        loop_thread.join(timeout=10)


@dataclass
class ClusterBenchResult:
    single: ArmResult
    cluster: list[ArmResult]
    documents: int
    clients: int

    @property
    def best(self) -> ArmResult:
        return max(self.cluster, key=lambda arm: arm.workers)

    @property
    def speedup(self) -> float:
        if self.single.throughput <= 0:
            return 0.0
        return self.best.throughput / self.single.throughput

    @property
    def p99_no_worse(self) -> bool:
        # "No worse" with a 10% measurement-noise allowance.
        return self.best.p99_seconds <= self.single.p99_seconds * 1.10

    @property
    def verdicts_match(self) -> bool:
        reference = self.single.verdicts
        for arm in self.cluster:
            for document, digest in arm.verdicts.items():
                if reference.get(document) != digest:
                    return False
        return True


def run_cluster_bench(fast: bool = False) -> ClusterBenchResult:
    worker_counts, clients, jobs = FAST if fast else FULL
    from repro.cluster.worker import dataset_builders

    documents = len(
        dataset_builders("bench")["aggchecker"]().documents
    )
    documents = min(documents, jobs)
    single = _run_single_arm(clients, jobs, documents)
    cluster = [
        _run_cluster_arm(workers, clients, jobs, documents)
        for workers in worker_counts
    ]
    return ClusterBenchResult(
        single=single, cluster=cluster,
        documents=documents, clients=clients,
    )


def format_cluster_bench(result: ClusterBenchResult) -> str:
    rows = []
    for arm in [result.single] + result.cluster:
        rows.append([
            arm.label,
            str(arm.workers),
            f"{arm.throughput:.2f}",
            f"{arm.p50_seconds * 1000:.0f}",
            f"{arm.p99_seconds * 1000:.0f}",
            str(arm.rejected),
        ])
    table = format_table(
        ["deployment", "workers", "jobs/s", "p50 ms", "p99 ms", "shed"],
        rows,
    )
    lines = [
        "Cluster saturation benchmark "
        f"({result.clients} closed-loop clients, "
        f"{result.documents} distinct documents, "
        f"latency scale {LATENCY_SCALE}):",
        "",
        table,
        "",
        f"scale-out: {result.speedup:.2f}x throughput at "
        f"{result.best.workers} workers "
        f"(target >= {MIN_SPEEDUP:.1f}x at 4)",
        f"p99 no worse: {result.p99_no_worse}   "
        f"verdicts match single-process: {result.verdicts_match}",
    ]
    return "\n".join(lines)


def write_bench_json(result: ClusterBenchResult,
                     path: str = OUTPUT_FILE) -> None:
    payload = {
        "benchmark": "cluster",
        "cpu_count": os.cpu_count(),
        "note": (
            "closed-loop saturation throughput on a latency-bound "
            "workload (simulated model latency, scaled sleeps); the "
            "speedup is process-level scale-out of concurrent model "
            "calls, not CPU parallelism"
        ),
        "latency_scale": LATENCY_SCALE,
        "clients": result.clients,
        "documents": result.documents,
        "min_speedup_target": MIN_SPEEDUP,
        "single": result.single.to_dict(),
        "cluster": [arm.to_dict() for arm in result.cluster],
        "speedup": round(result.speedup, 3),
        "p99_no_worse": result.p99_no_worse,
        "verdicts_match": result.verdicts_match,
        "within_target": (
            result.speedup >= MIN_SPEEDUP
            and result.p99_no_worse
            and result.verdicts_match
        ),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(fast: bool = False) -> str:
    result = run_cluster_bench(fast=fast)
    report = format_cluster_bench(result)
    print(report)
    write_bench_json(result)
    print(f"wrote {OUTPUT_FILE}")
    return report


if __name__ == "__main__":
    main()
