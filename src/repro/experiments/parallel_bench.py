"""Parallel executor benchmark — sequential vs threaded wall-clock.

Not a paper figure: this exercises the concurrent executor
(:mod:`repro.core.executor`) on an AggChecker-like workload with
simulated per-token latency, demonstrating the three properties the
executor promises:

* **determinism** — with a fixed seed and no cache, the multi-worker run
  reproduces the sequential run's verdicts and ledger totals exactly;
* **wall-clock** — fanning documents (and post-harvest claims) over
  threads hides the scaled-down model latency;
* **caching** — a warm re-verification of the same documents is answered
  mostly from the temperature-0 response cache.

Run with::

    python -m repro.experiments parallel --fast
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import ScheduleEntry, VerifierConfig
from repro.datasets import DatasetBundle, build_aggchecker
from repro.llm.base import ChatResponse, DelegatingLLMClient, LLMClient

from .common import CedarSystem, build_cedar, format_table, reset_claims

#: Simulated latency is slept at this scale (1 s of model latency ->
#: 10 ms of bench wall-clock), so the benchmark finishes in seconds
#: while latency still dominates compute — as it does against hosted
#: APIs, which is the regime the parallel executor is built for.
LATENCY_SCALE = 0.01

#: Worker count of the parallel configurations.
DEFAULT_WORKERS = 4


class LatencySimulatingClient(DelegatingLLMClient):
    """Sleeps a scaled fraction of each response's simulated latency.

    The inner client computes realistic per-call latency from its model's
    token throughput (:meth:`~repro.llm.pricing.ModelSpec.latency`); this
    wrapper turns that bookkeeping into actual elapsed time. Stacked
    *under* the response cache, so cache hits skip the sleep exactly as
    they skip the network.
    """

    def __init__(self, inner: LLMClient, scale: float = LATENCY_SCALE) -> None:
        super().__init__(inner)
        self.scale = scale

    def complete(self, prompt: str, temperature: float = 0.0) -> ChatResponse:
        response = self.inner.complete(prompt, temperature)
        time.sleep(response.latency_seconds * self.scale)
        return response


@dataclass
class BenchPoint:
    """Wall-clock and accounting for one executor configuration."""

    label: str
    wall_seconds: float
    calls: int
    cost: float
    cache_hit_rate: float | None = None


@dataclass
class ParallelBenchResult:
    points: list[BenchPoint]
    speedup: float               # sequential / parallel (both uncached)
    verdicts_match: bool         # parallel reproduced sequential verdicts
    totals_match: bool           # ... and the same ledger totals
    warm_hit_rate: float         # cache hit rate of the warm re-run
    warm_speedup: float          # sequential / warm cached parallel


def _build(
    bundle: DatasetBundle,
    seed: int,
    config: VerifierConfig,
    scale: float,
) -> tuple[CedarSystem, list[ScheduleEntry]]:
    """A CEDAR system whose model calls cost (scaled) wall-clock time."""
    system = build_cedar(bundle, seed=seed, config=config)
    for method in system.methods:
        method.client = LatencySimulatingClient(method.client, scale)
    entries = [
        ScheduleEntry(system.method_by_name("one_shot[gpt-3.5-turbo]"), 2),
        ScheduleEntry(system.method_by_name("agent[gpt-4o]"), 1),
    ]
    return system, entries


def _timed_round(
    system: CedarSystem,
    entries: list[ScheduleEntry],
    bundle: DatasetBundle,
) -> tuple[float, dict[str, tuple[bool | None, str | None]]]:
    reset_claims(bundle.documents)
    start = time.perf_counter()
    system.verifier.verify_documents(bundle.documents, entries)
    elapsed = time.perf_counter() - start
    verdicts = {c.claim_id: (c.correct, c.query) for c in bundle.claims}
    return elapsed, verdicts


def run_parallel_bench(
    fast: bool = False,
    seed: int = 0,
    workers: int = DEFAULT_WORKERS,
    scale: float = LATENCY_SCALE,
) -> ParallelBenchResult:
    """Benchmark the executor configurations on one AggChecker workload."""
    if fast:
        bundle = build_aggchecker(document_count=8, total_claims=48)
    else:
        bundle = build_aggchecker(document_count=16, total_claims=96)

    # Sequential baseline, cache disabled.
    seq_system, entries = _build(bundle, seed, VerifierConfig(), scale)
    seq_time, seq_verdicts = _timed_round(seq_system, entries, bundle)
    seq_totals = seq_system.ledger.totals()

    # Parallel, cache disabled: must reproduce the sequential run.
    par_system, entries = _build(
        bundle, seed, VerifierConfig(workers=workers), scale
    )
    par_time, par_verdicts = _timed_round(par_system, entries, bundle)
    par_totals = par_system.ledger.totals()

    verdicts_match = par_verdicts == seq_verdicts
    totals_match = (
        par_totals.calls == seq_totals.calls
        and par_totals.cost == seq_totals.cost
    )

    # Parallel with the response cache: one cold round to fill it, then a
    # warm re-verification of the same documents (the verifier keeps its
    # cache across runs).
    cached_system, entries = _build(
        bundle, seed, VerifierConfig(workers=workers, cache_size=4096), scale
    )
    cold_time, _ = _timed_round(cached_system, entries, bundle)
    cold_stats = cached_system.verifier.cache.stats
    cold_cost = cached_system.ledger.total_cost
    warm_time, _ = _timed_round(cached_system, entries, bundle)
    warm_stats = cached_system.verifier.cache.stats
    warm_lookups = warm_stats.lookups - cold_stats.lookups
    warm_hits = warm_stats.hits - cold_stats.hits
    warm_hit_rate = warm_hits / warm_lookups if warm_lookups else 0.0

    # Only misses and bypasses reach the model (and the ledger); hits
    # cost nothing. The cold round pays for nearly everything.
    cold_calls = cold_stats.misses + cold_stats.bypasses
    warm_calls = (warm_stats.misses + warm_stats.bypasses) - cold_calls
    points = [
        BenchPoint("sequential", seq_time, seq_totals.calls, seq_totals.cost),
        BenchPoint(f"parallel x{workers}", par_time, par_totals.calls,
                   par_totals.cost),
        BenchPoint(f"parallel x{workers} + cache (cold)", cold_time,
                   cold_calls, cold_cost,
                   cache_hit_rate=cold_stats.hit_rate),
        BenchPoint(f"parallel x{workers} + cache (warm)", warm_time,
                   warm_calls,
                   cached_system.ledger.total_cost - cold_cost,
                   cache_hit_rate=warm_hit_rate),
    ]

    return ParallelBenchResult(
        points=points,
        speedup=seq_time / par_time if par_time else float("inf"),
        verdicts_match=verdicts_match,
        totals_match=totals_match,
        warm_hit_rate=warm_hit_rate,
        warm_speedup=seq_time / warm_time if warm_time else float("inf"),
    )


def format_parallel_bench(result: ParallelBenchResult) -> str:
    lines = [
        "Parallel executor benchmark (simulated per-token latency)",
        "",
    ]
    rows = [
        [
            point.label,
            f"{point.wall_seconds:.2f}s",
            str(point.calls),
            f"${point.cost:.4f}" if point.cost else "-",
            (f"{100.0 * point.cache_hit_rate:.0f}%"
             if point.cache_hit_rate is not None else "-"),
        ]
        for point in result.points
    ]
    lines.append(format_table(
        ["configuration", "wall", "model calls", "cost", "cache hits"],
        rows,
    ))
    lines.append("")
    lines.append(
        f"speedup (uncached): {result.speedup:.2f}x; "
        f"warm cached re-run: {result.warm_speedup:.2f}x "
        f"at {100.0 * result.warm_hit_rate:.0f}% hit rate"
    )
    lines.append(
        "determinism: parallel verdicts "
        + ("MATCH" if result.verdicts_match else "DIFFER")
        + " sequential; ledger totals "
        + ("MATCH" if result.totals_match else "DIFFER")
    )
    return "\n".join(lines)


def main(fast: bool = False) -> str:
    report = format_parallel_bench(run_parallel_bench(fast=fast))
    print(report)
    return report


if __name__ == "__main__":
    main()
