"""Tracing-overhead benchmark: the observability tax must stay tiny.

The tracing layer (:mod:`repro.obs`) promises that instrumentation is
cheap enough to leave on in production: every hot path branches on
``tracer.enabled`` when tracing is off, and pays one pre-timed
``record()`` (no stack operations) per SQL execution when it is on.
This benchmark puts a number on that promise using the SQL engine's
agent-trace workload — the service's steady-state regime, where every
execution crosses the instrumented :meth:`Engine.execute` path.

Two arms over identical query lists against identical engines:

* **untraced** — ``current_tracer()`` resolves to the null tracer, so
  the engine takes the single ``tracer.enabled`` branch and nothing
  else.
* **traced** — an active :class:`~repro.obs.tracer.Tracer` collects one
  ``sql_execute`` span per query (the same spans the service files
  under each job).

Each arm runs several interleaved rounds and keeps the minimum (the
standard noise-robust estimator for micro-benchmarks); the acceptance
bar is traced ≤ 1.05× untraced, or an absolute per-query allowance on
machines fast enough that the relative bar degenerates (see
:data:`MAX_OVERHEAD_NS_PER_QUERY`). Run with::

    python -m repro.experiments obs --fast

A second leg measures the *distributed* tracing tax end to end: two
concurrently-live 2-worker clusters (tiny profile) — one with tracing
on (router job roots, trace contexts on the wire, worker span trees),
one with ``tracing=False`` — pushing identical job batches through
submit → event stream → terminal, rounds interleaved between the two.
Same min-of-rounds estimator; the cluster bar is purely relative (≤5%)
since its denominator is ms-scale jobs, not µs-scale queries. Writes
``BENCH_obs.json`` so both numbers are machine-checkable.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass

from repro.obs.tracer import Tracer
from repro.sqlengine import Database, Engine, reset_engine_stats

from .sqlengine_bench import _agent_trace_queries, _build_database

#: Timed rounds per arm; the minimum over rounds is reported. Rounds
#: cost tens of ms, so generous counts keep the estimator robust on
#: busy machines.
ROUNDS = 12
FAST_ROUNDS = 5

#: Simulated claims per round (three queries each — two probes + final).
CLAIMS = 120
FAST_CLAIMS = 48

#: Acceptance bar: traced wall-clock within 5% of untraced.
MAX_OVERHEAD_PCT = 5.0

#: Absolute fallback bar for the micro leg. The tracing cost per query
#: is a fixed few microseconds (one ``Tracer.leaf`` call); the relative
#: bar degenerates on hardware fast enough to push the untraced query
#: base under ~60 µs, where that fixed cost alone exceeds 5%. The tax
#: the service actually budgets for is the absolute one — microseconds
#: per record against millisecond-scale claim verification — so the
#: micro leg passes on either bound (the standard max(rel, abs)
#: threshold shape for perf gates with small denominators).
MAX_OVERHEAD_NS_PER_QUERY = 6000.0

#: Cluster leg: jobs per round and timed rounds per arm. Rounds are
#: cheap (tens of ms) next to worker spawn, so generous counts keep the
#: min-of-rounds estimator robust against scheduler noise.
CLUSTER_JOBS = 6
CLUSTER_ROUNDS = 16
FAST_CLUSTER_JOBS = 4
FAST_CLUSTER_ROUNDS = 6

OUTPUT_FILE = "BENCH_obs.json"


@dataclass
class ObsBenchResult:
    """Min-of-rounds timings for both arms plus the span accounting."""

    queries: int                 # executions per round per arm
    rounds: int
    untraced_seconds: float      # min over rounds
    traced_seconds: float        # min over rounds
    spans_per_round: int         # spans one traced round produces

    @property
    def overhead_pct(self) -> float:
        if self.untraced_seconds <= 0:
            return 0.0
        return 100.0 * (self.traced_seconds / self.untraced_seconds - 1.0)

    @property
    def overhead_ns_per_query(self) -> float:
        if self.queries <= 0:
            return 0.0
        return (self.traced_seconds - self.untraced_seconds) \
            / self.queries * 1e9

    @property
    def within_budget(self) -> bool:
        return (self.overhead_pct <= MAX_OVERHEAD_PCT
                or self.overhead_ns_per_query <= MAX_OVERHEAD_NS_PER_QUERY)


def _run_round(engine: Engine, queries: list[str]) -> float:
    start = time.perf_counter()
    for sql in queries:
        engine.execute(sql)
    return time.perf_counter() - start


def run_obs_bench(fast: bool = False, seed: int = 11) -> ObsBenchResult:
    """Interleave untraced and traced rounds over one warmed engine."""
    rounds = FAST_ROUNDS if fast else ROUNDS
    claims = FAST_CLAIMS if fast else CLAIMS
    database = _build_database(160 if fast else 400, seed)
    queries = _agent_trace_queries(random.Random(seed + 1), claims=claims)

    reset_engine_stats()
    # Result cache off: a warm result cache would reduce every execution
    # to a dict lookup and make the comparison measure cache luck, not
    # tracing cost. The plan cache warms up during the first (untimed)
    # round so both arms run the compiled steady state.
    engine = Engine(database, result_cache=None)  # lint: allow-engine
    _run_round(engine, queries)

    tracer = Tracer(trace_id="bench-obs")
    untraced: list[float] = []
    traced: list[float] = []
    for index in range(rounds):
        untraced.append(_run_round(engine, queries))
        with tracer.activated():
            # Nest the round's spans under a parent, the shape every
            # production caller produces (sql spans sit under a method
            # span, appending to its children — never to the tracer's
            # lock-guarded root list).
            with tracer.span(f"round:{index}", "stage"):
                traced.append(_run_round(engine, queries))
    spans_per_round = tracer.span_count() // rounds - 1  # minus wrapper
    return ObsBenchResult(
        queries=len(queries),
        rounds=rounds,
        untraced_seconds=min(untraced),
        traced_seconds=min(traced),
        spans_per_round=spans_per_round,
    )


@dataclass
class ClusterObsBenchResult:
    """Min-of-rounds cluster timings: tracing on vs ``tracing=False``."""

    jobs: int                    # jobs per round per arm
    rounds: int
    untraced_seconds: float      # min over rounds
    traced_seconds: float        # min over rounds
    stitched_spans: int          # spans in one stitched job trace

    @property
    def overhead_pct(self) -> float:
        if self.untraced_seconds <= 0:
            return 0.0
        return 100.0 * (self.traced_seconds / self.untraced_seconds - 1.0)

    @property
    def within_budget(self) -> bool:
        return self.overhead_pct <= MAX_OVERHEAD_PCT


async def _cluster_round(router, jobs: int, tag: str) -> float:
    """Submit ``jobs`` documents, drain every stream to terminal."""
    start = time.perf_counter()
    job_ids = []
    for index in range(jobs):
        status, body = await router.submit({
            "dataset": "aggchecker",
            "document": index % 2,        # traffic on both shards
            "client_id": f"obs-{tag}-{index}",
        })
        if status != 202:
            raise RuntimeError(f"cluster bench submit failed: {body}")
        job_ids.append(body["job_id"])
    for job_id in job_ids:
        stream = await router.job_events(job_id, wait=True, timeout=120)
        async for _ in stream:
            pass
    return time.perf_counter() - start


def _count_spans(span_dict: dict) -> int:
    return 1 + sum(_count_spans(c) for c in span_dict.get("children", ()))


async def _run_cluster_arms(jobs: int,
                            rounds: int) -> tuple[float, float, int]:
    """Both clusters live at once, rounds interleaved.

    Interleaving (untraced round, traced round, repeat) is the same
    drift-killer the micro leg uses: a background hiccup hits both
    arms instead of whichever happened to run second.
    """
    from repro.cluster import ClusterConfig, ClusterRouter

    def config(tracing: bool) -> ClusterConfig:
        return ClusterConfig(
            workers=2,
            profile="tiny",
            shard_threads=2,
            spawn_timeout=120.0,
            tracing=tracing,
        )

    untraced = await ClusterRouter(config(False)).start()
    try:
        traced = await ClusterRouter(config(True)).start()
        try:
            # One untimed round per arm warms every shard (caches,
            # plan compilation) so the timed rounds measure steady
            # state, not cold starts.
            await _cluster_round(untraced, jobs, "warm")
            await _cluster_round(traced, jobs, "warm")
            untraced_times: list[float] = []
            traced_times: list[float] = []
            for index in range(rounds):
                untraced_times.append(
                    await _cluster_round(untraced, jobs, f"u{index}")
                )
                traced_times.append(
                    await _cluster_round(traced, jobs, f"t{index}")
                )
            # Sanity outside the timed region: the traced arm must
            # actually produce a stitched trace, or the comparison is
            # traced-in-name-only.
            stitched_spans = 0
            job_id = next(iter(traced.records))
            status, trace = await traced.job_trace(job_id, fmt="tree")
            if status == 200:
                stitched_spans = _count_spans(trace["spans"][0])
            return min(untraced_times), min(traced_times), stitched_spans
        finally:
            await traced.stop()
    finally:
        await untraced.stop()


def run_cluster_obs_bench(fast: bool = False) -> ClusterObsBenchResult:
    """Interleaved traced/untraced 2-worker clusters, identical batches."""
    jobs = FAST_CLUSTER_JOBS if fast else CLUSTER_JOBS
    rounds = FAST_CLUSTER_ROUNDS if fast else CLUSTER_ROUNDS
    untraced_seconds, traced_seconds, stitched_spans = asyncio.run(
        _run_cluster_arms(jobs, rounds)
    )
    if stitched_spans == 0:
        raise RuntimeError(
            "traced cluster arm produced no stitched trace"
        )
    return ClusterObsBenchResult(
        jobs=jobs,
        rounds=rounds,
        untraced_seconds=untraced_seconds,
        traced_seconds=traced_seconds,
        stitched_spans=stitched_spans,
    )


def format_cluster_obs_bench(result: ClusterObsBenchResult) -> str:
    verdict = (
        f"within the {MAX_OVERHEAD_PCT:.0f}% budget"
        if result.within_budget
        else f"OVER the {MAX_OVERHEAD_PCT:.0f}% budget"
    )
    return "\n".join([
        "Distributed tracing overhead (2-worker cluster, "
        f"{result.jobs} jobs/round, min of {result.rounds} rounds)",
        "",
        f"  untraced:         {result.untraced_seconds * 1e3:8.3f} ms",
        f"  traced:           {result.traced_seconds * 1e3:8.3f} ms  "
        f"({result.stitched_spans} spans in a stitched job trace)",
        f"  overhead:         {result.overhead_pct:+8.2f} %  — {verdict}",
    ])


def format_obs_bench(result: ObsBenchResult) -> str:
    per_query = result.overhead_ns_per_query
    budget = (f"≤{MAX_OVERHEAD_PCT:.0f}% or "
              f"≤{MAX_OVERHEAD_NS_PER_QUERY / 1e3:.0f} µs/query")
    verdict = (
        f"within budget ({budget})"
        if result.within_budget
        else f"OVER budget ({budget})"
    )
    return "\n".join([
        "Tracing overhead (sqlengine agent-trace workload, min of "
        f"{result.rounds} rounds)",
        "",
        f"  queries/round:    {result.queries}",
        f"  untraced:         {result.untraced_seconds * 1e3:8.3f} ms",
        f"  traced:           {result.traced_seconds * 1e3:8.3f} ms  "
        f"({result.spans_per_round} spans)",
        f"  overhead:         {result.overhead_pct:+8.2f} %  "
        f"({per_query:+.0f} ns/query) — {verdict}",
    ])


def write_bench_json(result: ObsBenchResult,
                     cluster: ClusterObsBenchResult | None = None,
                     path: str = OUTPUT_FILE) -> None:
    payload = {
        "queries": result.queries,
        "rounds": result.rounds,
        "untraced_seconds": result.untraced_seconds,
        "traced_seconds": result.traced_seconds,
        "spans_per_round": result.spans_per_round,
        "overhead_pct": result.overhead_pct,
        "overhead_ns_per_query": result.overhead_ns_per_query,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "max_overhead_ns_per_query": MAX_OVERHEAD_NS_PER_QUERY,
        "within_budget": result.within_budget,
    }
    if cluster is not None:
        payload["cluster"] = {
            "jobs": cluster.jobs,
            "rounds": cluster.rounds,
            "untraced_seconds": cluster.untraced_seconds,
            "traced_seconds": cluster.traced_seconds,
            "stitched_spans": cluster.stitched_spans,
            "overhead_pct": cluster.overhead_pct,
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "within_budget": cluster.within_budget,
        }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(fast: bool = False) -> str:
    result = run_obs_bench(fast=fast)
    report = format_obs_bench(result)
    print(report)
    print()
    cluster = run_cluster_obs_bench(fast=fast)
    cluster_report = format_cluster_obs_bench(cluster)
    print(cluster_report)
    write_bench_json(result, cluster)
    print(f"wrote {OUTPUT_FILE}")
    return report + "\n\n" + cluster_report


if __name__ == "__main__":
    main()
