"""Tracing-overhead benchmark: the observability tax must stay tiny.

The tracing layer (:mod:`repro.obs`) promises that instrumentation is
cheap enough to leave on in production: every hot path branches on
``tracer.enabled`` when tracing is off, and pays one pre-timed
``record()`` (no stack operations) per SQL execution when it is on.
This benchmark puts a number on that promise using the SQL engine's
agent-trace workload — the service's steady-state regime, where every
execution crosses the instrumented :meth:`Engine.execute` path.

Two arms over identical query lists against identical engines:

* **untraced** — ``current_tracer()`` resolves to the null tracer, so
  the engine takes the single ``tracer.enabled`` branch and nothing
  else.
* **traced** — an active :class:`~repro.obs.tracer.Tracer` collects one
  ``sql_execute`` span per query (the same spans the service files
  under each job).

Each arm runs several interleaved rounds and keeps the minimum (the
standard noise-robust estimator for micro-benchmarks); the acceptance
bar is traced ≤ 1.05× untraced. Run with::

    python -m repro.experiments obs --fast

Writes ``BENCH_obs.json`` so the overhead number is machine-checkable.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass

from repro.obs.tracer import Tracer
from repro.sqlengine import Database, Engine, reset_engine_stats

from .sqlengine_bench import _agent_trace_queries, _build_database

#: Timed rounds per arm; the minimum over rounds is reported.
ROUNDS = 5
FAST_ROUNDS = 3

#: Simulated claims per round (three queries each — two probes + final).
CLAIMS = 120
FAST_CLAIMS = 48

#: Acceptance bar: traced wall-clock within 5% of untraced.
MAX_OVERHEAD_PCT = 5.0

OUTPUT_FILE = "BENCH_obs.json"


@dataclass
class ObsBenchResult:
    """Min-of-rounds timings for both arms plus the span accounting."""

    queries: int                 # executions per round per arm
    rounds: int
    untraced_seconds: float      # min over rounds
    traced_seconds: float        # min over rounds
    spans_per_round: int         # spans one traced round produces

    @property
    def overhead_pct(self) -> float:
        if self.untraced_seconds <= 0:
            return 0.0
        return 100.0 * (self.traced_seconds / self.untraced_seconds - 1.0)

    @property
    def within_budget(self) -> bool:
        return self.overhead_pct <= MAX_OVERHEAD_PCT


def _run_round(engine: Engine, queries: list[str]) -> float:
    start = time.perf_counter()
    for sql in queries:
        engine.execute(sql)
    return time.perf_counter() - start


def run_obs_bench(fast: bool = False, seed: int = 11) -> ObsBenchResult:
    """Interleave untraced and traced rounds over one warmed engine."""
    rounds = FAST_ROUNDS if fast else ROUNDS
    claims = FAST_CLAIMS if fast else CLAIMS
    database = _build_database(160 if fast else 400, seed)
    queries = _agent_trace_queries(random.Random(seed + 1), claims=claims)

    reset_engine_stats()
    # Result cache off: a warm result cache would reduce every execution
    # to a dict lookup and make the comparison measure cache luck, not
    # tracing cost. The plan cache warms up during the first (untimed)
    # round so both arms run the compiled steady state.
    engine = Engine(database, result_cache=None)  # lint: allow-engine
    _run_round(engine, queries)

    tracer = Tracer(trace_id="bench-obs")
    untraced: list[float] = []
    traced: list[float] = []
    for _ in range(rounds):
        untraced.append(_run_round(engine, queries))
        with tracer.activated():
            traced.append(_run_round(engine, queries))
    spans_per_round = tracer.span_count() // rounds
    return ObsBenchResult(
        queries=len(queries),
        rounds=rounds,
        untraced_seconds=min(untraced),
        traced_seconds=min(traced),
        spans_per_round=spans_per_round,
    )


def format_obs_bench(result: ObsBenchResult) -> str:
    per_query = (
        (result.traced_seconds - result.untraced_seconds)
        / result.queries * 1e9
    )
    verdict = (
        f"within the {MAX_OVERHEAD_PCT:.0f}% budget"
        if result.within_budget
        else f"OVER the {MAX_OVERHEAD_PCT:.0f}% budget"
    )
    return "\n".join([
        "Tracing overhead (sqlengine agent-trace workload, min of "
        f"{result.rounds} rounds)",
        "",
        f"  queries/round:    {result.queries}",
        f"  untraced:         {result.untraced_seconds * 1e3:8.3f} ms",
        f"  traced:           {result.traced_seconds * 1e3:8.3f} ms  "
        f"({result.spans_per_round} spans)",
        f"  overhead:         {result.overhead_pct:+8.2f} %  "
        f"({per_query:+.0f} ns/query) — {verdict}",
    ])


def write_bench_json(result: ObsBenchResult,
                     path: str = OUTPUT_FILE) -> None:
    payload = {
        "queries": result.queries,
        "rounds": result.rounds,
        "untraced_seconds": result.untraced_seconds,
        "traced_seconds": result.traced_seconds,
        "spans_per_round": result.spans_per_round,
        "overhead_pct": result.overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "within_budget": result.within_budget,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(fast: bool = False) -> str:
    result = run_obs_bench(fast=fast)
    report = format_obs_bench(result)
    print(report)
    write_bench_json(result)
    print(f"wrote {OUTPUT_FILE}")
    return report


if __name__ == "__main__":
    main()
