"""Experiment E7 — paper Figure 7 (Section 7.3.3).

Robustness of profiling under distribution shift: optimal schedules are
computed from the profiles of individual AggChecker documents (the paper
obtains eight distinct schedules this way), and each schedule is applied
to the claim subsets of every source domain (538, StackOverflow, NYTimes,
Wikipedia). Each application is compared with the domain's own optimal
schedule: the paper reports cost overheads below 2x and F1 losses below
0.1 in ~80 % of cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import describe_schedule, optimal_schedule
from repro.datasets import build_aggchecker

from .common import (
    DEFAULT_ACCURACY_THRESHOLD,
    build_cedar,
    format_table,
    profile_system,
    run_cedar,
)

#: How many per-document schedules to derive (the paper derives eight).
SCHEDULE_COUNT = 8


@dataclass
class CrossDomainPoint:
    """One (schedule, domain) application vs the domain's own schedule."""

    schedule_source: str
    domain: str
    cost_overhead: float  # cost(schedule) / cost(domain-optimal)
    f1_loss: float        # f1(domain-optimal) - f1(schedule), fractional


@dataclass
class Figure7Result:
    points: list[CrossDomainPoint]
    schedules: dict[str, str]  # source doc -> schedule description

    def within_paper_bounds(self) -> float:
        """Share of points with overhead < 2x and F1 loss < 0.1."""
        if not self.points:
            return 0.0
        good = sum(
            1
            for p in self.points
            if p.cost_overhead < 2.0 and p.f1_loss < 0.1
        )
        return good / len(self.points)


def run_figure7(fast: bool = False, seed: int = 0) -> Figure7Result:
    """Derive per-document schedules and cross-apply them over domains."""
    if fast:
        bundle = build_aggchecker(document_count=16, total_claims=100)
    else:
        bundle = build_aggchecker()
    by_domain = bundle.documents_by_domain()
    domains = sorted(by_domain)

    # Pick two documents per domain: the smallest and the largest. Tiny
    # documents yield extreme profiling estimates (a method measures 0%
    # or 100% on two claims), which is what makes per-document schedules
    # as distinct as the paper's eight.
    profile_docs = []
    for domain in domains:
        docs = sorted(by_domain[domain], key=lambda d: len(d.claims))
        profile_docs.append(docs[0])
        if len(docs) > 1 and len(profile_docs) < SCHEDULE_COUNT:
            profile_docs.append(docs[-1])
    profile_docs = profile_docs[:SCHEDULE_COUNT]

    schedules = {}
    for document in profile_docs:
        system = build_cedar(bundle, seed=seed)
        profiles = profile_system(system, [document])
        planned = optimal_schedule(profiles, DEFAULT_ACCURACY_THRESHOLD)
        schedules[document.doc_id] = planned

    # Each domain's own reference run: profile on that domain's documents.
    reference = {}
    for domain in domains:
        docs = by_domain[domain]
        system = build_cedar(bundle, seed=seed)
        profiles = profile_system(system, docs[: min(3, len(docs))])
        planned = optimal_schedule(profiles, DEFAULT_ACCURACY_THRESHOLD)
        reference[domain] = run_cedar(
            bundle, seed=seed, planned=planned, profiles=profiles,
            documents=docs,
        )

    points = []
    for source, planned in schedules.items():
        for domain in domains:
            docs = by_domain[domain]
            run = run_cedar(
                bundle, seed=seed, planned=planned,
                profiles=reference[domain].profiles, documents=docs,
            )
            own = reference[domain]
            own_cost = own.economics.cost or 1e-9
            points.append(
                CrossDomainPoint(
                    schedule_source=source,
                    domain=domain,
                    cost_overhead=run.economics.cost / own_cost,
                    f1_loss=own.counts.f1 - run.counts.f1,
                )
            )
    return Figure7Result(
        points=points,
        schedules={
            source: describe_schedule(planned)
            for source, planned in schedules.items()
        },
    )


def format_figure7(result: Figure7Result) -> str:
    lines = ["Figure 7 — cost overhead vs F1 loss across profiling domains",
             "", "Per-document schedules:"]
    for source, description in sorted(result.schedules.items()):
        lines.append(f"  {source}: {description}")
    lines.append("")
    rows = [
        [p.schedule_source, p.domain, f"{p.cost_overhead:.2f}x",
         f"{p.f1_loss:+.3f}"]
        for p in result.points
    ]
    lines.append(
        format_table(
            ["schedule from", "applied to", "cost overhead", "F1 loss"], rows
        )
    )
    lines.append("")
    lines.append(
        f"share of cases with overhead < 2x and F1 loss < 0.1: "
        f"{100 * result.within_paper_bounds():.0f}% (paper: ~80%)"
    )
    return "\n".join(lines)


def main(fast: bool = False) -> str:
    report = format_figure7(run_figure7(fast=fast))
    print(report)
    return report


if __name__ == "__main__":
    main()
