"""Experiments E4 + E8 — paper Figure 6 and Section 7.3.1.

Unit conversions: CEDAR is run on the aligned and converted variants of
the units benchmark (20 claims, 8 documents). The paper reports an F1 of
94.7% when claim units match the data and 88.9% when conversions are
required, with a near-zero per-document ΔF1 except for one outlier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import build_units_benchmark
from repro.metrics import percentage, score_claims

from .common import format_table, run_cedar


@dataclass
class Figure6Result:
    aligned_f1: float
    converted_f1: float
    per_document_delta: dict[str, float]  # pair id -> F1 drop (aligned-conv)
    aligned_cost: float
    converted_cost: float


def run_figure6(fast: bool = False, seed: int = 0) -> Figure6Result:
    """Run CEDAR on both unit-benchmark variants and diff per document."""
    bundles = build_units_benchmark()
    runs = {}
    for variant in ("aligned", "converted"):
        runs[variant] = run_cedar(bundles[variant], seed=seed)
    per_document: dict[str, float] = {}
    aligned_docs = {
        d.claims[0].metadata["pair_doc"]: d
        for d in bundles["aligned"].documents
    }
    converted_docs = {
        d.claims[0].metadata["pair_doc"]: d
        for d in bundles["converted"].documents
    }
    for pair_id, aligned_doc in aligned_docs.items():
        aligned_f1 = score_claims(aligned_doc.claims).f1
        converted_f1 = score_claims(converted_docs[pair_id].claims).f1
        per_document[pair_id] = percentage(aligned_f1 - converted_f1)
    return Figure6Result(
        aligned_f1=percentage(runs["aligned"].counts.f1),
        converted_f1=percentage(runs["converted"].counts.f1),
        per_document_delta=per_document,
        aligned_cost=runs["aligned"].economics.cost,
        converted_cost=runs["converted"].economics.cost,
    )


def format_figure6(result: Figure6Result) -> str:
    lines = [
        "Figure 6 / Section 7.3.1 — effect of unit conversions",
        "",
        f"F1, claim units aligned with data:   {result.aligned_f1:.1f} "
        "(paper: 94.7)",
        f"F1, unit conversions required:       {result.converted_f1:.1f} "
        "(paper: 88.9)",
        f"cost aligned/converted: ${result.aligned_cost:.3f} / "
        f"${result.converted_cost:.3f}",
        "",
        "Per-document change in F1 when conversions are required",
        "(paper: minimal impact for most documents, one outlier):",
    ]
    rows = [
        [pair_id, f"{delta:+.1f}"]
        for pair_id, delta in sorted(result.per_document_delta.items())
    ]
    lines.append(format_table(["document", "delta F1 (pp)"], rows))
    return "\n".join(lines)


def main(fast: bool = False) -> str:
    report = format_figure6(run_figure6(fast=fast))
    print(report)
    return report


if __name__ == "__main__":
    main()
