"""Ablation studies for CEDAR's design choices (DESIGN.md, A1-A4).

These go beyond the paper's own tables: each ablation switches off one
design decision the paper motivates qualitatively and measures the damage.

* **A1 masking** — skip Algorithm 4: prompts carry the raw claim value;
  the model takes the Figure 2 shortcut and recall collapses.
* **A2 few-shot samples** — disable Algorithm 1's sample harvesting.
* **A3 reconstruction** — skip Algorithm 9 and trust the agent's last
  query, which is often a trivial constant comparison.
* **A4 scheduler** — replace the DP schedule with fixed orders
  (cheapest-only, expensive-first).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    AgentMethod,
    MultiStageVerifier,
    ScheduleEntry,
    VerifierConfig,
    assess_query,
    one_shot_prompt,
    optimal_schedule,
    validate_claim,
)
from repro.core.masking import mask_claim
from repro.datasets import DatasetBundle, build_aggchecker
from repro.llm import CostLedger, SimulatedLLM, extract_sql_block
from repro.metrics import ConfusionCounts, score_claims
from repro.sqlengine import prompt_schema_text

from .common import build_cedar, profile_system, reset_claims, run_cedar


@dataclass
class AblationOutcome:
    """Quality/cost of one configuration of an ablation."""

    label: str
    counts: ConfusionCounts
    cost: float
    note: str = ""

    @property
    def f1(self) -> float:
        return 100.0 * self.counts.f1

    @property
    def recall(self) -> float:
        return 100.0 * self.counts.recall


def _default_bundle(fast: bool) -> DatasetBundle:
    if fast:
        return build_aggchecker(document_count=10, total_claims=60)
    return build_aggchecker(document_count=24, total_claims=160)


# -- A1: masking ---------------------------------------------------------------


def ablate_masking(fast: bool = True, seed: int = 0) -> list[AblationOutcome]:
    """One-shot verification with and without claim-value masking."""
    bundle = _default_bundle(fast)
    outcomes = []
    for masked, label in ((True, "masked (Algorithm 4)"),
                          (False, "unmasked (Figure 2 cheat)")):
        ledger = CostLedger()
        client = SimulatedLLM("gpt-4o", bundle.world, ledger, seed=seed)
        docmap = {d.doc_id: d for d in bundle.documents}
        reset_claims(bundle.documents)
        for claim in bundle.claims:
            database = docmap[claim.claim_id.rsplit("/", 1)[0]].data
            if masked:
                text = mask_claim(claim)
                sentence, context = text.masked_sentence, text.masked_context
            else:
                sentence, context = claim.sentence, claim.context
            prompt = one_shot_prompt(
                sentence, "numeric" if claim.is_numeric else "",
                prompt_schema_text(database), None, context,
            )
            sql = extract_sql_block(client.complete(prompt, 0.0).text)
            assessment = assess_query(sql, claim, database)
            if assessment.plausible and sql:
                claim.correct = validate_claim(sql, claim, database)
                claim.query = sql
            else:
                claim.correct = not assessment.executable
        outcomes.append(
            AblationOutcome(label, score_claims(bundle.claims),
                            ledger.total_cost)
        )
    return outcomes


# -- A2: few-shot samples --------------------------------------------------------


def ablate_samples(fast: bool = True, seed: int = 0) -> list[AblationOutcome]:
    """Multi-stage verification with and without sample harvesting."""
    bundle = _default_bundle(fast)
    outcomes = []
    for use_samples, label in ((True, "with samples"),
                               (False, "without samples")):
        system = build_cedar(bundle, seed=seed)
        system.verifier = MultiStageVerifier(config=VerifierConfig(
            ledger=system.ledger, use_samples=use_samples
        ))
        profiles = profile_system(system, bundle.documents[:3])
        planned = optimal_schedule(profiles, 0.99)
        entries = system.entries_for(planned)
        reset_claims(bundle.documents)
        checkpoint = system.ledger.checkpoint()
        system.verifier.verify_documents(bundle.documents, entries)
        outcomes.append(
            AblationOutcome(
                label,
                score_claims(bundle.claims),
                system.ledger.totals_since(checkpoint).cost,
            )
        )
    return outcomes


# -- A3: query reconstruction ------------------------------------------------------


def ablate_reconstruction(
    fast: bool = True, seed: int = 0
) -> list[AblationOutcome]:
    """Agent verification with Algorithm 9 on and off."""
    bundle = _default_bundle(fast)
    outcomes = []
    for reconstruct_queries, label in (
        (True, "with reconstruction (Algorithm 9)"),
        (False, "last agent query verbatim"),
    ):
        from repro.agents import install_agent_policy

        ledger = CostLedger()
        client = install_agent_policy(
            SimulatedLLM("gpt-4-turbo", bundle.world, ledger, seed=seed)
        )
        method = AgentMethod(client,
                             reconstruct_queries=reconstruct_queries)
        verifier = MultiStageVerifier(config=VerifierConfig(ledger=ledger))
        reset_claims(bundle.documents)
        verifier.verify_documents(bundle.documents,
                                  [ScheduleEntry(method, 1)])
        # Reconstruction rarely changes the *verdict* (the trivial last
        # query returns the same value), but it changes whether the query
        # CEDAR reports to the user represents the claim's semantics: a
        # self-contained query embeds the derivation as a sub-query
        # instead of a constant copied from an earlier step.
        stepwise = [
            c for c in bundle.claims
            if c.query and bundle.world.by_id(c.claim_id).decomposition
        ]
        self_contained = sum(1 for c in stepwise if "(SELECT" in c.query)
        note = (
            f"{self_contained}/{len(stepwise)} stepwise claims yield a "
            "self-contained query"
        )
        outcomes.append(
            AblationOutcome(label, score_claims(bundle.claims),
                            ledger.total_cost, note=note)
        )
    return outcomes


# -- A4: scheduler -----------------------------------------------------------------


def ablate_scheduler(
    fast: bool = True, seed: int = 0
) -> list[AblationOutcome]:
    """DP-optimised schedule vs fixed orders."""
    bundle = _default_bundle(fast)
    outcomes = []

    dp_run = run_cedar(bundle, seed=seed)
    outcomes.append(
        AblationOutcome("DP schedule (Algorithm 10)", dp_run.counts,
                        dp_run.economics.cost)
    )

    fixed_orders = {
        "cheapest method only x3": [(0, 3)],
        "expensive-first": [(3, 1), (2, 1), (1, 1), (0, 1)],
        "one try of everything": [(0, 1), (1, 1), (2, 1), (3, 1)],
    }
    for label, plan in fixed_orders.items():
        system = build_cedar(bundle, seed=seed)
        entries = [
            ScheduleEntry(system.methods[index], tries)
            for index, tries in plan
        ]
        reset_claims(bundle.documents)
        checkpoint = system.ledger.checkpoint()
        system.verifier.verify_documents(bundle.documents, entries)
        outcomes.append(
            AblationOutcome(
                label,
                score_claims(bundle.claims),
                system.ledger.totals_since(checkpoint).cost,
            )
        )
    return outcomes


def format_outcomes(title: str, outcomes: list[AblationOutcome]) -> str:
    from .common import format_table

    rows = [
        [o.label, f"{o.f1:.1f}", f"{o.recall:.1f}", f"${o.cost:.4f}", o.note]
        for o in outcomes
    ]
    return title + "\n" + format_table(
        ["configuration", "F1", "recall", "cost", "notes"], rows
    )
