"""Experiment harness: one module per table/figure of the paper.

See DESIGN.md for the experiment index (E1-E8) and EXPERIMENTS.md for the
measured-vs-paper results. Run via ``python -m repro.experiments <name>``.
"""

from .common import (
    CedarRunResult,
    CedarSystem,
    build_cedar,
    profile_system,
    reset_claims,
    run_cedar,
    run_single_stage,
)

__all__ = [
    "CedarRunResult",
    "CedarSystem",
    "build_cedar",
    "profile_system",
    "reset_claims",
    "run_cedar",
    "run_single_stage",
]
