"""Shared wiring for the experiment harness.

Builds a complete CEDAR system (simulated model clients for the paper's
four verification approaches, one shared cost ledger, the multi-stage
verifier) over a dataset bundle, profiles the methods, derives the optimal
schedule, runs verification, and scores the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.agents import install_agent_policy
from repro.core import (
    AgentMethod,
    MethodProfile,
    MultiStageVerifier,
    OneShotMethod,
    ParallelVerifier,
    PlannedSchedule,
    ScheduleEntry,
    VerificationMethod,
    VerificationRun,
    VerifierConfig,
    describe_schedule,
    optimal_schedule,
    profile_methods,
)
from repro.core.claims import Document
from repro.datasets import DatasetBundle
from repro.llm import CostLedger, SimulatedLLM
from repro.metrics import (
    ConfusionCounts,
    RunEconomics,
    economics_since,
    score_claims,
)

#: Accuracy threshold the paper uses unless stated otherwise.
DEFAULT_ACCURACY_THRESHOLD = 0.99

#: Number of leading documents used for profiling.
DEFAULT_PROFILE_DOCS = 3


@dataclass
class CedarSystem:
    """A wired CEDAR instance: methods sharing one ledger."""

    ledger: CostLedger
    methods: list[VerificationMethod]
    verifier: MultiStageVerifier

    def method_by_name(self, name: str) -> VerificationMethod:
        for method in self.methods:
            if method.name == name:
                return method
        raise KeyError(f"no method named {name!r}")

    def entries_for(self, planned: PlannedSchedule) -> list[ScheduleEntry]:
        """Materialise a planned schedule into executable entries."""
        return [
            ScheduleEntry(self.method_by_name(stage.method_name), stage.tries)
            for stage in planned
            if stage.tries > 0
        ]


@dataclass
class CedarRunResult:
    """Everything an experiment needs from one verification run."""

    name: str
    counts: ConfusionCounts
    economics: RunEconomics
    schedule_description: str = ""
    profiles: dict[str, MethodProfile] = field(default_factory=dict)
    run: VerificationRun | None = None


def build_cedar(
    bundle: DatasetBundle,
    seed: int = 0,
    config: VerifierConfig | None = None,
) -> CedarSystem:
    """Wire the paper's four verification approaches over a bundle.

    Section 7.1: one-shot with GPT-3.5 and GPT-4o, agents with GPT-4o and
    GPT-4 ("GPT-4.0", i.e. GPT-4-turbo). A ``config`` selects the
    executor: the default (``workers=1``) reproduces the paper's
    sequential runs; ``workers>1`` fans documents out over threads.
    """
    base = config if config is not None else VerifierConfig()
    ledger = base.ledger if base.ledger is not None else CostLedger()
    world = bundle.world
    oneshot_35 = OneShotMethod(
        SimulatedLLM("gpt-3.5-turbo", world, ledger, seed=seed)
    )
    oneshot_4o = OneShotMethod(
        SimulatedLLM("gpt-4o", world, ledger, seed=seed + 1)
    )
    agent_4o = AgentMethod(
        install_agent_policy(SimulatedLLM("gpt-4o", world, ledger,
                                          seed=seed + 2))
    )
    agent_4t = AgentMethod(
        install_agent_policy(SimulatedLLM("gpt-4-turbo", world, ledger,
                                          seed=seed + 3))
    )
    methods = [oneshot_35, oneshot_4o, agent_4o, agent_4t]
    verifier = ParallelVerifier(config=replace(base, ledger=ledger))
    return CedarSystem(ledger, methods, verifier)


def reset_claims(documents: list[Document]) -> None:
    """Clear verification state so a bundle can be re-verified."""
    for document in documents:
        for claim in document.claims:
            claim.correct = None
            claim.query = None


def profile_system(
    system: CedarSystem, documents: list[Document]
) -> dict[str, MethodProfile]:
    """Profile all methods on a labeled document sample."""
    with system.ledger.tagged("phase:profiling"):
        return profile_methods(system.methods, documents, system.ledger)


def run_cedar(
    bundle: DatasetBundle,
    accuracy_threshold: float = DEFAULT_ACCURACY_THRESHOLD,
    seed: int = 0,
    profile_docs: int = DEFAULT_PROFILE_DOCS,
    profiles: dict[str, MethodProfile] | None = None,
    planned: PlannedSchedule | None = None,
    documents: list[Document] | None = None,
    config: VerifierConfig | None = None,
) -> CedarRunResult:
    """Full CEDAR run: profile -> schedule -> verify -> score.

    ``profiles`` and ``planned`` can be injected (e.g. by the Figure 7
    cross-domain study); otherwise profiling runs on the bundle's leading
    documents and Algorithm 10 derives the schedule. ``config`` tunes the
    executor (worker count, response cache, retry policy).
    """
    system = build_cedar(bundle, seed=seed, config=config)
    target_documents = documents if documents is not None else bundle.documents
    if profiles is None:
        sample = bundle.documents[:profile_docs]
        profiles = profile_system(system, sample)
    if planned is None:
        planned = optimal_schedule(profiles, accuracy_threshold)
    entries = system.entries_for(planned)
    reset_claims(target_documents)
    checkpoint = system.ledger.checkpoint()
    run = system.verifier.verify_documents(target_documents, entries)
    claims = [c for d in target_documents for c in d.claims]
    counts = score_claims(claims)
    economics = economics_since(system.ledger, checkpoint, len(claims))
    return CedarRunResult(
        name=f"cedar@{accuracy_threshold:.2f}",
        counts=counts,
        economics=economics,
        schedule_description=describe_schedule(planned),
        profiles=profiles,
        run=run,
    )


def run_single_stage(
    bundle: DatasetBundle,
    method_index: int,
    tries: int = 1,
    seed: int = 0,
    documents: list[Document] | None = None,
) -> CedarRunResult:
    """Run one verification method alone (Figure 5's single-stage points)."""
    system = build_cedar(bundle, seed=seed)
    method = system.methods[method_index]
    entries = [ScheduleEntry(method, tries)]
    target_documents = documents if documents is not None else bundle.documents
    reset_claims(target_documents)
    checkpoint = system.ledger.checkpoint()
    run = system.verifier.verify_documents(target_documents, entries)
    claims = [c for d in target_documents for c in d.claims]
    counts = score_claims(claims)
    economics = economics_since(system.ledger, checkpoint, len(claims))
    return CedarRunResult(
        name=f"single:{method.name}x{tries}",
        counts=counts,
        economics=economics,
        schedule_description=f"{method.name}x{tries}",
        run=run,
    )


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned text table for experiment reports."""
    table = [headers] + rows
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
