"""Verification-service benchmark — throughput with and without batching.

Not a paper figure: this drives :class:`repro.service.VerificationService`
with a stream of concurrent jobs (clones of AggChecker documents, model
calls carrying simulated per-token latency) and compares two service
configurations:

* **unbatched** — ``max_batch_jobs=1``: every job becomes its own
  verifier call, one after another per dispatcher;
* **batched** — jobs arriving together coalesce into one verifier call,
  so the document pool fans out *across requests* and every job in the
  batch shares the same warm response cache entries.

Each mode runs a cold round (cache empty) and a warm round (same
documents again); throughput is completed jobs per second, latency
quantiles come from each job's ``JobDone`` event.

Run with::

    python -m repro.experiments service --fast
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import ScheduleEntry, VerifierConfig
from repro.datasets import DatasetBundle, build_aggchecker
from repro.llm import CostLedger
from repro.service import JobDone, JobHandle, ServiceConfig, VerificationService
from repro.service import clone_document

from .common import build_cedar, format_table
from .parallel_bench import LATENCY_SCALE, LatencySimulatingClient

#: Jobs per round and verifier threads per batch.
DEFAULT_JOBS = 16
DEFAULT_WORKERS = 4


@dataclass
class RoundPoint:
    """One (mode, round) measurement."""

    label: str
    jobs: int
    wall_seconds: float
    throughput: float            # completed jobs / second
    p50_seconds: float
    p95_seconds: float
    mean_batch_size: float
    cache_hit_rate: float | None


@dataclass
class ServiceBenchResult:
    points: list[RoundPoint]
    warm_speedup: float          # batched / unbatched warm throughput
    batching_observed: bool      # batched mode actually coalesced jobs
    all_completed: bool


def _make_service(
    bundle: DatasetBundle,
    seed: int,
    workers: int,
    batched: bool,
    scale: float,
) -> tuple[VerificationService, list[ScheduleEntry]]:
    """A service plus the fixed schedule its jobs will share.

    Both modes get the same dispatcher count and worker pool; the only
    difference is whether the dispatcher may coalesce queued jobs.
    """
    ledger = CostLedger()
    service = VerificationService(ServiceConfig(
        max_queue_depth=256,
        per_client_limit=64,
        max_batch_jobs=8 if batched else 1,
        batch_window=0.02 if batched else 0.0,
        workers=workers,
        cache_size=4096,
        ledger=ledger,
    ))
    # Methods record into the service ledger; every call carries a
    # (scaled) wall-clock price that cache hits skip.
    system = build_cedar(bundle, seed=seed,
                         config=VerifierConfig(ledger=ledger))
    for method in system.methods:
        method.client = LatencySimulatingClient(method.client, scale)
    # Two-try stages matter here: retries run at temperature > 0 and
    # always bypass the response cache (Assumption 1 — independent
    # draws), so even a warm round carries real model latency. Batching
    # packs those uncacheable calls from different requests onto one
    # worker pool; an unbatched service pays them one job at a time.
    schedule = [
        ScheduleEntry(system.method_by_name("one_shot[gpt-3.5-turbo]"), 2),
        ScheduleEntry(system.method_by_name("one_shot[gpt-4o]"), 2),
        ScheduleEntry(system.method_by_name("agent[gpt-4o]"), 1),
    ]
    return service, schedule


def _round(
    service: VerificationService,
    bundle: DatasetBundle,
    schedule: list[ScheduleEntry],
    jobs: int,
    tag: str,
) -> tuple[float, list[float], list[JobHandle]]:
    """Submit ``jobs`` cloned-document jobs at once and wait them out."""
    # A hot-document workload: many clients asking about the same couple
    # of articles. Jobs only coalesce when they share a database, so
    # concentration is what gives the micro-batcher something to do.
    start = time.perf_counter()
    handles = [
        service.submit(
            clone_document(bundle.documents[index % 2], f"{tag}{index:03d}"),
            schedule,
            client_id=f"client-{index % 4}",
        )
        for index in range(jobs)
    ]
    latencies: list[float] = []
    for handle in handles:
        handle.wait()
        done = [e for e in handle.events_snapshot()
                if isinstance(e, JobDone)]
        if done:
            latencies.append(done[0].latency_seconds)
    wall = time.perf_counter() - start
    return wall, sorted(latencies), handles


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def run_service_bench(
    fast: bool = False,
    seed: int = 0,
    jobs: int | None = None,
    workers: int = DEFAULT_WORKERS,
    scale: float = LATENCY_SCALE,
) -> ServiceBenchResult:
    """Benchmark both service modes on one AggChecker workload."""
    if jobs is None:
        jobs = DEFAULT_JOBS // 2 if fast else DEFAULT_JOBS
    bundle = build_aggchecker(document_count=4, total_claims=24)

    points: list[RoundPoint] = []
    warm_throughput: dict[str, float] = {}
    batched_mean = 0.0
    all_completed = True
    for mode, batched in (("unbatched", False), ("batched", True)):
        service, schedule = _make_service(bundle, seed, workers, batched,
                                          scale)
        service.start()
        try:
            for phase in ("cold", "warm"):
                wall, latencies, handles = _round(
                    service, bundle, schedule, jobs, tag=f"{mode[0]}{phase[0]}"
                )
                all_completed &= all(
                    h.state == "completed" for h in handles
                )
                stats = service.stats()
                points.append(RoundPoint(
                    label=f"{mode} ({phase})",
                    jobs=jobs,
                    wall_seconds=wall,
                    throughput=jobs / wall if wall else float("inf"),
                    p50_seconds=_quantile(latencies, 0.5),
                    p95_seconds=_quantile(latencies, 0.95),
                    mean_batch_size=stats.batches["mean_size"],
                    cache_hit_rate=(stats.cache or {}).get("hit_rate"),
                ))
                if phase == "warm":
                    warm_throughput[mode] = points[-1].throughput
                    if mode == "batched":
                        batched_mean = stats.batches["mean_size"]
        finally:
            service.shutdown(drain=True)

    unbatched = warm_throughput.get("unbatched", 0.0)
    batched_tp = warm_throughput.get("batched", 0.0)
    return ServiceBenchResult(
        points=points,
        warm_speedup=batched_tp / unbatched if unbatched else float("inf"),
        batching_observed=batched_mean > 1.0,
        all_completed=all_completed,
    )


def format_service_bench(result: ServiceBenchResult) -> str:
    lines = [
        "Verification service benchmark (cross-request micro-batching)",
        "",
    ]
    rows = [
        [
            point.label,
            str(point.jobs),
            f"{point.wall_seconds:.2f}s",
            f"{point.throughput:.1f}/s",
            f"{point.p50_seconds * 1000:.0f}ms",
            f"{point.p95_seconds * 1000:.0f}ms",
            f"{point.mean_batch_size:.1f}",
            (f"{100.0 * point.cache_hit_rate:.0f}%"
             if point.cache_hit_rate is not None else "-"),
        ]
        for point in result.points
    ]
    lines.append(format_table(
        ["configuration", "jobs", "wall", "throughput", "p50", "p95",
         "batch", "cache"],
        rows,
    ))
    lines.append("")
    lines.append(
        f"warm-cache throughput, batched vs unbatched: "
        f"{result.warm_speedup:.2f}x "
        f"(batching {'observed' if result.batching_observed else 'ABSENT'}; "
        f"all jobs {'completed' if result.all_completed else 'NOT completed'})"
    )
    return "\n".join(lines)


def main(fast: bool = False) -> str:
    report = format_service_bench(run_service_bench(fast=fast))
    print(report)
    return report


if __name__ == "__main__":
    main()
