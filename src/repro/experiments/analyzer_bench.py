"""Static analyzer benchmark — overhead and rejection counts.

Not a paper figure: this measures the cost side of the analyzer gate.
Every LLM-generated query is statically analyzed before it executes, so
the analysis must be cheap relative to execution (<5% of the mean
execution time, amortized — the analysis memo mirrors the plan cache:
the first sight of a query pays for parsing and the schema walk, repeats
are a dictionary hit). The benchmark also replays a seeded corpus of
invalid queries and counts rejections per diagnostic code, pinning the
analyzer's recall on the failure shapes agents actually produce.

Run with::

    python -m repro.experiments analyzer --fast

Writes ``BENCH_analyzer.json`` so the overhead ratio and rejection
counts are machine-checkable.
"""

from __future__ import annotations

import json
import random
import time
from collections import Counter
from dataclasses import asdict, dataclass

from repro.sqlengine import (
    Database,
    Engine,
    Table,
    analyze_sql,
    engine_stats,
    reset_engine_stats,
    shape_diagnostics,
)

from .common import format_table

#: How often the valid workload is replayed (the pipeline re-validates,
#: agents retry, the service re-verifies).
REPEAT_ROUNDS = 40
FAST_REPEAT_ROUNDS = 12

#: Fact-table size for the valid workload.
FACT_ROWS = 400
FAST_FACT_ROWS = 160

#: Acceptance ceiling: amortized analysis time per query must stay under
#: this fraction of the mean execution time.
OVERHEAD_CEILING = 0.05

OUTPUT_FILE = "BENCH_analyzer.json"

REGIONS = ("North", "South", "East", "West")

#: Seeded corpus of invalid queries with the diagnostic code each must
#: trigger. Mirrors the shapes simulated agents actually emit: misspelt
#: identifiers, type confusions, misplaced aggregates, claim-shape
#: mismatches, and outright parse failures.
INVALID_CORPUS: list[tuple[str, str]] = [
    # SQLA001 — unknown column.
    ("SELECT nope FROM sales", "SQLA001"),
    ("SELECT sales.nope FROM sales", "SQLA001"),
    ("SELECT region, wrong FROM sales", "SQLA001"),
    ("SELECT UPPER(missing) FROM sales", "SQLA001"),
    ("SELECT amount FROM sales ORDER BY missing", "SQLA001"),
    # SQLA002 — unknown table.
    ("SELECT 1 FROM nowhere", "SQLA002"),
    ("SELECT amount FROM sales JOIN nowhere ON 1 = 1", "SQLA002"),
    ("SELECT ghost.* FROM sales", "SQLA002"),
    ("SELECT amount FROM sales, missing_table", "SQLA002"),
    # SQLA003 — ambiguous reference over a provably non-empty product.
    ("SELECT product FROM sales, products", "SQLA003"),
    # SQLA010 — guaranteed type mismatches.
    ("SELECT amount + 'abc' FROM sales", "SQLA010"),
    ("SELECT -'abc' FROM sales", "SQLA010"),
    ("SELECT 1/0 FROM sales", "SQLA010"),
    ("SELECT 'x' - 'y' FROM sales", "SQLA010"),
    ("SELECT SUM('abc') FROM sales", "SQLA010"),
    # SQLA011 — unknown functions, bad arity, bad argument types.
    ("SELECT NOSUCHFN(region) FROM sales", "SQLA011"),
    ("SELECT ABS(amount, 2) FROM sales", "SQLA011"),
    ("SELECT ROUND(amount, 1, 2) FROM sales", "SQLA011"),
    ("SELECT SUBSTR(region) FROM sales", "SQLA011"),
    ("SELECT ABS('xyz') FROM sales", "SQLA011"),
    ("SELECT AVG(*) FROM sales", "SQLA011"),
    # SQLA012 — unknown cast target.
    ("SELECT CAST(amount AS BLOB) FROM sales", "SQLA012"),
    # SQLA013 — ORDER BY ordinal out of range.
    ("SELECT region FROM sales ORDER BY 5", "SQLA013"),
    ("SELECT region, amount FROM sales ORDER BY 0", "SQLA013"),
    # SQLA020 — aggregates where they cannot appear.
    ("SELECT region FROM sales WHERE SUM(amount) > 1", "SQLA020"),
    ("SELECT region FROM sales WHERE COUNT(*) > 0", "SQLA020"),
    ("SELECT COUNT(*) FROM sales GROUP BY SUM(amount)", "SQLA020"),
    ("SELECT SUM(COUNT(*)) FROM sales", "SQLA020"),
    # SQLA022 — '*' in an aggregate select list.
    ("SELECT *, COUNT(*) FROM sales", "SQLA022"),
    # SQLA030 — provably not a single cell (claim-shape verdict).
    ("SELECT region, amount FROM sales", "SQLA030"),
    ("SELECT * FROM sales", "SQLA030"),
    # SQLA031 — result type can never match a numeric claim.
    ("SELECT region IS NULL FROM sales", "SQLA031"),
    ("SELECT amount > 0 FROM sales", "SQLA031"),
    # SQLA090 — does not parse at all.
    ("SELEC region FROM sales", "SQLA090"),
    ("SELECT region FROM sales WHERE (amount > 1", "SQLA090"),
    ("DROP TABLE sales", "SQLA090"),
]

#: Valid single-cell workload for the overhead measurement: the steady
#: state of the pipeline (aggregates, joins, correlated filters).
VALID_WORKLOAD = [
    "SELECT COUNT(*) FROM sales",
    "SELECT SUM(amount) FROM sales WHERE region = 'North'",
    "SELECT AVG(amount) FROM sales WHERE region = 'South'",
    "SELECT MAX(amount) FROM sales",
    "SELECT MIN(amount) FROM sales WHERE units > 3",
    "SELECT COUNT(*) FROM sales JOIN products "
    "ON sales.product = products.product WHERE products.price > 50",
    "SELECT SUM(sales.amount) FROM sales JOIN products "
    "ON sales.product = products.product WHERE products.price < 40",
    "SELECT region FROM sales WHERE amount = "
    "(SELECT MAX(amount) FROM sales) LIMIT 1",
]


@dataclass
class AnalyzerBenchResult:
    """Overhead timings plus the rejection census."""

    corpus_size: int
    rejected: int                   # invalid queries rejected pre-execution
    rejections_by_code: dict[str, int]
    queries_executed: int           # valid workload, per arm
    execute_seconds: float
    analyze_seconds: float
    overhead_ratio: float           # analyze_seconds / execute_seconds
    engine: dict                    # engine_stats() snapshot after the run

    @property
    def all_rejected(self) -> bool:
        return self.rejected == self.corpus_size

    @property
    def within_budget(self) -> bool:
        return self.overhead_ratio < OVERHEAD_CEILING


def _build_database(rows: int, seed: int) -> Database:
    """A sales fact table plus a product dimension, deterministic."""
    rng = random.Random(seed)
    products = [f"product-{index:02d}" for index in range(24)]
    database = Database("analyzerbench")
    database.add(Table(
        "products",
        ["product", "price"],
        [(name, rng.randint(5, 95)) for name in products],
    ))
    database.add(Table(
        "sales",
        ["region", "product", "amount", "units"],
        [
            (rng.choice(REGIONS), rng.choice(products),
             rng.randint(10, 5000), rng.randint(1, 9))
            for _ in range(rows)
        ],
    ))
    return database


def run_analyzer_bench(
    fast: bool = False, seed: int = 7
) -> AnalyzerBenchResult:
    """Measure analysis overhead and replay the invalid corpus."""
    rows = FAST_FACT_ROWS if fast else FACT_ROWS
    rounds = FAST_REPEAT_ROUNDS if fast else REPEAT_ROUNDS
    database = _build_database(rows, seed)
    reset_engine_stats()
    # Result cache off for the execution arm: with it on, repeats in
    # both arms collapse to dictionary lookups of comparable cost and
    # the ratio measures nothing. This arm measures the engine actually
    # computing results (plan cache and compiled evaluators stay on).
    engine = Engine(database, result_cache=None)  # lint: allow-engine

    # Arm 1: execution (first round compiles, repeats hit the plan
    # cache but still evaluate over every row).
    started = time.perf_counter()
    for _ in range(rounds):
        for sql in VALID_WORKLOAD:
            engine.execute(sql)
    execute_seconds = time.perf_counter() - started

    # Arm 2: analysis of the identical stream (first sight parses and
    # walks the schema, repeats are memo hits).
    started = time.perf_counter()
    for _ in range(rounds):
        for sql in VALID_WORKLOAD:
            analyze_sql(sql, database)
    analyze_seconds = time.perf_counter() - started

    # Rejection census over the seeded invalid corpus. Claim-shape codes
    # (SQLA030/031) are not engine errors, so fold in the single-cell /
    # numeric-claim verdicts exactly as the plausibility gate does.
    by_code: Counter[str] = Counter()
    rejected = 0
    for sql, expected_code in INVALID_CORPUS:
        analysis = analyze_sql(sql, database)
        diagnostics = analysis.errors or shape_diagnostics(
            analysis, claim_numeric=True
        )
        codes = {diagnostic.code for diagnostic in diagnostics}
        if diagnostics:
            rejected += 1
            by_code[expected_code if expected_code in codes
                    else sorted(codes)[0]] += 1

    return AnalyzerBenchResult(
        corpus_size=len(INVALID_CORPUS),
        rejected=rejected,
        rejections_by_code=dict(sorted(by_code.items())),
        queries_executed=rounds * len(VALID_WORKLOAD),
        execute_seconds=execute_seconds,
        analyze_seconds=analyze_seconds,
        overhead_ratio=(analyze_seconds / execute_seconds
                        if execute_seconds else float("inf")),
        engine=engine_stats(),
    )


def format_analyzer_bench(result: AnalyzerBenchResult) -> str:
    lines = [
        "Static analyzer benchmark (overhead vs execution, rejection census)",
        "",
        format_table(
            ["metric", "value"],
            [
                ["valid queries executed", str(result.queries_executed)],
                ["execution time", f"{result.execute_seconds:.4f}s"],
                ["analysis time", f"{result.analyze_seconds:.4f}s"],
                ["overhead ratio",
                 f"{result.overhead_ratio:.2%} "
                 f"(budget {OVERHEAD_CEILING:.0%})"],
                ["invalid corpus",
                 f"{result.rejected}/{result.corpus_size} rejected"],
            ],
        ),
        "",
        format_table(
            ["code", "rejections"],
            [[code, str(count)]
             for code, count in result.rejections_by_code.items()],
        ),
    ]
    return "\n".join(lines)


def write_bench_json(
    result: AnalyzerBenchResult, path: str = OUTPUT_FILE
) -> None:
    payload = asdict(result)
    payload["all_rejected"] = result.all_rejected
    payload["within_budget"] = result.within_budget
    payload["overhead_ceiling"] = OVERHEAD_CEILING
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(fast: bool = False) -> str:
    result = run_analyzer_bench(fast=fast)
    report = format_analyzer_bench(result)
    print(report)
    write_bench_json(result)
    print(f"wrote {OUTPUT_FILE}")
    return report


if __name__ == "__main__":
    main()
