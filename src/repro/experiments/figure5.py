"""Experiment E3 — paper Figure 5.

Cost-quality and throughput-quality trade-offs on the AggChecker data set:
each verification method run single-stage (one and two tries) versus
CEDAR's multi-stage verification across accuracy thresholds. The paper's
claim: CEDAR spans the cost-F1 Pareto frontier, and beats the best
single-stage configuration (the GPT-4 agent) on cost at comparable F1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import build_aggchecker

from .common import format_table, run_cedar, run_single_stage

#: Accuracy thresholds swept for the multi-stage points.
THRESHOLDS = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99)


@dataclass
class TradeoffPoint:
    """One point of Figure 5: a configuration with its measurements."""

    label: str
    kind: str  # "single" | "multi"
    cost_per_claim: float
    f1: float
    throughput_claims_per_hour: float


@dataclass
class Figure5Result:
    points: list[TradeoffPoint]

    def pareto_front(self) -> list[TradeoffPoint]:
        """Cost-F1 Pareto-optimal points (lower cost, higher F1)."""
        front = []
        for point in self.points:
            dominated = any(
                other.cost_per_claim <= point.cost_per_claim
                and other.f1 >= point.f1
                and (
                    other.cost_per_claim < point.cost_per_claim
                    or other.f1 > point.f1
                )
                for other in self.points
            )
            if not dominated:
                front.append(point)
        return sorted(front, key=lambda p: p.cost_per_claim)


def run_figure5(fast: bool = False, seed: int = 0) -> Figure5Result:
    """Measure every Figure 5 configuration."""
    if fast:
        bundle = build_aggchecker(document_count=12, total_claims=70)
    else:
        bundle = build_aggchecker()
    points: list[TradeoffPoint] = []
    method_count = 4
    for index in range(method_count):
        for tries in (1, 2):
            run = run_single_stage(bundle, index, tries=tries, seed=seed)
            points.append(_point(run.name, "single", run))
    for threshold in THRESHOLDS:
        run = run_cedar(bundle, accuracy_threshold=threshold, seed=seed)
        points.append(
            _point(f"cedar@{threshold:.2f} [{run.schedule_description}]",
                   "multi", run)
        )
    return Figure5Result(points)


def _point(label: str, kind: str, run) -> TradeoffPoint:
    return TradeoffPoint(
        label=label,
        kind=kind,
        cost_per_claim=run.economics.cost_per_claim,
        f1=100.0 * run.counts.f1,
        throughput_claims_per_hour=run.economics.claims_per_hour,
    )


def format_figure5(result: Figure5Result) -> str:
    lines = ["Figure 5 — cost-quality and throughput-quality trade-offs",
             "(AggChecker data set; single-stage methods vs CEDAR multi-stage)",
             ""]
    rows = [
        [
            point.kind,
            point.label,
            f"{point.cost_per_claim * 1000:.3f}",
            f"{point.f1:.1f}",
            f"{point.throughput_claims_per_hour:.0f}",
        ]
        for point in sorted(result.points, key=lambda p: p.cost_per_claim)
    ]
    lines.append(
        format_table(
            ["kind", "configuration", "$/1k claims... ($/claim x1000)",
             "F1", "claims/h"],
            rows,
        )
    )
    lines.append("")
    front = result.pareto_front()
    lines.append("Cost-F1 Pareto frontier (paper: spanned by CEDAR):")
    for point in front:
        lines.append(
            f"  {point.kind:6} {point.label}  "
            f"(${point.cost_per_claim:.5f}/claim, F1 {point.f1:.1f})"
        )
    multi_on_front = sum(1 for p in front if p.kind == "multi")
    lines.append(
        f"{multi_on_front}/{len(front)} frontier points are multi-stage."
    )
    return "\n".join(lines)


def main(fast: bool = False) -> str:
    report = format_figure5(run_figure5(fast=fast))
    print(report)
    return report


if __name__ == "__main__":
    main()
