"""Experiment E2 — the cost figures of Section 7.2.

At the default 99% accuracy threshold the paper spends $18.12 verifying
the 392 AggChecker claims, $1.46 on TabFact, and $1.90 on WikiText. The
absolute scale here is smaller (synthetic prompts are shorter than real
newspaper articles), so the comparison focuses on the *per-claim cost
ordering* across datasets and the cost split across methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import build_aggchecker, build_tabfact, build_wikitext

from .common import format_table, run_cedar

#: Paper totals at the 99% threshold.
PAPER_COSTS = {"AggChecker": 18.12, "TabFact": 1.46, "WikiText": 1.90}
PAPER_CLAIMS = {"AggChecker": 392, "TabFact": 100, "WikiText": 50}


@dataclass
class CostRow:
    dataset: str
    claims: int
    cost: float
    llm_calls: int
    tokens: int

    @property
    def cost_per_claim(self) -> float:
        return self.cost / self.claims if self.claims else 0.0


@dataclass
class CostsResult:
    rows: list[CostRow] = field(default_factory=list)


def run_costs(fast: bool = False, seed: int = 0) -> CostsResult:
    builders = {
        "AggChecker": build_aggchecker,
        "TabFact": build_tabfact,
        "WikiText": build_wikitext,
    }
    if fast:
        builders = {
            "AggChecker": lambda: build_aggchecker(
                document_count=10, total_claims=60
            ),
            "TabFact": lambda: build_tabfact(table_count=10, total_claims=36),
            "WikiText": lambda: build_wikitext(
                document_count=6, total_claims=20
            ),
        }
    result = CostsResult()
    for name, builder in builders.items():
        bundle = builder()
        run = run_cedar(bundle, seed=seed)
        result.rows.append(
            CostRow(
                dataset=name,
                claims=run.economics.claims,
                cost=run.economics.cost,
                llm_calls=run.economics.llm_calls,
                tokens=run.economics.total_tokens,
            )
        )
    return result


def format_costs(result: CostsResult) -> str:
    lines = ["Section 7.2 — verification costs at the 99% threshold", ""]
    rows = []
    for row in result.rows:
        paper_total = PAPER_COSTS[row.dataset]
        paper_per_claim = paper_total / PAPER_CLAIMS[row.dataset]
        rows.append([
            row.dataset,
            str(row.claims),
            f"${row.cost:.3f}",
            f"${row.cost_per_claim * 100:.3f}",
            f"${paper_total:.2f}",
            f"${paper_per_claim * 100:.2f}",
            str(row.llm_calls),
            str(row.tokens),
        ])
    lines.append(
        format_table(
            ["dataset", "claims", "cost", "cents/claim", "paper cost",
             "paper cents/claim", "LLM calls", "tokens"],
            rows,
        )
    )
    per_claim = {r.dataset: r.cost_per_claim for r in result.rows}
    ordering = sorted(per_claim, key=per_claim.get, reverse=True)
    paper_ordering = sorted(
        PAPER_COSTS,
        key=lambda d: PAPER_COSTS[d] / PAPER_CLAIMS[d],
        reverse=True,
    )
    lines.append("")
    lines.append(
        f"per-claim cost ordering: {' > '.join(ordering)} "
        f"(paper: {' > '.join(paper_ordering)})"
    )
    return "\n".join(lines)


def main(fast: bool = False) -> str:
    report = format_costs(run_costs(fast=fast))
    print(report)
    return report


if __name__ == "__main__":
    main()
