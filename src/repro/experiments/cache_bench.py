"""Warm-L2 benchmark: a restarted worker must verify much faster.

The persistent cache tier (:mod:`repro.cache`) promises that the work a
process pays for — LLM responses and SQL result sets — survives a
restart. This benchmark prices that promise with two arms over the same
workload and the same sqlite file:

* **cold** — a fresh file. Every temperature-0 model call pays its
  (scaled) simulated latency and lands in L2 on the way out.
* **warm** — everything rebuilt from scratch (new bundle, new system,
  new ``CacheConfig``) except the sqlite file; the paper picture of a
  worker coming back up. Temperature-0 calls are answered from L2 and
  skip the simulated network entirely.

Model latency is made real by :class:`LatencySimulatingClient` (the
``parallel`` bench's wrapper), stacked *under* the response cache so
cache hits skip the sleep exactly as they skip the network. The
acceptance bar is warm ≥ 3× faster than cold — and, because the cache
contract is byte-identical replay, both arms must produce identical
verdicts. Run with::

    python -m repro.experiments cache --fast

Writes ``BENCH_cache.json`` so the speedup is machine-checkable.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass

from repro.cache import CacheConfig, CacheStats
from repro.core import ScheduleEntry, VerifierConfig
from repro.llm import CostLedger

from .common import build_cedar
from .parallel_bench import LATENCY_SCALE, LatencySimulatingClient

#: Acceptance bar: warm-L2 wall-clock at least this much faster.
MIN_SPEEDUP = 3.0

OUTPUT_FILE = "BENCH_cache.json"

#: Workload size (documents, claims) per arm.
SIZE = (8, 40)
FAST_SIZE = (4, 16)


@dataclass
class CacheBenchResult:
    """Both arms' wall-clock plus the L2 accounting that explains it."""

    claims: int
    cold_seconds: float
    warm_seconds: float
    cold_l2: CacheStats          # puts-heavy: the file being written
    warm_l2: CacheStats          # hits-heavy: the file paying out
    verdicts_match: bool         # the determinism contract, re-checked

    @property
    def speedup(self) -> float:
        if self.warm_seconds <= 0:
            return 0.0
        return self.cold_seconds / self.warm_seconds

    @property
    def within_target(self) -> bool:
        return self.speedup >= MIN_SPEEDUP and self.verdicts_match


def _run_arm(path: str, fast: bool, seed: int = 7):
    """One full verification over a fresh system; only ``path`` persists."""
    from repro.datasets import build_aggchecker

    documents, claims = FAST_SIZE if fast else SIZE
    bundle = build_aggchecker(document_count=documents, total_claims=claims)
    config = VerifierConfig(
        ledger=CostLedger(),
        cache_size=256,
        sql_cache_size=256,
        cache_config=CacheConfig(path=path),
    )
    system = build_cedar(bundle, seed=seed, config=config)
    # Simulated latency under the cache: hits skip the sleep, exactly
    # as they skip the network against a hosted API.
    for method in system.methods:
        method.client = LatencySimulatingClient(method.client,
                                                LATENCY_SCALE)
    entries = [
        ScheduleEntry(system.method_by_name("one_shot[gpt-3.5-turbo]"), 2),
        ScheduleEntry(system.method_by_name("agent[gpt-4o]"), 1),
    ]
    start = time.perf_counter()
    system.verifier.verify_documents(bundle.documents, entries)
    elapsed = time.perf_counter() - start
    verdicts = {c.claim_id: (c.correct, c.query) for c in bundle.claims}
    store = config.open_cache_store()
    l2 = store.backend.stats()
    store.close()
    return elapsed, verdicts, l2, len(bundle.claims)


def run_cache_bench(fast: bool = False, seed: int = 7) -> CacheBenchResult:
    with tempfile.TemporaryDirectory(prefix="cedar-bench-cache-") as tmp:
        path = os.path.join(tmp, "l2.sqlite")
        cold_seconds, cold_verdicts, cold_l2, claims = _run_arm(
            path, fast, seed
        )
        warm_seconds, warm_verdicts, warm_l2, _ = _run_arm(
            path, fast, seed
        )
    return CacheBenchResult(
        claims=claims,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        cold_l2=cold_l2,
        warm_l2=warm_l2,
        verdicts_match=warm_verdicts == cold_verdicts,
    )


def format_cache_bench(result: CacheBenchResult) -> str:
    verdict = (
        f"≥ {MIN_SPEEDUP:.0f}× target met"
        if result.within_target
        else f"UNDER the {MIN_SPEEDUP:.0f}× target"
    )
    identical = "yes" if result.verdicts_match else "NO — BUG"
    return "\n".join([
        f"Persistent-L2 warm start ({result.claims} claims, simulated "
        "model latency)",
        "",
        f"  cold (fresh file):   {result.cold_seconds * 1e3:8.1f} ms  "
        f"(L2 entries written: {result.cold_l2.size})",
        f"  warm (restart):      {result.warm_seconds * 1e3:8.1f} ms  "
        f"(L2 hits: {result.warm_l2.hits})",
        f"  speedup:             {result.speedup:8.2f} ×  — {verdict}",
        f"  verdicts identical:  {identical}",
    ])


def write_bench_json(result: CacheBenchResult,
                     path: str = OUTPUT_FILE) -> None:
    payload = {
        "claims": result.claims,
        "cold_seconds": result.cold_seconds,
        "warm_seconds": result.warm_seconds,
        "cold_l2": result.cold_l2.to_dict(),
        "warm_l2": result.warm_l2.to_dict(),
        "speedup": result.speedup,
        "min_speedup": MIN_SPEEDUP,
        "verdicts_match": result.verdicts_match,
        "within_target": result.within_target,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(fast: bool = False) -> str:
    result = run_cache_bench(fast=fast)
    report = format_cache_bench(result)
    print(report)
    write_bench_json(result)
    print(f"wrote {OUTPUT_FILE}")
    return report


if __name__ == "__main__":
    main()
