"""SQL engine benchmark — compile-and-cache engine vs the naive interpreter.

Not a paper figure: this measures the data side of verification. Every
claim costs at least one SQL execution, agents issue several exploratory
queries per claim, and the service replays near-identical workloads
across requests — so the engine's plan cache, compiled evaluators, hash
joins, and shared query-result cache translate directly into verification
latency (the ``sql_seconds`` line of the cost ledger).

Three workloads, each executed through the optimized engine and through
``Engine(naive=True)`` (the original parse-per-call, walk-per-row
interpreter), asserting byte-identical results:

* **repeated-query** — a small set of single-cell aggregates re-executed
  many times, the pipeline's steady state. Exercises the plan cache and
  the shared result cache.
* **equi-join** — distinct join queries over a fact/dimension pair with
  the result cache disabled, so the measured win is the hash-join plan,
  predicate pushdown, and compiled predicates themselves.
* **agent-trace-replay** — simulated agent tool traces (a few
  exploratory probes per claim, heavy overlap across claims) replayed
  through the per-database shared engine, the service's regime.
* **columnar-scan** — analytic scans, grouped aggregations, and a
  fact/dimension hash join over a million-row fact table (10⁵ in
  ``--fast`` mode). Here the *baseline* is the compiled row engine
  itself (``Engine(vectorized=False)`` — the naive interpreter would
  take minutes), so the measured win is the columnar/vectorized path
  plus the statistics-driven optimizer in isolation. Result caches are
  off in both arms and both tables are built with
  :meth:`Table.from_columns`, so no row tuples exist until an arm
  materializes output.

Run with::

    python -m repro.experiments sqlengine --fast

Writes ``BENCH_sqlengine.json`` next to the working directory so the
speedup numbers are machine-checkable.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass

from repro.sqlengine import (
    Database,
    Engine,
    QueryResultCache,
    Table,
    engine_for,
    engine_stats,
    reset_engine_stats,
)

from .common import format_table

#: How often each repeated-query statement is re-executed (the pipeline
#: re-validates, the service re-verifies, agents retry).
REPEAT_ROUNDS = 40
FAST_REPEAT_ROUNDS = 12

#: Fact-table size; nested-loop joins are quadratic in this.
FACT_ROWS = 400
FAST_FACT_ROWS = 160

#: Columnar-workload fact-table size; every query is linear in this.
COLUMNAR_ROWS = 1_000_000
FAST_COLUMNAR_ROWS = 100_000

REGIONS = ("North", "South", "East", "West")
CATEGORIES = ("storage", "compute", "network", "analytics")

OUTPUT_FILE = "BENCH_sqlengine.json"


@dataclass
class WorkloadResult:
    """Timings for one workload, both arms, plus the identity check."""

    workload: str
    queries: int                 # executions per arm
    naive_seconds: float         # baseline arm (see ``baseline``)
    optimized_seconds: float
    speedup: float
    identical: bool              # byte-identical results across arms
    baseline: str = "naive"      # "naive" | "row" (compiled, unvectorized)


@dataclass
class SqlEngineBenchResult:
    workloads: list[WorkloadResult]
    engine: dict                 # engine_stats() snapshot after the run

    @property
    def all_identical(self) -> bool:
        return all(w.identical for w in self.workloads)

    def speedup(self, workload: str) -> float:
        for entry in self.workloads:
            if entry.workload == workload:
                return entry.speedup
        raise KeyError(workload)


def _build_database(rows: int, seed: int) -> Database:
    """A sales fact table plus a product dimension, deterministic."""
    rng = random.Random(seed)
    products = [f"product-{index:02d}" for index in range(24)]
    database = Database("sqlbench")
    database.add(Table(
        "products",
        ["product", "category", "launch_year"],
        [
            (name, CATEGORIES[index % len(CATEGORIES)],
             2000 + rng.randrange(0, 20))
            for index, name in enumerate(products)
        ],
    ))
    database.add(Table(
        "sales",
        ["region", "product", "units", "price", "year"],
        [
            (
                rng.choice(REGIONS),
                rng.choice(products),
                rng.randrange(1, 500),
                round(rng.uniform(5.0, 400.0), 2),
                2015 + rng.randrange(0, 10),
            )
            for _ in range(rows)
        ],
    ))
    return database


def _repeated_queries(rounds: int) -> list[str]:
    base = [
        "SELECT SUM(units) FROM sales WHERE region = 'North'",
        "SELECT AVG(price) FROM sales WHERE region = 'South'",
        "SELECT COUNT(*) FROM sales WHERE units > 250",
        "SELECT MAX(price) FROM sales WHERE year = 2019",
        "SELECT MIN(units) FROM sales WHERE region = 'East' AND year > 2017",
        "SELECT COUNT(*) FROM sales WHERE region = 'West' OR units < 50",
    ]
    return base * rounds


def _equi_join_queries() -> list[str]:
    queries = []
    for category in CATEGORIES:
        queries.append(
            "SELECT SUM(s.units) FROM sales s "
            "JOIN products p ON s.product = p.product "
            f"WHERE p.category = '{category}'"
        )
        queries.append(
            "SELECT COUNT(*) FROM sales s "
            "JOIN products p ON s.product = p.product "
            f"WHERE p.category = '{category}' AND s.units > 100"
        )
    for year in (2005, 2010, 2015):
        queries.append(
            "SELECT AVG(s.price) FROM sales s "
            "JOIN products p ON s.product = p.product "
            f"WHERE p.launch_year < {year}"
        )
        queries.append(
            "SELECT s.region, COUNT(*) FROM sales s "
            "LEFT JOIN products p ON s.product = p.product "
            f"WHERE s.year >= {year} "
            "GROUP BY s.region ORDER BY s.region"
        )
    return queries


def _build_columnar_database(rows: int, seed: int) -> Database:
    """A wide fact table built column-wise (no row tuples up front)."""
    rng = random.Random(seed)
    products = [f"product-{index:02d}" for index in range(24)]
    database = Database("sqlbench-columnar")
    database.add(Table.from_columns(
        "products",
        ["product", "category", "launch_year"],
        [
            products,
            [CATEGORIES[index % len(CATEGORIES)]
             for index in range(len(products))],
            [2000 + rng.randrange(0, 20) for _ in products],
        ],
    ))
    database.add(Table.from_columns(
        "big_sales",
        ["region", "product", "units", "price", "year"],
        [
            [REGIONS[rng.randrange(len(REGIONS))] for _ in range(rows)],
            [products[rng.randrange(len(products))] for _ in range(rows)],
            [rng.randrange(1, 500) for _ in range(rows)],
            [round(rng.uniform(5.0, 400.0), 2) for _ in range(rows)],
            [2015 + rng.randrange(0, 10) for _ in range(rows)],
        ],
    ))
    return database


def _columnar_queries() -> list[str]:
    return [
        "SELECT COUNT(*) FROM big_sales WHERE units > 250 AND price < 90.0",
        "SELECT region, COUNT(*), SUM(units) FROM big_sales "
        "GROUP BY region ORDER BY region",
        "SELECT SUM(price) FROM big_sales WHERE region = 'North'",
        "SELECT year, AVG(price) FROM big_sales WHERE units > 100 "
        "GROUP BY year ORDER BY year",
        "SELECT MIN(price), MAX(price) FROM big_sales "
        "WHERE year BETWEEN 2017 AND 2019",
        "SELECT p.category, SUM(s.units) FROM big_sales s "
        "JOIN products p ON s.product = p.product "
        "GROUP BY p.category ORDER BY p.category",
    ]


def _agent_trace_queries(rng: random.Random, claims: int) -> list[str]:
    """Per claim: a couple of exploratory probes, then the final query.

    Probes are drawn from small pools (agents rediscover the same
    constants over and over), so traces overlap heavily across claims —
    exactly the shape the shared result cache is built for.
    """
    trace: list[str] = []
    for _ in range(claims):
        region = rng.choice(REGIONS)
        category = rng.choice(CATEGORIES)
        trace.append(f"SELECT COUNT(*) FROM sales WHERE region = '{region}'")
        trace.append(
            "SELECT COUNT(*) FROM sales s "
            "JOIN products p ON s.product = p.product "
            f"WHERE p.category = '{category}'"
        )
        trace.append(
            f"SELECT SUM(units) FROM sales WHERE region = '{region}'"
        )
    return trace


def _run_arm(engine: Engine, queries: list[str]) -> tuple[float, list[str]]:
    """Execute every query, returning wall-clock and serialized results."""
    serialized: list[str] = []
    start = time.perf_counter()
    for sql in queries:
        result = engine.execute(sql)
        serialized.append(repr((result.columns, result.rows)))
    return time.perf_counter() - start, serialized


def _workload(
    name: str,
    database: Database,
    queries: list[str],
    optimized: Engine,
    baseline_engine: "Engine | None" = None,
    baseline: str = "naive",
    warmup: bool = False,
) -> WorkloadResult:
    if baseline_engine is None:
        baseline_engine = Engine(database, naive=True)  # lint: allow-engine
    if warmup:
        # One untimed pass per arm: plan caches, column pivots, and
        # statistics builds are one-time costs; the timed runs measure
        # steady-state execution.
        _run_arm(baseline_engine, queries)
        _run_arm(optimized, queries)
    naive_seconds, naive_results = _run_arm(baseline_engine, queries)
    optimized_seconds, optimized_results = _run_arm(optimized, queries)
    return WorkloadResult(
        workload=name,
        queries=len(queries),
        naive_seconds=naive_seconds,
        optimized_seconds=optimized_seconds,
        speedup=(naive_seconds / optimized_seconds
                 if optimized_seconds else float("inf")),
        identical=naive_results == optimized_results,
        baseline=baseline,
    )


def run_sqlengine_bench(
    fast: bool = False, seed: int = 7
) -> SqlEngineBenchResult:
    """Run all three workloads and snapshot the engine counters."""
    rows = FAST_FACT_ROWS if fast else FACT_ROWS
    rounds = FAST_REPEAT_ROUNDS if fast else REPEAT_ROUNDS
    columnar_rows = FAST_COLUMNAR_ROWS if fast else COLUMNAR_ROWS
    database = _build_database(rows, seed)
    columnar_database = _build_columnar_database(columnar_rows, seed + 2)
    reset_engine_stats()

    workloads = [
        _workload(
            "repeated-query",
            database,
            _repeated_queries(rounds),
            Engine(database, result_cache=QueryResultCache(256)),  # lint: allow-engine
        ),
        _workload(
            "equi-join",
            database,
            _equi_join_queries(),
            # Result cache off: measure the hash-join plan itself.
            Engine(database, result_cache=None),  # lint: allow-engine
        ),
        _workload(
            "agent-trace-replay",
            database,
            _agent_trace_queries(random.Random(seed + 1), claims=rounds),
            engine_for(database),
        ),
        _workload(
            "columnar-scan",
            columnar_database,
            _columnar_queries(),
            Engine(  # lint: allow-engine
                columnar_database, vectorized=True, result_cache=None,
            ),
            baseline_engine=Engine(  # lint: allow-engine
                columnar_database, vectorized=False, result_cache=None,
            ),
            baseline="row",
            warmup=True,
        ),
    ]
    return SqlEngineBenchResult(workloads=workloads, engine=engine_stats())


def format_sqlengine_bench(result: SqlEngineBenchResult) -> str:
    lines = [
        "SQL engine benchmark (optimized engine vs naive interpreter)",
        "",
        format_table(
            ["workload", "queries", "baseline", "base-time", "optimized",
             "speedup", "identical"],
            [
                [
                    entry.workload,
                    str(entry.queries),
                    entry.baseline,
                    f"{entry.naive_seconds:.3f}s",
                    f"{entry.optimized_seconds:.3f}s",
                    f"{entry.speedup:.1f}x",
                    "yes" if entry.identical else "NO",
                ]
                for entry in result.workloads
            ],
        ),
        "",
    ]
    strategies = result.engine.get("strategies", {})
    plan = result.engine.get("plan_cache", {})
    optimizer = result.engine.get("optimizer", {})
    plan_lookups = plan.get("hits", 0) + plan.get("misses", 0)
    lines.append(
        f"plan cache: {plan.get('hits', 0)}/{plan_lookups} hits; "
        f"hash joins: {strategies.get('hash_joins', 0)}; "
        f"pushed predicates: {strategies.get('pushed_predicates', 0)}; "
        f"result cache hits: {strategies.get('result_cache_hits', 0)}"
    )
    lines.append(
        f"vectorized: {strategies.get('vectorized_executions', 0)} "
        f"executions ({optimizer.get('plans_vectorized', 0)} plans, "
        f"{strategies.get('vectorized_ineligible', 0)} ineligible, "
        f"{strategies.get('vectorized_runtime_fallbacks', 0)} runtime "
        "fallbacks); "
        f"index probes chosen: {optimizer.get('index_probes_chosen', 0)}"
    )
    lines.append(
        "results: "
        + ("byte-identical across all workloads"
           if result.all_identical else "DIVERGED — bug")
    )
    return "\n".join(lines)


def write_bench_json(
    result: SqlEngineBenchResult, path: str = OUTPUT_FILE
) -> None:
    payload = {
        "workloads": [asdict(entry) for entry in result.workloads],
        "engine": result.engine,
        "all_identical": result.all_identical,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(fast: bool = False) -> str:
    result = run_sqlengine_bench(fast=fast)
    report = format_sqlengine_bench(result)
    print(report)
    write_bench_json(result)
    print(f"wrote {OUTPUT_FILE}")
    return report


if __name__ == "__main__":
    main()
